"""Table 3: fault coverage / test efficiency / test time, both systems.

Paper rows for System 1 (FC% / TEff% / cycles):

    Orig.        10.6 / 10.8 /    -
    HSCAN        14.6 / 14.9 /    -
    FSCAN-BSCAN  98.4 / 99.8 / 36,152
    SOCET        98.4 / 99.8 / 17,387 (min area) and 3,806 (min TApp)

and for System 2: 11.2 -> 13.8 -> 98.2 @ 46,394 -> 16,435 / 3,998.

Shape requirements checked here:

* the original and HSCAN-only chips have poor coverage (far below the
  scan-based rows) -- chip-level DFT is what makes core tests usable;
* FSCAN-BSCAN and SOCET reach the same (high) coverage, because the
  same core test sets are applied;
* SOCET's test time beats FSCAN-BSCAN's, and the min-TApp point beats
  the min-area point.

This is the heaviest bench (full-system sequential fault grading plus
per-core ATPG + fault simulation), so it runs one round.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.flow import evaluate_system, render_testability_table
from repro.obs import METRICS


def evaluate_both(system1, system2):
    kwargs = dict(sequences=16, sequence_length=12, fault_sample=120)
    return evaluate_system(system1, **kwargs), evaluate_system(system2, **kwargs)


def test_table3_testability(benchmark, system1, system2, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    ev1, ev2 = benchmark.pedantic(
        evaluate_both, args=(system1, system2), rounds=1, iterations=1
    )
    write_bench_json(
        results_dir,
        "table3_testability",
        benchmark,
        {
            evaluation.rows[0].system: {
                row.configuration: {"fc": row.fault_coverage, "tat": row.tat}
                for row in evaluation.rows
            }
            for evaluation in (ev1, ev2)
        },
        rounds=1,
    )

    rows = ev1.rows + ev2.rows
    text = render_testability_table(rows)
    paper_note = (
        "\npaper: System1 10.6 -> 14.6 -> 98.4@36152 -> SOCET 98.4 @17387/3806"
        "\n       System2 11.2 -> 13.8 -> 98.2@46394 -> SOCET 98.2 @16435/3998"
    )
    write_result(results_dir, "table3_testability", text + paper_note)

    for evaluation in (ev1, ev2):
        orig = evaluation.row("Orig.")
        hscan = evaluation.row("HSCAN")
        baseline = evaluation.row("FSCAN-BSCAN")
        socet_area = evaluation.row("SOCET Min. Area")
        socet_tat = evaluation.row("SOCET Min. TApp.")

        assert orig.fault_coverage < baseline.fault_coverage - 25.0, (
            "undesigned-for-test chip must grade far below scan-based coverage"
        )
        assert hscan.fault_coverage < baseline.fault_coverage - 25.0, (
            "HSCAN alone (no chip-level DFT) must stay far below scan-based coverage"
        )
        assert baseline.fault_coverage > 85.0
        assert baseline.test_efficiency > 95.0
        assert socet_area.fault_coverage == baseline.fault_coverage
        assert socet_area.tat < baseline.tat
        assert socet_tat.tat < socet_area.tat
