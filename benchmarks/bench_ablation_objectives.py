"""Ablation: the two optimizer objectives and test-mux escalation.

Objective (i) minimizes TAT under an area budget (w1=1, w2=0: replace
the core with the biggest latency-number gain); objective (ii) minimizes
area under a TAT budget (w1=0, w2=1: cheapest replacement that still
helps).  When version upgrades stop paying, the optimizer escalates to
system-level test muxes on the most critical ports -- degenerating, in
the limit, toward the test-bus architecture with minimum possible test
time, exactly as Section 5.2 predicts.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.baselines import evaluate_test_bus
from repro.obs import METRICS
from repro.soc import plan_soc_test
from repro.soc.optimizer import SocetOptimizer
from repro.util import render_table


def run_objectives(soc):
    optimizer = SocetOptimizer(soc)
    base = plan_soc_test(soc)
    generous = base.chip_dft_cells + 400
    plan_i, trajectory_i = optimizer.minimize_tat(generous)
    plan_ii, trajectory_ii = optimizer.minimize_area(int(base.total_tat * 0.75))
    return base, plan_i, trajectory_i, plan_ii, trajectory_ii


def test_ablation_objectives(benchmark, system1, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    base, plan_i, trajectory_i, plan_ii, trajectory_ii = benchmark.pedantic(
        run_objectives, args=(system1,), rounds=1, iterations=1
    )
    write_bench_json(
        results_dir,
        "ablation_objectives",
        benchmark,
        {
            "base_tat": base.total_tat,
            "min_tat": {"tat": plan_i.total_tat, "steps": len(trajectory_i)},
            "min_area": {"cells": plan_ii.chip_dft_cells, "steps": len(trajectory_ii)},
        },
        rounds=1,
    )

    rows = []
    for step in trajectory_i:
        rows.append(["(i) min TAT", step.index, step.chip_cells, step.tat, step.label()])
    for step in trajectory_ii:
        rows.append(["(ii) min area", step.index, step.chip_cells, step.tat, step.label()])
    text = render_table(
        ["objective", "step", "chip cells", "TAT", "selection"],
        rows,
        title="Ablation: optimizer trajectories on System 1",
    )
    write_result(results_dir, "ablation_objectives", text)

    # objective (i): monotone non-increasing TAT along the trajectory
    tats = [step.tat for step in trajectory_i]
    assert all(a >= b for a, b in zip(tats, tats[1:]))
    assert plan_i.total_tat < base.total_tat

    # objective (ii): meets the budget with fewer cells than objective (i)'s end
    assert plan_ii.total_tat <= int(base.total_tat * 0.75)
    assert plan_ii.chip_dft_cells <= plan_i.chip_dft_cells

    # escalation floor: nothing beats the test bus
    bus = evaluate_test_bus(system1)
    assert plan_i.total_tat >= bus.total_tat


def test_ablation_escalation_degenerates_to_test_bus(benchmark, system2, results_dir):
    """With an unbounded budget, escalation approaches the test-bus floor."""

    def run(soc):
        optimizer = SocetOptimizer(soc)
        return optimizer.minimize_tat(10**9)

    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    plan, trajectory = benchmark.pedantic(run, args=(system2,), rounds=1, iterations=1)
    bus = evaluate_test_bus(system2)
    base = plan_soc_test(system2)
    write_bench_json(
        results_dir,
        "ablation_escalation",
        benchmark,
        {
            "final_tat": plan.total_tat,
            "bus_floor_tat": bus.total_tat,
            "test_muxes": len(plan.test_muxes),
            "steps": len(trajectory),
        },
        rounds=1,
    )

    # large budget drives TAT toward (but never below) the test-bus floor
    assert plan.total_tat < base.total_tat
    assert plan.total_tat >= bus.total_tat
    assert plan.test_muxes, "escalation should have placed system-level test muxes"

    rows = [[step.index, step.chip_cells, step.tat, len(step.plan.test_muxes)] for step in trajectory]
    text = render_table(
        ["step", "chip cells", "TAT", "test muxes"],
        rows,
        title=f"Escalation on System 2 (test-bus floor = {bus.total_tat} cycles)",
    )
    write_result(results_dir, "ablation_escalation", text)
