"""Section 5.2 worked example: the latency-number heuristic.

The paper computes the PREPROCESSOR's test-time improvement number from
the current test solution: edge (NUM, DB) is used twice for the DISPLAY
and once for the CPU (latency 5 -> contribution 15), edge (Reset, Eoc)
once (latency 2), so the initial latency number is 17; replacing the
core with the next version (NUM->DB = 1) drops it to 5, a dTAT of 12
with its dA of 17 cells.

Our usage accounting must show the same structure: with the minimum-
area selection, the PREPROCESSOR's DB justification is used three times
per step (twice for the DISPLAY's A and D, once for the CPU's Data) and
its Eoc justification once; upgrading PRE to Version 2 improves the
latency number by 3 uses x (5-1) = 12 exactly.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.obs import METRICS
from repro.soc import plan_soc_test
from repro.soc.optimizer import SocetOptimizer
from repro.util import render_table


def improvement_numbers(soc):
    optimizer = SocetOptimizer(soc)
    plan = plan_soc_test(soc)
    gains = {
        core.name: optimizer.replacement_gain(plan, core.name)
        for core in soc.testable_cores()
    }
    return plan, gains


def test_sec5_latency_number_example(benchmark, system1, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    plan, gains = benchmark.pedantic(
        improvement_numbers, args=(system1,), rounds=3, iterations=1
    )
    write_bench_json(
        results_dir,
        "sec5_iterative_improvement",
        benchmark,
        {
            core: list(gain) if gain is not None else None
            for core, gain in sorted(gains.items())
        },
        rounds=3,
    )

    usage = plan.usage_counts()
    db_uses = usage[("PREPROCESSOR", "justify", ("DB", 0, 8))]
    eoc_uses = usage[("PREPROCESSOR", "justify", ("Eoc", 0, 1))]
    # the paper's counting: (NUM, DB) twice for the DISPLAY + once for the CPU
    assert db_uses == 3, f"expected 3 DB uses, got {db_uses}"
    assert eoc_uses == 1

    pre = system1.cores["PREPROCESSOR"]
    v1_db = pre.version(0).justify_latency("DB", 0, 8)
    v2_db = pre.version(1).justify_latency("DB", 0, 8)
    expected_delta = db_uses * (v1_db - v2_db)  # 3 x (5 - 1) = 12, as in the paper

    delta_tat, delta_area = gains["PREPROCESSOR"]
    assert delta_tat == expected_delta == 12

    rows = []
    for core_name, gain in sorted(gains.items()):
        if gain is None:
            rows.append([core_name, "-", "-"])
        else:
            rows.append([core_name, gain[0], gain[1]])
    text = render_table(
        ["Core", "dTAT (latency number)", "dA (cells)"],
        rows,
        title="Section 5.2: replacement gains from the minimum-area solution "
        f"(PREPROCESSOR dTAT = {delta_tat}, paper: 12)",
    )
    write_result(results_dir, "sec5_iterative_improvement", text)
