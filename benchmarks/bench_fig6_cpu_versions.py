"""Figure 6: CPU transparency latency vs overhead trade-off.

Paper's table (Version / D->A(7:0) / D->A(11:8) / D->A(11:0) / cells):

    Version 1:  6  2  8   3
    Version 2:  1  2  3  10
    Version 3:  1  1  2  30

Our reproduction regenerates the three versions from the CPU RTL with
the generic HSCAN + transparency algorithms and must land on the same
latencies (the overhead cells follow our own cost model).
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.designs import build_cpu
from repro.dft import insert_hscan
from repro.transparency import generate_versions
from repro.util import render_table

PAPER = {  # version -> (A(7:0), A(11:8), A(11:0), cells)
    "Version 1": (6, 2, 8, 3),
    "Version 2": (1, 2, 3, 10),
    "Version 3": (1, 1, 2, 30),
}


def generate_cpu_versions():
    circuit = build_cpu()
    return generate_versions(circuit, insert_hscan(circuit))


def test_fig6_cpu_version_tradeoff(benchmark, results_dir):
    from repro.obs import METRICS

    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    versions = benchmark.pedantic(generate_cpu_versions, rounds=3, iterations=1)
    write_bench_json(
        results_dir,
        "fig6_cpu_versions",
        benchmark,
        {
            version.name: {
                "total_latency": version.justify_latency("Address"),
                "extra_cells": version.extra_cells,
            }
            for version in versions
        },
        rounds=3,
    )

    rows = []
    for version in versions:
        low = version.justify_latency("Address", 0, 8)
        high = version.justify_latency("Address", 8, 4)
        total = version.justify_latency("Address")
        paper = PAPER[version.name]
        rows.append(
            [
                version.name,
                low,
                high,
                total,
                version.extra_cells,
                f"{paper[0]}/{paper[1]}/{paper[2]} @{paper[3]}",
            ]
        )
        # the latencies must match the paper exactly
        assert (low, high, total) == paper[:3], version.name

    text = render_table(
        ["CPU", "D->A(7:0)", "D->A(11:8)", "D->A(11:0)", "Ovhd(cells)", "paper (lat@cells)"],
        rows,
        title="Figure 6: CPU transparency latency vs overhead",
    )
    write_result(results_dir, "fig6_cpu_versions", text)
