"""Concurrent test-session scheduling across the registered designs.

For every registered system this bench plans the minimum-area test and
compares the paper's serial TAT (cores one after another) against the
scheduled makespan of both schedulers.  The paper's own chains
(System1/System2) serialize -- every core's test borrows its
neighbours' transparency -- so their ratio is 1.00x and the paper
tables are untouched; the parallel-topology systems overlap and the
makespan drops.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.obs import METRICS
from repro.schedule import build_test_items, conflict_pairs
from repro.soc import plan_soc_test
from repro.util import render_table

ROUNDS = 3


def schedule_all(systems):
    results = []
    for soc in systems:
        plan = plan_soc_test(soc)
        greedy = plan.schedule(algorithm="greedy").validate()
        packed = plan.schedule(algorithm="sessions").validate()
        conflicts = conflict_pairs(build_test_items(plan))
        results.append((soc, plan, greedy, packed, conflicts))
    return results


def _result_payload(results):
    """The machine-readable half of the bench (goes into BENCH_*.json)."""
    return {
        soc.name: {
            "cores": len(plan.core_plans),
            "conflicts": len(conflicts),
            "serial_tat": plan.total_tat,
            "greedy_makespan": greedy.makespan,
            "session_makespan": packed.makespan,
            "sessions": len(greedy.sessions()),
        }
        for soc, plan, greedy, packed, conflicts in results
    }


def test_schedule_makespan(benchmark, all_systems, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    results = benchmark.pedantic(
        schedule_all, args=(all_systems,), rounds=ROUNDS, iterations=1
    )
    write_bench_json(
        results_dir, "schedule", benchmark, _result_payload(results), rounds=ROUNDS
    )

    # determinism regression: the builders are seed-pinned, so a second
    # pass must reproduce every makespan bit-for-bit
    assert _result_payload(schedule_all(all_systems)) == _result_payload(results)

    rows = []
    for soc, plan, greedy, packed, conflicts in results:
        cores = len(plan.core_plans)
        pairs = cores * (cores - 1) // 2
        rows.append(
            [
                soc.name,
                cores,
                f"{len(conflicts)}/{pairs}",
                plan.total_tat,
                greedy.makespan,
                packed.makespan,
                len(greedy.sessions()),
                f"{greedy.speedup:.2f}x",
            ]
        )
    text = render_table(
        [
            "system",
            "cores",
            "conflicts",
            "serial TAT",
            "greedy makespan",
            "session makespan",
            "sessions",
            "speedup",
        ],
        rows,
        title="Concurrent test-session scheduling (min-area plans)",
    )
    write_result(results_dir, "schedule", text)

    by_name = {soc.name: (plan, greedy, packed) for soc, plan, greedy, packed, _ in results}
    # the paper's chains serialize: scheduling must not change their TAT
    for name in ("System1", "System2"):
        plan, greedy, packed = by_name[name]
        assert greedy.makespan == plan.total_tat
        assert packed.makespan == plan.total_tat
    # the parallel topologies must strictly beat the serial order
    for name in ("System3", "System4"):
        plan, greedy, packed = by_name[name]
        assert greedy.makespan < plan.total_tat
        assert packed.makespan < plan.total_tat
        assert greedy.makespan <= packed.makespan
    # System4 has no conflicts at all: one fully concurrent session
    plan4, greedy4, _ = by_name["System4"]
    assert len(greedy4.sessions()) == 1
    assert greedy4.makespan == max(p.tat for p in plan4.core_plans.values())
