"""Extra: interconnect coverage, SOCET vs the test-bus architecture.

The paper's introduction argues the test bus "is unable to test the
interconnect that exists between cores"; SOCET's vectors travel through
the functional wiring and cover it for free.  This bench quantifies
that claim on both systems.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.flow import bus_interconnect_report, interconnect_report
from repro.obs import METRICS
from repro.soc import plan_soc_test
from repro.util import render_table


def reports(system1, system2):
    rows = []
    for soc in (system1, system2):
        plan = plan_soc_test(soc)
        socet = interconnect_report(plan)
        bus = bus_interconnect_report(soc)
        rows.append((soc.name, socet, bus))
    return rows


def test_interconnect_coverage(benchmark, system1, system2, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    data = benchmark.pedantic(reports, args=(system1, system2), rounds=3, iterations=1)
    write_bench_json(
        results_dir,
        "interconnect",
        benchmark,
        {
            name: {
                "socet_coverage_percent": socet.coverage_percent,
                "bus_coverage_percent": bus.coverage_percent,
                "logic_bits": socet.logic_bits,
            }
            for name, socet, bus in data
        },
        rounds=3,
    )

    rows = []
    for name, socet, bus in data:
        rows.append(
            [name, socet.logic_bits, f"{socet.coverage_percent:.1f}",
             f"{bus.coverage_percent:.1f}", socet.memory_bits]
        )
        assert socet.coverage_percent > 80.0
        assert bus.coverage_percent == 0.0

    text = render_table(
        ["system", "logic interconnect bits", "SOCET coverage %",
         "test-bus coverage %", "memory-side bits (BIST domain)"],
        rows,
        title="Interconnect testing: SOCET vs test bus",
    )
    write_result(results_dir, "interconnect", text)
