"""Figure 10: test application time vs area overhead for System 1.

The paper plots 18 design points from combinations of core versions;
design point 1 is the minimum-area chip, the last point uses minimum-
latency versions everywhere, and the curve shows a multi-fold TAT
reduction for a modest area increase.  We sweep *every* combination of
our synthesized versions (27 with three versions per core) and check
the same qualitative shape:

* the TAT range spans at least 2x;
* the minimum-TAT point is NOT the maximum-area point (the paper's
  design-point-17-vs-18 observation);
* the Pareto front is monotone.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.obs import METRICS
from repro.soc import design_space
from repro.util import render_table

ROUNDS = 3


def sweep(soc):
    return design_space(soc)


def test_fig10_design_space(benchmark, system1, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    points = benchmark.pedantic(sweep, args=(system1,), rounds=ROUNDS, iterations=1)
    write_bench_json(
        results_dir,
        "fig10_design_space",
        benchmark,
        {
            "points": len(points),
            "min_tat": min(p.tat for p in points),
            "max_tat": max(p.tat for p in points),
            "min_area_cells": points[0].chip_cells,
        },
        rounds=ROUNDS,
    )

    rows = [[p.index, p.chip_cells, p.tat, p.label()] for p in points]
    text = render_table(
        ["point", "chip DFT cells", "TAT (cycles)", "versions"],
        rows,
        title=f"Figure 10: design space of System 1 ({len(points)} points)",
    )
    write_result(results_dir, "fig10_design_space", text)

    tats = [p.tat for p in points]
    min_tat_point = min(points, key=lambda p: (p.tat, p.chip_cells))
    max_cells_point = max(points, key=lambda p: p.chip_cells)

    # shape checks mirroring the paper's observations
    assert max(tats) / min(tats) >= 2.0, "TAT range too narrow"
    assert points[0].tat == max(
        p.tat for p in points if p.chip_cells == points[0].chip_cells
    )  # the cheapest point is among the slowest
    assert min_tat_point.chip_cells < max_cells_point.chip_cells, (
        "minimum TAT should not require the maximum-area versions"
    )

    # Pareto front: strictly improving TAT for increasing cells
    front = []
    best = None
    for p in points:  # already sorted by cells
        if best is None or p.tat < best:
            best = p.tat
            front.append(p)
    assert len(front) >= 3, "expected a non-trivial trade-off curve"
    front_tats = [p.tat for p in front]
    assert front_tats == sorted(front_tats, reverse=True)
