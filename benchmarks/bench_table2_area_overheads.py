"""Table 2: area overheads, SOCET vs FSCAN-BSCAN, for both systems.

Paper's percentages (of the original chip area):

    System 1: FSCAN 18.8, HSCAN 10.1, BSCAN 5.2;
              SOCET chip-level 2.0 (min area) / 3.8 (min TApp);
              totals: FSCAN-BSCAN 24.0, SOCET 12.1 / 13.9.
    System 2: FSCAN 15.6, HSCAN 10.3, BSCAN 9.9;
              SOCET chip-level 1.2 / 4.7; totals 25.5 vs 11.5 / 15.0.

Absolute percentages depend on the cell library and the reconstructed
core sizes; the *relations* the table demonstrates must hold here:

* HSCAN is cheaper than full scan at the core level;
* SOCET's chip-level DFT is far cheaper than a boundary-scan ring;
* the SOCET total is well below the FSCAN-BSCAN total;
* the min-TApp variant costs more than the min-area variant.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.flow import render_area_table, run_socet
from repro.obs import METRICS


def both_runs(system1, system2):
    return run_socet(system1), run_socet(system2)


def test_table2_area_overheads(benchmark, system1, system2, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    run1, run2 = benchmark.pedantic(both_runs, args=(system1, system2), rounds=1, iterations=1)
    write_bench_json(
        results_dir,
        "table2_area_overheads",
        benchmark,
        {
            row.system: {
                "fscan_percent": row.fscan_percent,
                "hscan_percent": row.hscan_percent,
                "socet_total_percent": row.socet_total_percent,
            }
            for row in (run1.area_rows()[0], run2.area_rows()[0])
        },
        rounds=1,
    )

    rows = run1.area_rows() + run2.area_rows()
    text = render_area_table(rows)
    paper_note = (
        "\npaper: System1 FSCAN 18.8 / HSCAN 10.1 / BSCAN 5.2 / SOCET 2.0-3.8;"
        " totals 24.0 vs 12.1-13.9"
        "\n       System2 FSCAN 15.6 / HSCAN 10.3 / BSCAN 9.9 / SOCET 1.2-4.7;"
        " totals 25.5 vs 11.5-15.0"
    )
    write_result(results_dir, "table2_area_overheads", text + paper_note)

    for row in rows:
        assert row.hscan_percent < row.fscan_percent, "HSCAN must beat FSCAN"
        assert row.socet_chip_percent < row.bscan_percent, "SOCET chip DFT must beat BSCAN"
        assert row.socet_total_percent < row.fscan_bscan_total_percent, (
            "SOCET total must beat FSCAN-BSCAN total"
        )
    for run in (run1, run2):
        area_rows = run.area_rows()
        assert area_rows[0].socet_chip_cells <= area_rows[1].socet_chip_cells, (
            "min-area variant must not cost more than min-TApp variant"
        )
