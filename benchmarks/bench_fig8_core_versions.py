"""Figure 8: PREPROCESSOR and DISPLAY version trade-offs.

Paper's tables:

    PREPROCESSOR (NUM->DB, NUM->A):      V1 5/2 @2,  V2 1/2 @19,  V3 1/1 @37
    DISPLAY (D->OUT, A->OUT):            V1 2/3 @5,  V2 2/1 @20,  V3 1/1 @55

Our PREPROCESSOR reproduces the latency ladder exactly.  The DISPLAY's
Version 1 matches (D->OUT = 2, A->OUT = 3); its later versions improve
the justification side first (our reconstruction lacks the original's
direct address-display path), so the propagate ladder diverges after V1
-- recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.designs import build_display, build_preprocessor
from repro.dft import insert_hscan
from repro.transparency import generate_versions
from repro.util import render_table

PRE_PAPER = {"Version 1": (5, 2), "Version 2": (1, 2), "Version 3": (1, 1)}
DISPLAY_PAPER = {"Version 1": (2, 3), "Version 2": (2, 1), "Version 3": (1, 1)}


def generate_both():
    results = {}
    for builder in (build_preprocessor, build_display):
        circuit = builder()
        results[circuit.name] = generate_versions(circuit, insert_hscan(circuit))
    return results


def _address_latency(version) -> int:
    return max(p.latency for k, p in version.justify_paths.items() if k[0] == "Address")


def test_fig8_core_version_tradeoffs(benchmark, results_dir):
    from repro.obs import METRICS

    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    results = benchmark.pedantic(generate_both, rounds=3, iterations=1)
    write_bench_json(
        results_dir,
        "fig8_core_versions",
        benchmark,
        {
            core: [version.extra_cells for version in versions]
            for core, versions in results.items()
        },
        rounds=3,
    )

    rows = []
    for version in results["PREPROCESSOR"]:
        db = version.justify_latency("DB", 0, 8)
        address = _address_latency(version)
        paper = PRE_PAPER[version.name]
        rows.append(["PREPROCESSOR", version.name, f"NUM->DB={db}", f"NUM->A={address}",
                     version.extra_cells, f"{paper[0]}/{paper[1]}"])
        assert (db, address) == paper, version.name

    for version in results["DISPLAY"]:
        d_out = version.propagate_paths["D"].latency
        a_out = version.propagate_paths["A"].latency
        paper = DISPLAY_PAPER[version.name]
        rows.append(["DISPLAY", version.name, f"D->OUT={d_out}", f"A->OUT={a_out}",
                     version.extra_cells, f"{paper[0]}/{paper[1]}"])
    # the DISPLAY's Version 1 must match the paper exactly
    v1 = results["DISPLAY"][0]
    assert v1.propagate_paths["D"].latency == 2
    assert v1.propagate_paths["A"].latency == 3
    # costs must grow along each ladder
    for name in ("PREPROCESSOR", "DISPLAY"):
        cells = [v.extra_cells for v in results[name]]
        assert cells == sorted(cells)

    text = render_table(
        ["Core", "Version", "Latency 1", "Latency 2", "Ovhd(cells)", "paper latencies"],
        rows,
        title="Figure 8: PREPROCESSOR and DISPLAY transparency trade-offs",
    )
    write_result(results_dir, "fig8_core_versions", text)
