"""Search-effort attribution: overhead and hard-fault stability.

Attribution must be *always-on-cheap*: every hook early-returns on one
attribute check when collection is off, so leaving the hooks compiled
into the hot paths may not tax an uninstrumented run.  This bench holds
that claim to the schedule workload (the same one ``bench_schedule``
gates) with a regress-style trip condition -- deep-mode timings are
only a regression when the median ratio exceeds 1.02x *and* a one-sided
Mann-Whitney test on the raw samples is significant -- so timing noise
on an unchanged pipeline cannot trip it, but a hook that grew real work
on the off path will.

The second half pins the artifact itself: ``repro explain`` on System1
must produce a byte-identical artifact when re-run at the same seed,
and the top-10 hardest-fault table is recorded per seed (0, 1, 2) so
the difficulty ranking's trajectory is diffable across PRs.
"""

from __future__ import annotations

import statistics
import time

from bench_schedule import schedule_all
from conftest import write_bench_json, write_result

from repro.flow.explain import explain_system
from repro.flow.profile import QUICK_MAX_FAULTS
from repro.obs import METRICS
from repro.obs.attrib import ATTRIB
from repro.obs.regress import mann_whitney_p
from repro.util import render_table

#: per-arm timing rounds; 5v5 gives the rank test room to be significant
ROUNDS = 5
#: the trip condition mirrors `repro regress`'s wall gate shape, with a
#: much tighter practical threshold: attribution overhead is a design
#: promise (<= 2%), not a noise band
MAX_OVERHEAD_RATIO = 1.02
ALPHA = 0.05
SEEDS = (0, 1, 2)


def _timed_arm(mode, systems):
    """ROUNDS wall-time samples of the schedule workload under ``mode``."""
    ATTRIB.configure(mode)
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        schedule_all(systems)
        samples.append(time.perf_counter() - start)
    return samples


def _hard_fault_tables():
    """Per-seed top-10 hardest faults, each seed proved byte-stable."""
    tables = {}
    for seed in SEEDS:
        report = explain_system(
            "System1", seed=seed, max_faults=QUICK_MAX_FAULTS
        )
        rerun = explain_system(
            "System1", seed=seed, max_faults=QUICK_MAX_FAULTS
        )
        assert report.artifact_json() == rerun.artifact_json(), (
            f"seed {seed}: explain artifact is not byte-stable across runs"
        )
        tables[str(seed)] = [
            {"fault": entry["fault"], "effort": entry["effort"],
             "status": entry["status"]}
            for entry in report.artifact["planes"]["atpg"]["hard_faults"]
        ]
    return tables


def test_explain_overhead_and_stability(benchmark, all_systems, results_dir):
    # stability first: explain_system resets the registry, so it must not
    # run between METRICS.reset() and write_bench_json below
    hard_faults = _hard_fault_tables()

    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    schedule_all(all_systems)  # warm the plan caches for both arms equally
    try:
        off = benchmark.pedantic(
            _timed_arm, args=("off", all_systems), rounds=1, iterations=1
        )
        deep = _timed_arm("deep", all_systems)
    finally:
        ATTRIB.configure("off")
        ATTRIB.reset()

    ratio = statistics.median(deep) / statistics.median(off)
    p_value = mann_whitney_p(deep, off)
    tripped = p_value < ALPHA and ratio > MAX_OVERHEAD_RATIO
    overhead = {
        "alpha": ALPHA,
        "deep_median_s": statistics.median(deep),
        "deep_over_off": round(ratio, 4),
        "mann_whitney_p": round(p_value, 4),
        "max_ratio": MAX_OVERHEAD_RATIO,
        "off_median_s": statistics.median(off),
        "rounds": ROUNDS,
        "tripped": tripped,
    }
    write_bench_json(
        results_dir, "explain", benchmark,
        {"hard_faults": hard_faults, "overhead": overhead},
    )

    rows = [
        [seed, row["fault"], row["effort"], row["status"]]
        for seed in sorted(hard_faults)
        for row in hard_faults[seed][:3]
    ]
    text = render_table(
        ["seed", "hardest faults (top 3)", "effort", "status"], rows,
        title=(
            f"Attribution overhead deep/off = {ratio:.3f}x "
            f"(p={p_value:.3f}, trip at >{MAX_OVERHEAD_RATIO}x)"
        ),
    )
    write_result(results_dir, "explain", text)

    # the always-on-cheap promise: attribution may not tax the gated
    # schedule path even in deep mode, let alone with collection off
    assert not tripped, (
        f"attribution overhead {ratio:.3f}x (p={p_value:.3f}) exceeds "
        f"{MAX_OVERHEAD_RATIO}x on the schedule workload"
    )
    # every seed's table is ranked by descending effort; fewer than 10
    # rows just means fewer than 10 faults needed explicit PODEM targeting
    for seed, table in sorted(hard_faults.items()):
        efforts = [row["effort"] for row in table]
        assert efforts == sorted(efforts, reverse=True), seed
        assert 1 <= len(table) <= 10, seed
