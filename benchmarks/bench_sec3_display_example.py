"""Section 3 worked example: testing the DISPLAY through transparency.

With the paper's 105-vector DISPLAY test set (525 HSCAN vectors through
the 4-deep chains):

* CPU Version 1 (Data->Address in 8 cycles) and a 1-cycle PREPROCESSOR
  path: 525 x 9 + 3 = 4,728 cycles;
* CPU Version 2 (3 cycles): 525 x 4 + 3 = 2,103 cycles;
* CPU Version 3 (2 cycles): 525 x 3 + 3 = 1,578 cycles;
* FSCAN-BSCAN needs (66 + 20) x 105 + 85 = 9,115 cycles.

Every one of those numbers must come out of the generic planner.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.dft.tat import fscan_bscan_core_tat
from repro.soc import plan_soc_test
from repro.util import render_table

# (CPU version index, expected DISPLAY test time)
CASES = [(0, 4728), (1, 2103), (2, 1578)]


def plan_display_tests(soc):
    plans = []
    for cpu_version, _ in CASES:
        selection = {"CPU": cpu_version, "PREPROCESSOR": 1, "DISPLAY": 0}
        plans.append(plan_soc_test(soc, selection).core_plans["DISPLAY"])
    return plans


def test_sec3_display_worked_example(benchmark, system1_paper_vectors, results_dir):
    soc = system1_paper_vectors
    display = soc.cores["DISPLAY"]
    assert display.test_vectors == 105
    assert display.hscan_vectors == 525  # 105 x (4+1)

    from repro.obs import METRICS

    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    plans = benchmark.pedantic(plan_display_tests, args=(soc,), rounds=3, iterations=1)
    write_bench_json(
        results_dir,
        "sec3_display_example",
        benchmark,
        {f"cpu_v{cpu_version + 1}_tat": plan.tat for (cpu_version, _), plan in zip(CASES, plans)},
        rounds=3,
    )

    rows = []
    for (cpu_version, expected), plan in zip(CASES, plans):
        rows.append(
            [f"CPU Version {cpu_version + 1}", plan.cadence, plan.scan_steps, plan.flush,
             plan.tat, expected]
        )
        assert plan.tat == expected, f"CPU V{cpu_version + 1}"

    fscan_bscan = fscan_bscan_core_tat(66, 20, 105)
    rows.append(["FSCAN-BSCAN", "-", "-", "-", fscan_bscan, 9115])
    assert fscan_bscan == 9115

    text = render_table(
        ["Configuration", "cadence", "scan steps", "flush", "DISPLAY TAT", "paper"],
        rows,
        title="Section 3 worked example: DISPLAY test application time",
    )
    write_result(results_dir, "sec3_display_example", text)
