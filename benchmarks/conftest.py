"""Shared fixtures for the benchmark harness.

System builds (which include per-core HSCAN insertion and transparency
version synthesis) are cached per session; each bench writes the table
it reproduces to ``benchmarks/results/<bench>.txt`` so the numbers are
inspectable alongside the timing output, plus a machine-readable
``BENCH_<bench>.json`` (see :mod:`repro.obs.benchjson`) so the
performance trajectory is diffable across PRs.

Every randomized stage in the benches is pinned to :data:`SEED` -- the
system builders take it as ``atpg_seed``, so two runs of the same bench
produce identical plans, schedules, and counters (only wall time moves).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: the one seed every randomized stage (ATPG random phase, fault
#: sampling) is pinned to -- benches must be bit-identical across runs
SEED = 0


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return SEED


@pytest.fixture(scope="session")
def system1():
    from repro.designs import build_system1

    return build_system1(atpg_seed=SEED)


@pytest.fixture(scope="session")
def system1_paper_vectors():
    """System 1 with the paper's DISPLAY test-set size (105 vectors).

    Used by the Section 3 worked example, whose published cycle counts
    (525 x 9 + 3 = 4,728 etc.) assume 105 combinational vectors.
    """
    from repro.designs import build_system1

    return build_system1(test_vectors={"DISPLAY": 105}, atpg_seed=SEED)


@pytest.fixture(scope="session")
def system2():
    from repro.designs import build_system2

    return build_system2(atpg_seed=SEED)


@pytest.fixture(scope="session")
def system3():
    from repro.designs import build_system3

    return build_system3(atpg_seed=SEED)


@pytest.fixture(scope="session")
def system4():
    from repro.designs import build_system4

    return build_system4(atpg_seed=SEED)


@pytest.fixture(scope="session")
def all_systems(system1, system2, system3, system4):
    """The registered designs, in registry order."""
    return [system1, system2, system3, system4]


def write_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def write_bench_json(
    results_dir: Path, name: str, benchmark, results, rounds: int = 1
) -> Path:
    """Write ``BENCH_<name>.json`` from a pytest-benchmark fixture.

    ``results`` is the bench-specific free-form payload; the wall time
    is the benchmark's mean and the counters come straight from the
    shared metrics registry (callers reset it before the measured run).
    """
    from repro.obs import METRICS
    from repro.obs.benchjson import bench_payload, write_bench

    payload = bench_payload(
        bench=name,
        wall_time_s=benchmark.stats.stats.mean,
        results=results,
        rounds=rounds,
        registry=METRICS,
    )
    path = results_dir / f"BENCH_{name}.json"
    write_bench(str(path), payload)
    print(f"[bench json written to {path}]")
    return path
