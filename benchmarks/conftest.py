"""Shared fixtures for the benchmark harness.

System builds (which include per-core HSCAN insertion and transparency
version synthesis) are cached per session; each bench writes the table
it reproduces to ``benchmarks/results/<bench>.txt`` so the numbers are
inspectable alongside the timing output.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def system1():
    from repro.designs import build_system1

    return build_system1()


@pytest.fixture(scope="session")
def system1_paper_vectors():
    """System 1 with the paper's DISPLAY test-set size (105 vectors).

    Used by the Section 3 worked example, whose published cycle counts
    (525 x 9 + 3 = 4,728 etc.) assume 105 combinational vectors.
    """
    from repro.designs import build_system1

    return build_system1(test_vectors={"DISPLAY": 105})


@pytest.fixture(scope="session")
def system2():
    from repro.designs import build_system2

    return build_system2()


@pytest.fixture(scope="session")
def system3():
    from repro.designs import build_system3

    return build_system3()


@pytest.fixture(scope="session")
def system4():
    from repro.designs import build_system4

    return build_system4()


@pytest.fixture(scope="session")
def all_systems(system1, system2, system3, system4):
    """The registered designs, in registry order."""
    return [system1, system2, system3, system4]


def write_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
