"""Shared fixtures for the benchmark harness.

System builds (which include per-core HSCAN insertion and transparency
version synthesis) are cached per session; each bench writes the table
it reproduces to ``benchmarks/results/<bench>.txt`` so the numbers are
inspectable alongside the timing output, plus a machine-readable
``BENCH_<bench>.json`` (see :mod:`repro.obs.benchjson`) so the
performance trajectory is diffable across PRs.

Every randomized stage in the benches is pinned to :data:`SEED` -- the
system builders take it as ``atpg_seed``, so two runs of the same bench
produce identical plans, schedules, and counters (only wall time moves).
"""

from __future__ import annotations

from pathlib import Path
from typing import List

import pytest

# ----------------------------------------------------------------------
# deterministic counter universe
# ----------------------------------------------------------------------
# Module-scope instruments exist in the shared registry only once their
# module is imported, and registry snapshots record zeros for idle
# instruments (zero vs absent are different facts to the counter gate).
# Import every instrumented pipeline module up front so a bench records
# the same counter set whether its file runs solo (as CI does) or as
# part of the full suite -- otherwise "atpg.patterns: 0 -> absent"
# style drift would trip `repro regress` purely from invocation shape.
import repro.atpg.combinational  # noqa: F401
import repro.atpg.podem  # noqa: F401
import repro.dft.hscan  # noqa: F401
import repro.exec.cache  # noqa: F401
import repro.exec.pool  # noqa: F401
import repro.faults.kernel  # noqa: F401
import repro.faults.simulator  # noqa: F401
import repro.flow.explain  # noqa: F401
import repro.gates.kernel  # noqa: F401
import repro.lint.registry  # noqa: F401
import repro.obs.attrib  # noqa: F401
import repro.schedule.packers  # noqa: F401
import repro.serve.daemon  # noqa: F401
import repro.serve.jobs  # noqa: F401
import repro.serve.state  # noqa: F401
import repro.soc.ccg  # noqa: F401
import repro.soc.optimizer  # noqa: F401
import repro.soc.plan  # noqa: F401
import repro.transparency.search  # noqa: F401

RESULTS_DIR = Path(__file__).parent / "results"

#: the one seed every randomized stage (ATPG random phase, fault
#: sampling) is pinned to -- benches must be bit-identical across runs
SEED = 0


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return SEED


#: session-cached SOCs, tracked so every bench can start from cold
#: planning caches (see :func:`canonical_cache_state`)
_SESSION_SOCS: List = []


def _track(soc):
    _SESSION_SOCS.append(soc)
    return soc


@pytest.fixture(autouse=True)
def canonical_cache_state():
    """Reset cross-test warm state so counters are invocation-invariant.

    The plan cache lives on the (session-cached) ``Soc`` objects and
    fanout cones are shared per netlist, so a bench that runs after
    another bench in the same session would otherwise count fewer
    ``chiplevel.*`` / ``faultsim.cone.*`` events than the same bench run
    solo -- and its ledger record would trip the exact counter gate
    against history recorded under the other invocation shape.
    """
    from repro.exec import invalidate_plan_cache
    from repro.faults.simulator import clear_cone_caches
    from repro.gates.kernel import clear_kernel_caches

    for soc in _SESSION_SOCS:
        invalidate_plan_cache(soc)
    clear_cone_caches()
    clear_kernel_caches()
    yield


@pytest.fixture(scope="session")
def system1():
    from repro.designs import build_system1

    return _track(build_system1(atpg_seed=SEED))


@pytest.fixture(scope="session")
def system1_paper_vectors():
    """System 1 with the paper's DISPLAY test-set size (105 vectors).

    Used by the Section 3 worked example, whose published cycle counts
    (525 x 9 + 3 = 4,728 etc.) assume 105 combinational vectors.
    """
    from repro.designs import build_system1

    return _track(build_system1(test_vectors={"DISPLAY": 105}, atpg_seed=SEED))


@pytest.fixture(scope="session")
def system2():
    from repro.designs import build_system2

    return _track(build_system2(atpg_seed=SEED))


@pytest.fixture(scope="session")
def system3():
    from repro.designs import build_system3

    return _track(build_system3(atpg_seed=SEED))


@pytest.fixture(scope="session")
def system4():
    from repro.designs import build_system4

    return _track(build_system4(atpg_seed=SEED))


@pytest.fixture(scope="session")
def all_systems(system1, system2, system3, system4):
    """The registered designs, in registry order."""
    return [system1, system2, system3, system4]


def write_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


#: every bench appends its run record here (next to the BENCH json)
LEDGER_NAME = "ledger.jsonl"


def write_bench_json(
    results_dir: Path, name: str, benchmark, results, rounds: int = 1
) -> Path:
    """Write ``BENCH_<name>.json`` and append a run-ledger record.

    ``results`` is the bench-specific free-form payload; the raw
    per-round wall times come from the pytest-benchmark fixture and the
    counters straight from the shared metrics registry (callers reset
    it before the measured run).  The same samples/counters go to the
    append-only ``ledger.jsonl`` so ``repro regress`` can compare this
    run against the bench's history.
    """
    from repro.obs import METRICS
    from repro.obs.benchjson import bench_payload, write_bench
    from repro.obs.ledger import RunLedger, make_record

    samples = [float(value) for value in benchmark.stats.stats.data]
    histograms = METRICS.histograms()
    payload = bench_payload(
        bench=name,
        wall_time_s=benchmark.stats.stats.mean,
        results=results,
        rounds=rounds,
        registry=METRICS,
        samples=samples,
        histograms=histograms or None,
    )
    path = results_dir / f"BENCH_{name}.json"
    write_bench(str(path), payload)
    ledger = RunLedger(results_dir / LEDGER_NAME)
    ledger.append(
        make_record(
            bench=name,
            samples=samples,
            counters=payload["counters"],
            kind="bench",
            histograms=histograms or None,
        )
    )
    print(f"[bench json written to {path}; run appended to {ledger.path}]")
    return path
