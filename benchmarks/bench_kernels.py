"""Vectorized simulation kernels: compiled numpy programs vs the scalar oracle.

Times the two fault-grading workloads that dominate the Table 3
pipeline under both backends and asserts bit-identity between them:

* sequential whole-chip grading of the flattened System1 netlist (the
  ``Orig.``/``HSCAN`` row class) -- the headline kernel win, asserted
  against :data:`KERNEL_SPEEDUP_FLOOR` when the runner has real CPUs;
* per-core combinational grading of System1's cores under 512 random
  patterns (the scan row class) -- recorded, not floored, because the
  scalar-parity replay loop (exact ``faultsim.*`` counters and fault
  dropping order) bounds the win on small cores.

Identity is checked the hard way: ``detected`` order, ``undetected``
survivors, ``first_detection`` indices, and the per-run ``faultsim.*``
counter deltas must match exactly.  ``BENCH_kernels.json`` carries the
timing matrix plus the ``kernel.*`` compile/cache counters.
"""

from __future__ import annotations

import os
import random
import time

from conftest import SEED, write_bench_json, write_result

from repro.elaborate import elaborate
from repro.faults import FaultSimulator, collapse_faults, full_fault_universe
from repro.faults.simulator import clear_cone_caches, sequential_fault_grade
from repro.flow.system_netlist import flatten_soc
from repro.gates import GateKind
from repro.obs import METRICS
from repro.util import render_table

ROUNDS = 1
#: sequential whole-chip grading floor, asserted when cpus >= 4 (same
#: physical-runner gate as bench_parallel's pool-speedup floor)
KERNEL_SPEEDUP_FLOOR = 5.0
SEQUENCES = 16
SEQUENCE_LENGTH = 12
FAULT_SAMPLE = 120
CORE_PATTERNS = 512


def _timed(fn, repeat):
    """Best-of-``repeat`` wall time with cold cone caches each run."""
    best = None
    result = None
    for _ in range(repeat):
        clear_cone_caches()
        start = time.perf_counter()
        counters_before = dict(METRICS.counters("faultsim."))
        result = fn()
        elapsed = time.perf_counter() - start
        counters_after = METRICS.counters("faultsim.")
        best = elapsed if best is None else min(best, elapsed)
    delta = {
        key: counters_after[key] - counters_before.get(key, 0)
        for key in counters_after
        if counters_after[key] != counters_before.get(key, 0)
    }
    return best, result, delta


def _assert_identical(workload, scalar, vector):
    (_, rs, ds), (_, rn, dn) = scalar, vector
    assert rs.detected == rn.detected, f"{workload}: detected diverged"
    assert rs.undetected == rn.undetected, f"{workload}: undetected diverged"
    assert rs.first_detection == rn.first_detection, f"{workload}: first_detection diverged"
    assert ds == dn, f"{workload}: faultsim counters diverged: {ds} vs {dn}"


def _sequential_workload(soc):
    netlist = flatten_soc(soc, with_hscan=False, scan_access="none")
    faults = collapse_faults(netlist, full_fault_universe(netlist))
    rng = random.Random(SEED)
    input_names = [g.name for g in netlist.inputs]
    stimuli = [
        [{name: rng.getrandbits(1) for name in input_names} for _ in range(SEQUENCE_LENGTH)]
        for _ in range(SEQUENCES)
    ]

    def grade(backend):
        return sequential_fault_grade(
            netlist, stimuli, faults, sample=FAULT_SAMPLE, seed=SEED, backend=backend
        )

    scalar = _timed(lambda: grade("scalar"), repeat=1)
    vector = _timed(lambda: grade("numpy"), repeat=1)
    _assert_identical("sequential", scalar, vector)
    return {
        "gates": len(netlist),
        "faults": len(faults),
        "detected": len(vector[1].detected),
        "scalar_wall_s": scalar[0],
        "numpy_wall_s": vector[0],
        "speedup": scalar[0] / max(vector[0], 1e-9),
    }


def _core_workloads(soc):
    out = {}
    for core in soc.testable_cores():
        netlist = elaborate(core.circuit).netlist
        faults = collapse_faults(netlist, full_fault_universe(netlist))
        rng = random.Random(SEED + 1)
        sources = [
            g.name
            for g in netlist.gates()
            if g.kind in (GateKind.INPUT, GateKind.DFF, GateKind.SDFF)
        ]
        patterns = [
            {name: rng.getrandbits(1) for name in sources} for _ in range(CORE_PATTERNS)
        ]

        def grade(backend):
            return FaultSimulator(netlist, backend=backend).run(patterns, faults)

        scalar = _timed(lambda: grade("scalar"), repeat=2)
        vector = _timed(lambda: grade("numpy"), repeat=2)
        _assert_identical(core.name, scalar, vector)
        out[core.name] = {
            "gates": len(netlist),
            "faults": len(faults),
            "detected": len(vector[1].detected),
            "scalar_wall_s": scalar[0],
            "numpy_wall_s": vector[0],
            "speedup": scalar[0] / max(vector[0], 1e-9),
        }
    return out


def run_matrix(soc):
    return _sequential_workload(soc), _core_workloads(soc)


def test_kernel_speedups(benchmark, results_dir, system1):
    from repro.gates.kernel import numpy_available

    if not numpy_available():  # the numpy column is the whole point here
        import pytest

        pytest.skip("numpy unavailable: kernel bench needs both backends")

    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    sequential, cores = benchmark.pedantic(
        run_matrix, args=(system1,), rounds=ROUNDS, iterations=1
    )

    cpus = os.cpu_count() or 1
    # kernel speedup is arithmetic density, not pool fan-out, but a
    # starved shared runner still skews wall clocks -- same gate as
    # bench_parallel's pool floor
    if cpus >= 4:
        assert sequential["speedup"] >= KERNEL_SPEEDUP_FLOOR, (
            f"sequential kernel speedup {sequential['speedup']:.1f}x below "
            f"{KERNEL_SPEEDUP_FLOOR}x floor ({cpus} CPUs)"
        )

    payload = {
        "cpus": cpus,
        "floor": KERNEL_SPEEDUP_FLOOR,
        "sequential": sequential,
        "cores": cores,
    }
    write_bench_json(results_dir, "kernels", benchmark, payload, rounds=ROUNDS)

    rows = [
        [
            "chip (sequential)",
            sequential["gates"],
            sequential["faults"],
            f"{sequential['scalar_wall_s'] * 1000:.1f}",
            f"{sequential['numpy_wall_s'] * 1000:.1f}",
            f"{sequential['speedup']:.1f}x",
        ]
    ]
    for name in sorted(cores):
        entry = cores[name]
        rows.append(
            [
                f"{name} (scan)",
                entry["gates"],
                entry["faults"],
                f"{entry['scalar_wall_s'] * 1000:.1f}",
                f"{entry['numpy_wall_s'] * 1000:.1f}",
                f"{entry['speedup']:.1f}x",
            ]
        )
    text = render_table(
        ["workload", "gates", "faults", "scalar (ms)", "numpy (ms)", "speedup"],
        rows,
        title=f"Fault-grading kernels: scalar oracle vs compiled numpy ({cpus} CPUs)",
    )
    write_result(results_dir, "kernels", text)
