"""Table 1: design-space exploration details for System 1.

Paper rows (area overhead cells / TAT cycles / FC% / TEff%):

    Each core min. area (pt 1):     156 / 17,387 / 98.4 / 99.8
    Each core min. latency (pt 18): 325 /  3,818 / 98.4 / 99.8
    Min. chip TApp. (pt 17):        307 /  3,806 / 98.4 / 99.8

We reproduce the three characteristic points -- minimum area, all
minimum-latency versions, and the true minimum-TAT point -- plus the
paper's punchline: picking every core's fastest version is NOT the
fastest chip (or at best ties it at higher cost).  Fault coverage is
identical across points because the same precomputed core test sets are
delivered losslessly; it is measured once by gate-level fault
simulation of the ATPG patterns (see bench_table3).
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.obs import METRICS
from repro.soc import design_space, plan_soc_test
from repro.util import render_table

PAPER_ROWS = [
    ("Each core min. area", 156, 17387),
    ("Each core min. latency", 325, 3818),
    ("Min. chip TApp.", 307, 3806),
]


def characteristic_points(soc):
    points = design_space(soc)
    min_area = points[0]
    all_fast = {core.name: core.version_count - 1 for core in soc.testable_cores()}
    all_fast_plan = plan_soc_test(soc, all_fast)
    min_tat = min(points, key=lambda p: (p.tat, p.chip_cells))
    return min_area, all_fast_plan, min_tat


def test_table1_design_points(benchmark, system1, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    min_area, all_fast_plan, min_tat = benchmark.pedantic(
        characteristic_points, args=(system1,), rounds=3, iterations=1
    )
    write_bench_json(
        results_dir,
        "table1_design_points",
        benchmark,
        {
            "min_area": {"cells": min_area.chip_cells, "tat": min_area.tat},
            "min_latency": {
                "cells": all_fast_plan.chip_dft_cells,
                "tat": all_fast_plan.total_tat,
            },
            "min_tat": {"cells": min_tat.chip_cells, "tat": min_tat.tat},
        },
        rounds=3,
    )

    rows = [
        ["Each core min. area", min_area.chip_cells, min_area.tat,
         f"{PAPER_ROWS[0][1]} / {PAPER_ROWS[0][2]}"],
        ["Each core min. latency", all_fast_plan.chip_dft_cells, all_fast_plan.total_tat,
         f"{PAPER_ROWS[1][1]} / {PAPER_ROWS[1][2]}"],
        ["Min. chip TApp.", min_tat.chip_cells, min_tat.tat,
         f"{PAPER_ROWS[2][1]} / {PAPER_ROWS[2][2]}"],
    ]
    text = render_table(
        ["Circuit description", "A.Ov.(cells)", "TApp.(cycles)", "paper (cells / cycles)"],
        rows,
        title="Table 1: design space exploration for System 1",
    )
    write_result(results_dir, "table1_design_points", text)

    # the ordering relations the paper's table demonstrates
    assert min_area.chip_cells < all_fast_plan.chip_dft_cells
    assert min_area.tat > all_fast_plan.total_tat
    assert min_tat.tat <= all_fast_plan.total_tat
    assert min_tat.chip_cells < all_fast_plan.chip_dft_cells
