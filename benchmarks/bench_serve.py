"""Planning-daemon serving benchmark: latency, throughput, cache warmth.

Runs an in-process ``repro serve`` daemon on a unix-domain socket and
drives it the way clients would:

* **cold** -- the first full-sweep request per job count pays the SOC
  build, the executor spin-up, and the whole design-space plan;
* **warm** -- repeats of the same request are served from the daemon's
  result cache (zero planning work), measured as p50/p99 latency;
* **concurrent** -- :data:`CLIENTS` client threads issue warm requests
  simultaneously; total wall time gives the throughput figure.

Determinism is asserted, not assumed: the daemon's sweep payload must
match a direct :func:`repro.soc.design_space` run point for point, and
the warm result must be byte-identical to the cold one.  The cold/warm
ratio must clear :data:`WARM_SPEEDUP_FLOOR` -- the resident state is
the whole reason the daemon exists.

``BENCH_serve.json`` carries per-jobs cold latencies, the warm latency
distribution, and the concurrent throughput; the run also lands in the
benchmark ledger for ``repro regress`` (``serve.*`` and ``exec.*``
counters are exempt from the exact gate -- they track load and pool
reuse, not planned work).
"""

from __future__ import annotations

import json
import threading
import time

from conftest import SEED, write_bench_json, write_result

from repro.obs import METRICS
from repro.serve import ServeClient, ServeConfig, start_background
from repro.util import render_table

ROUNDS = 1
#: daemon --jobs settings benchmarked (cold sweep latency per setting)
JOB_COUNTS = (1, 2)
#: sequential warm requests measured for the latency distribution
WARM_ROUNDS = 30
#: concurrent client threads (the acceptance floor is 8)
CLIENTS = 8
#: warm requests issued by each concurrent client
REQUESTS_PER_CLIENT = 5
#: cold latency must beat warm latency by at least this factor
WARM_SPEEDUP_FLOOR = 3.0

_BENCH_SYSTEM = "System1"


def _percentile(values, p):
    ordered = sorted(values)
    rank = max(1, round(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _sweep_once(client: ServeClient) -> tuple:
    """(latency_s, result) of one full-sweep request."""
    start = time.perf_counter()
    result = client.run("sweep", _BENCH_SYSTEM)
    return time.perf_counter() - start, result


def _drive_daemon(socket_path: str, jobs: int) -> dict:
    """Cold + warm phases against a fresh daemon at one --jobs setting."""
    daemon = start_background(ServeConfig(address=f"unix:{socket_path}", jobs=jobs))
    try:
        with ServeClient(daemon.address) as client:
            cold_s, cold_result = _sweep_once(client)
            warm_latencies = []
            warm_result = None
            for _ in range(WARM_ROUNDS):
                latency, warm_result = _sweep_once(client)
                warm_latencies.append(latency)
        concurrent = _drive_concurrent(daemon.address) if jobs == 1 else None
        with ServeClient(daemon.address) as client:
            stats = client.stats()
            client.shutdown()
    finally:
        daemon.request_drain()
        daemon.wait_finished(30)
    return {
        "cold_s": cold_s,
        "cold_result": cold_result,
        "warm_latencies": warm_latencies,
        "warm_result": warm_result,
        "concurrent": concurrent,
        "stats": stats,
    }


def _drive_concurrent(address: str) -> dict:
    """CLIENTS threads x REQUESTS_PER_CLIENT warm requests each."""
    latencies = [[] for _ in range(CLIENTS)]
    results = [None] * CLIENTS
    errors = []

    def worker(index: int) -> None:
        try:
            with ServeClient(address) as client:
                for _ in range(REQUESTS_PER_CLIENT):
                    latency, result = _sweep_once(client)
                    latencies[index].append(latency)
                    results[index] = result
        except Exception as error:  # surfaces as a bench failure below
            errors.append(f"client {index}: {error}")

    threads = [
        threading.Thread(target=worker, args=(index,), name=f"bench-client-{index}")
        for index in range(CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    assert not errors, f"concurrent clients failed: {errors}"
    flat = [latency for per_client in latencies for latency in per_client]
    return {
        "clients": CLIENTS,
        "requests": len(flat),
        "wall_s": wall_s,
        "throughput_rps": len(flat) / wall_s,
        "latencies": flat,
        "results": results,
    }


def run_serving() -> dict:
    from conftest import RESULTS_DIR

    RESULTS_DIR.mkdir(exist_ok=True)
    runs = {}
    for jobs in JOB_COUNTS:
        socket_path = RESULTS_DIR / f"bench_serve_{jobs}.sock"
        if socket_path.exists():
            socket_path.unlink()
        try:
            runs[jobs] = _drive_daemon(str(socket_path), jobs)
        finally:
            if socket_path.exists():
                socket_path.unlink()
    return runs


def _reference_points() -> list:
    """The one-shot sweep the daemon must reproduce bit-for-bit."""
    from repro.designs import system_builders
    from repro.soc import design_space

    soc = system_builders()[_BENCH_SYSTEM](atpg_seed=SEED)
    return [
        {
            "index": p.index,
            "selection": {core: v + 1 for core, v in p.selection.items()},
            "tat": p.tat,
            "chip_cells": p.chip_cells,
            "label": p.label(),
        }
        for p in design_space(soc)
    ]


def test_serve_daemon(benchmark, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    runs = benchmark.pedantic(run_serving, rounds=ROUNDS, iterations=1)

    reference = _reference_points()
    for jobs, run in runs.items():
        # determinism: daemon results == one-shot CLI results, cold == warm
        assert run["cold_result"]["points"] == reference, (
            f"jobs={jobs}: daemon sweep diverged from one-shot design_space"
        )
        assert run["warm_result"] == run["cold_result"], (
            f"jobs={jobs}: warm result differs from cold"
        )

    serial = runs[JOB_COUNTS[0]]
    for result in serial["concurrent"]["results"]:
        assert result == serial["cold_result"], (
            "a concurrent client saw a divergent sweep result"
        )

    # the resident state must pay off: warm >= 3x faster than cold
    warm_p50 = _percentile(serial["warm_latencies"], 50)
    speedup = serial["cold_s"] / max(warm_p50, 1e-9)
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm/cold speedup {speedup:.1f}x below {WARM_SPEEDUP_FLOOR}x "
        f"(cold {serial['cold_s']:.3f}s, warm p50 {warm_p50:.4f}s)"
    )
    # ...and the hits must come from the daemon's result cache
    cache = serial["stats"]["result_cache"]
    assert cache["hits"] >= WARM_ROUNDS, cache

    concurrent = serial["concurrent"]
    payload = {
        "system": _BENCH_SYSTEM,
        "job_counts": list(JOB_COUNTS),
        "cold_s": {str(jobs): runs[jobs]["cold_s"] for jobs in runs},
        "warm": {
            "rounds": WARM_ROUNDS,
            "p50_s": warm_p50,
            "p99_s": _percentile(serial["warm_latencies"], 99),
            "speedup_vs_cold": speedup,
        },
        "concurrent": {
            "clients": concurrent["clients"],
            "requests": concurrent["requests"],
            "wall_s": concurrent["wall_s"],
            "throughput_rps": concurrent["throughput_rps"],
            "p50_s": _percentile(concurrent["latencies"], 50),
            "p99_s": _percentile(concurrent["latencies"], 99),
        },
        "result_cache": {k: cache[k] for k in ("size", "hits", "misses")},
    }
    write_bench_json(results_dir, "serve", benchmark, payload, rounds=ROUNDS)

    rows = [
        [
            str(jobs),
            f"{runs[jobs]['cold_s'] * 1000:.1f}",
            f"{_percentile(runs[jobs]['warm_latencies'], 50) * 1000:.2f}",
            f"{_percentile(runs[jobs]['warm_latencies'], 99) * 1000:.2f}",
        ]
        for jobs in runs
    ]
    text = render_table(
        ["jobs", "cold (ms)", "warm p50 (ms)", "warm p99 (ms)"],
        rows,
        title=f"repro serve: {_BENCH_SYSTEM} sweep latency",
    )
    text += (
        f"\n\nconcurrent: {concurrent['clients']} clients, "
        f"{concurrent['requests']} requests in {concurrent['wall_s']:.3f}s "
        f"({concurrent['throughput_rps']:.0f} req/s); "
        f"warm/cold speedup {speedup:.0f}x"
    )
    write_result(results_dir, "serve", text)
    print(json.dumps(payload["warm"], indent=2))
