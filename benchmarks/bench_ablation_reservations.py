"""Ablation: the Section 5.1 edge-reservation (shared-resource) rule.

When two transparency paths of a core share an RCG edge or an input
port, they cannot carry data in the same cycles -- the paper reserves
edges for cycle windows, so the reused edge pushes the second transfer
out.  Our model folds this into the combined justification latency
(paths sharing a resource add; disjoint groups take the max).

This bench removes the rule (naive latency = max over the slices) and
measures what it would get wrong: the CPU's Version 1 Address would
look like 6 cycles instead of 8, and the DISPLAY test of the Section 3
example would be scheduled at 525 x 7 + 3 instead of 525 x 9 + 3 --
an 18% underestimate that would produce corrupted test data on silicon.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.obs import METRICS
from repro.util import render_table


def latency_models(soc):
    """(combined, naive-max) CPU Address latency per version + DISPLAY TAT."""
    cpu = soc.cores["CPU"]
    display = soc.cores["DISPLAY"]
    pre_db = soc.cores["PREPROCESSOR"].version(1).justify_latency("DB", 0, 8)
    rows = []
    for version in cpu.versions:
        keys = [k for k in version.justify_paths if k[0] == "Address"]
        combined = version.combined_justify_latency(keys)
        naive = max(version.justify_paths[k].latency for k in keys)
        steps = display.hscan_vectors
        correct_tat = steps * (pre_db + combined) + 3
        naive_tat = steps * (pre_db + naive) + 3
        rows.append((version.name, combined, naive, correct_tat, naive_tat))
    return rows


def test_ablation_shared_resource_rule(benchmark, system1_paper_vectors, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    rows = benchmark.pedantic(
        latency_models, args=(system1_paper_vectors,), rounds=3, iterations=1
    )
    write_bench_json(
        results_dir,
        "ablation_reservations",
        benchmark,
        {
            name: {"reserved": combined, "naive": naive, "tat": correct}
            for name, combined, naive, correct, _naive_tat in rows
        },
        rounds=3,
    )

    table = [
        [name, combined, naive, correct, naive_tat,
         f"{100 * (correct - naive_tat) / correct:.1f}%"]
        for name, combined, naive, correct, naive_tat in rows
    ]
    text = render_table(
        ["CPU version", "reserved D->A(11:0)", "naive (max slice)",
         "DISPLAY TAT (reserved)", "DISPLAY TAT (naive)", "underestimate"],
        table,
        title="Ablation: Section 5.1 edge reservation vs naive max-latency",
    )
    write_result(results_dir, "ablation_reservations", text)

    by_name = {name: (combined, naive, correct, naive_tat) for name, combined, naive, correct, naive_tat in rows}
    # Version 1 shares (Data -> IR): 8 vs 6; the Section 3 schedule depends on it
    combined, naive, correct, naive_tat = by_name["Version 1"]
    assert combined == 8 and naive == 6
    assert correct == 4728 and naive_tat == 3678
    # every version: reservation can only lengthen the schedule
    for name, (combined, naive, correct, naive_tat) in by_name.items():
        assert combined >= naive
        assert correct >= naive_tat
    # Version 3's two 1-cycle paths still share the Data port: 2 vs 1
    assert by_name["Version 3"][0] == 2 and by_name["Version 3"][1] == 1
