"""Parallel evaluation engine: worker-pool fan-out + plan-cache scaling.

Sweeps the full design space of System2-System4 at ``jobs`` in {1, 2, 4}
(cache off, warm executors, so the numbers isolate pool scaling) and
compares a cache-off sweep against a warm-cache sweep at ``jobs=1``.
Every configuration's point list must be bit-identical to the serial
cache-off baseline -- the engine's headline guarantee.

Pool speedup needs physical CPUs; on a single-CPU runner the jobs>1
wall times are reported but not asserted against (the determinism
checks always run).  ``BENCH_parallel.json`` carries the full matrix:
per-system wall times per job count, cache on/off times, hit counters,
and the runner's CPU count.
"""

from __future__ import annotations

import os
import time

from conftest import SEED, write_bench_json, write_result

from repro.exec import ParallelExecutor, plan_cache_for
from repro.obs import METRICS
from repro.soc.optimizer import design_space, sweep_context
from repro.util import render_table

ROUNDS = 1
JOB_COUNTS = (1, 2, 4)
#: pool-speedup floor asserted when the runner has >= 4 CPUs
POOL_SPEEDUP_FLOOR = 1.8


def _fresh_systems():
    """Bench systems rebuilt fresh (no shared plan cache between configs)."""
    from repro.designs import build_system2, build_system3, build_system4

    return [
        build_system2(atpg_seed=SEED),
        build_system3(atpg_seed=SEED),
        build_system4(atpg_seed=SEED),
    ]


def _point_key(point):
    return (
        tuple(sorted(point.selection.items())),
        point.tat,
        point.chip_cells,
        tuple(str(m) for m in point.plan.test_muxes),
    )


def _sweep_with_pool(jobs):
    """Per-system (wall time, point keys) at one job count, cache off."""
    timings = {}
    keys = {}
    for soc in _fresh_systems():
        with ParallelExecutor(
            jobs, context=sweep_context(soc, use_cache=False)
        ) as executor:
            executor.warm()  # pool startup stays out of the timing
            start = time.perf_counter()
            points = design_space(soc, executor=executor, use_cache=False)
            timings[soc.name] = time.perf_counter() - start
            keys[soc.name] = [_point_key(p) for p in points]
    return timings, keys


def _sweep_with_cache():
    """Cache-off vs warm-cache sweep times (serial), plus hit counts."""
    off = {}
    warm = {}
    hits = {}
    for soc in _fresh_systems():
        start = time.perf_counter()
        design_space(soc, use_cache=False)
        off[soc.name] = time.perf_counter() - start

        design_space(soc, use_cache=True)  # populate
        hits_before = METRICS.counter("exec.cache.hits").value
        start = time.perf_counter()
        points = design_space(soc, use_cache=True)
        warm[soc.name] = time.perf_counter() - start
        hits[soc.name] = METRICS.counter("exec.cache.hits").value - hits_before
        warm[soc.name + "_keys"] = [_point_key(p) for p in points]
    return off, warm, hits


def run_matrix():
    pool = {jobs: _sweep_with_pool(jobs) for jobs in JOB_COUNTS}
    cache_off, cache_warm, cache_hits = _sweep_with_cache()
    return pool, cache_off, cache_warm, cache_hits


def test_parallel_sweep(benchmark, results_dir):
    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    pool, cache_off, cache_warm, cache_hits = benchmark.pedantic(
        run_matrix, rounds=ROUNDS, iterations=1
    )

    systems = sorted(pool[1][0])
    cpus = os.cpu_count() or 1

    # ------------------------------------------------------------------
    # determinism: every configuration reproduces the serial baseline
    baseline = pool[1][1]
    for jobs in JOB_COUNTS:
        assert pool[jobs][1] == baseline, f"jobs={jobs} diverged from serial"
    for name in systems:
        assert cache_warm[name + "_keys"] == baseline[name], (
            f"warm cache diverged from serial on {name}"
        )

    # warm caches must actually be exercised on the reuse-friendly systems
    assert cache_hits["System3"] > 0
    assert cache_hits["System4"] > 0
    # ...and pay off: a fully warm sweep beats planning from scratch
    for name in ("System3", "System4"):
        assert cache_warm[name] < cache_off[name], (
            f"warm plan cache slower than cache-off on {name}: "
            f"{cache_warm[name]:.3f}s vs {cache_off[name]:.3f}s"
        )

    # pool scaling is only physical with real CPUs behind the workers
    if cpus >= 4:
        speedup = pool[1][0]["System4"] / pool[4][0]["System4"]
        assert speedup >= POOL_SPEEDUP_FLOOR, (
            f"jobs=4 speedup {speedup:.2f}x below {POOL_SPEEDUP_FLOOR}x "
            f"on System4 ({cpus} CPUs)"
        )

    # ------------------------------------------------------------------
    payload = {
        "cpus": cpus,
        "job_counts": list(JOB_COUNTS),
        "pool": {
            str(jobs): {name: pool[jobs][0][name] for name in systems}
            for jobs in JOB_COUNTS
        },
        "cache": {
            name: {
                "off_wall_s": cache_off[name],
                "warm_wall_s": cache_warm[name],
                "hits": cache_hits[name],
                "speedup": cache_off[name] / max(cache_warm[name], 1e-9),
            }
            for name in systems
        },
    }
    write_bench_json(results_dir, "parallel", benchmark, payload, rounds=ROUNDS)

    rows = []
    for name in systems:
        t1 = pool[1][0][name]
        rows.append(
            [
                name,
                f"{t1 * 1000:.1f}",
                f"{pool[2][0][name] * 1000:.1f}",
                f"{pool[4][0][name] * 1000:.1f}",
                f"{cache_off[name] * 1000:.1f}",
                f"{cache_warm[name] * 1000:.1f}",
                f"{cache_off[name] / max(cache_warm[name], 1e-9):.2f}x",
                cache_hits[name],
            ]
        )
    text = render_table(
        [
            "system",
            "jobs=1 (ms)",
            "jobs=2 (ms)",
            "jobs=4 (ms)",
            "cache off (ms)",
            "cache warm (ms)",
            "cache speedup",
            "hits",
        ],
        rows,
        title=f"Design-space sweep: pool fan-out + plan cache ({cpus} CPUs)",
    )
    write_result(results_dir, "parallel", text)
