"""Memory-core testing: March BIST (the paper's Section 5 footnote).

The RAM/ROM cores are excluded from the CCG and tested by BIST.  This
bench grades March C- (and the cheaper March X/Y) against the injected
stuck-at and inversion-coupling fault models on a scaled-down array and
reports the 4KB cores' BIST cycle counts.
"""

from __future__ import annotations

from conftest import write_bench_json, write_result

from repro.bist import MARCH_C_MINUS, MARCH_X, MARCH_Y, plan_memory_bist
from repro.bist.march import grade_march
from repro.bist.memory import all_stuck_at_faults, neighbour_coupling_faults
from repro.util import render_table

WORDS, WIDTH = 64, 8


def grade_all():
    stuck = all_stuck_at_faults(WORDS, WIDTH, stride=4)
    coupling = neighbour_coupling_faults(WORDS, WIDTH, stride=4)
    results = {}
    for test in (MARCH_C_MINUS, MARCH_X, MARCH_Y):
        s_detected, _ = grade_march(test, WORDS, WIDTH, stuck)
        c_detected, _ = grade_march(test, WORDS, WIDTH, coupling)
        results[test.name] = (s_detected, len(stuck), c_detected, len(coupling))
    return results


def test_march_bist_grading(benchmark, system1, results_dir):
    from repro.obs import METRICS

    METRICS.reset()  # BENCH json carries exactly the measured runs' counters
    results = benchmark.pedantic(grade_all, rounds=1, iterations=1)
    write_bench_json(
        results_dir,
        "march_bist",
        benchmark,
        {
            name: {"stuck_detected": s_det, "coupling_detected": c_det}
            for name, (s_det, _s_total, c_det, _c_total) in results.items()
        },
        rounds=1,
    )

    rows = []
    for name, (s_detected, s_total, c_detected, c_total) in results.items():
        rows.append(
            [name, f"{100 * s_detected / s_total:.1f}", f"{100 * c_detected / c_total:.1f}"]
        )
    plan = plan_memory_bist(system1)
    rows.append(["-- System 1 BIST --", f"{plan.total_cycles} cycles", f"{plan.total_cells} cells"])
    text = render_table(
        ["March test", "stuck-at coverage %", "coupling coverage %"],
        rows,
        title=f"Memory BIST grading ({WORDS}x{WIDTH} sample array)",
    )
    write_result(results_dir, "march_bist", text)

    c_minus = results[MARCH_C_MINUS.name]
    assert c_minus[0] == c_minus[1], "March C- must detect all stuck-ats"
    assert c_minus[2] == c_minus[3], "March C- must detect all inversion couplings"
    x = results[MARCH_X.name]
    assert x[2] <= c_minus[2]
