"""Command-line interface: inspect cores, sweep systems, compare methods.

Usage (after ``pip install -e .``)::

    python -m repro cores                     # example cores + key stats
    python -m repro versions CPU              # a core's transparency ladder
    python -m repro plan System1              # test plan (min-area versions)
    python -m repro plan System1 -s CPU=3     # ...with the CPU at Version 3
    python -m repro sweep System1             # Figure 10's design space
    python -m repro compare System2           # SOCET vs FSCAN-BSCAN summary
    python -m repro schedule System3          # concurrent-session schedule
    python -m repro schedule System4 -p 80    # ...under a scan-power budget
    python -m repro lint System3              # static design-rule check
    python -m repro lint System3 --json       # ...as machine-readable JSON
    python -m repro certify System3 --json    # transparency proof certificate
    python -m repro certify System1 --replay  # ...checked against the simulator
    python -m repro profile System3           # per-stage time/counter breakdown
    python -m repro regress --ledger L.jsonl  # statistical regression gates
    python -m repro report System1 --quick    # markdown/HTML run report
    python -m repro explain System1 --quick   # search-effort attribution report
    python -m repro explain System1 --json    # ...as the repro-attrib artifact
    python -m repro serve                     # resident planning daemon
    python -m repro submit sweep System1 --wait   # ...job via the daemon
    python -m repro jobs                      # ...daemon job/queue status
    python -m repro top 127.0.0.1:7457        # ...live daemon dashboard

Global observability flags work on every subcommand (before or after
it): ``--trace FILE`` writes a Chrome ``trace_event`` JSON of the run,
``--metrics`` appends the full instrument table, and ``-v``/``-vv``
turn on INFO/DEBUG logging from the library.  ``--jobs N`` (or the
``REPRO_JOBS`` env var) fans the parallel stages -- per-core ATPG, the
design-space sweep, per-point scheduling -- over N worker processes;
results are bit-identical at any job count.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro import __version__
from repro.errors import ReproError, UsageError
from repro.util import render_table


def _core_builders():
    from repro.designs import core_builders

    return core_builders()


def _build_system(name: str):
    from repro.designs import system_builders

    builders = system_builders()
    if name not in builders:
        raise UsageError(f"unknown system {name!r}; choose from {sorted(builders)}")
    return builders[name]()


def _parse_selection(soc, spec: Optional[str]) -> Optional[Dict[str, int]]:
    if not spec:
        return None
    selection = {core.name: 0 for core in soc.testable_cores()}
    for item in spec.split(","):
        try:
            core_name, version = item.split("=")
            index = int(version) - 1
        except ValueError:
            raise UsageError(f"bad selection item {item!r}; expected CORE=N")
        if core_name not in selection:
            raise UsageError(f"unknown core {core_name!r}")
        if not 0 <= index < soc.cores[core_name].version_count:
            raise UsageError(
                f"{core_name} has versions 1..{soc.cores[core_name].version_count}"
            )
        selection[core_name] = index
    return selection


# ----------------------------------------------------------------------
def cmd_cores(_args) -> int:
    from repro.dft import insert_hscan
    from repro.elaborate import elaborate

    rows = []
    for name, builder in sorted(_core_builders().items()):
        circuit = builder()
        area = elaborate(circuit).netlist.area()
        if name in ("RAM", "ROM"):
            rows.append([name, circuit.flip_flop_count(), area, "-", "(memory: BIST)"])
            continue
        plan = insert_hscan(circuit)
        rows.append([name, circuit.flip_flop_count(), area, plan.depth,
                     f"{plan.extra_area} cells HSCAN"])
    print(render_table(["core", "FFs", "area(cells)", "scan depth", "DFT"], rows))
    return 0


def cmd_versions(args) -> int:
    from repro.flow import prepare_core

    builders = _core_builders()
    if args.core not in builders:
        raise UsageError(f"unknown core {args.core!r}; choose from {sorted(builders)}")
    prep = prepare_core(builders[args.core]())
    table = prep.version_latency_table()
    headers = list(table[0].keys())
    rows = [[row.get(h, "-") for h in headers] for row in table]
    print(render_table(headers, rows, title=f"{args.core}: transparency versions"))
    print(f"\nATPG: {prep.vector_count} vectors, "
          f"FC {prep.atpg.report.fault_coverage:.1f}%, "
          f"TEff {prep.atpg.report.test_efficiency:.1f}%")
    return 0


def cmd_plan(args) -> int:
    from repro.soc import plan_soc_test

    soc = _build_system(args.system)
    selection = _parse_selection(soc, args.select)
    plan = plan_soc_test(soc, selection)
    rows = []
    for name, core_plan in sorted(plan.core_plans.items()):
        rows.append([name, plan.selection[name] + 1, core_plan.cadence,
                     core_plan.scan_steps, core_plan.flush, core_plan.tat])
    print(render_table(
        ["core", "version", "cadence", "scan steps", "flush", "TAT"],
        rows,
        title=f"{soc.name}: SOCET test plan",
    ))
    print(f"\ntotal TAT: {plan.total_tat} cycles")
    print(f"chip-level DFT: {plan.chip_dft_cells} cells "
          f"(versions {plan.version_cells}, muxes {plan.test_mux_cells}, "
          f"controller {plan.controller_cells})")
    for mux in plan.test_muxes:
        print(f"  {mux}")
    return 0


def render_sweep(system: str, points: List[Dict]) -> str:
    """The ``repro sweep`` output over plain point dicts.

    Shared by the one-shot command and ``repro submit sweep --wait``
    (which gets the same dicts over the wire), so the two paths are
    byte-identical by construction.
    """
    rows = [[p["index"], p["chip_cells"], p["tat"], p["label"]] for p in points]
    table = render_table(["pt", "chip cells", "TAT", "versions"], rows,
                         title=f"{system}: design space")
    best = min(points, key=lambda p: (p["tat"], p["chip_cells"]))
    return (f"{table}\n"
            f"\nmin-area: point 1 ({points[0]['tat']} cycles); "
            f"min-TAT: point {best['index']} ({best['tat']} cycles, "
            f"{best['label']})")


def cmd_sweep(args) -> int:
    from repro.soc import design_space

    soc = _build_system(args.system)
    points = design_space(soc, jobs=getattr(args, "jobs", None))
    print(render_sweep(soc.name, [
        {"index": p.index, "chip_cells": p.chip_cells, "tat": p.tat,
         "label": p.label()}
        for p in points
    ]))
    return 0


def cmd_compare(args) -> int:
    from repro.flow import render_area_table, render_schedule_table, run_socet

    soc = _build_system(args.system)
    run = run_socet(soc, jobs=getattr(args, "jobs", None))
    print(render_area_table(run.area_rows()))
    print()
    print(render_schedule_table(run.schedule_rows()))
    ratio = run.baseline.total_tat / max(1, run.min_tat_plan.total_tat)
    print(f"\nFSCAN-BSCAN: {run.baseline.total_tat} cycles; "
          f"SOCET: {run.min_area_plan.total_tat} (min area) / "
          f"{run.min_tat_plan.total_tat} (min TApp) -- {ratio:.1f}x faster")
    return 0


def cmd_schedule(args) -> int:
    from repro.errors import ScheduleError
    from repro.flow import render_session_table
    from repro.schedule import render_gantt
    from repro.soc import plan_soc_test

    soc = _build_system(args.system)
    selection = _parse_selection(soc, args.select)
    plan = plan_soc_test(soc, selection)
    try:
        schedule = plan.schedule(
            algorithm=args.algorithm,
            power_budget=args.power_budget,
            include_bist=args.bist,
        )
    except ScheduleError as error:
        raise UsageError(f"scheduling failed: {error}")
    print(render_gantt(schedule))
    print()
    print(render_session_table(schedule))
    print(f"\nserial TAT: {schedule.serial_tat} cycles; "
          f"scheduled TAT: {schedule.makespan} cycles "
          f"({schedule.speedup:.2f}x, {len(schedule.sessions())} sessions)")
    if args.power_budget is not None:
        print(f"peak scan activity: {schedule.peak_activity} FFs "
              f"(budget {args.power_budget})")
    return 0


def cmd_export(args) -> int:
    import json

    from repro.flow.export import plan_to_dict
    from repro.soc import plan_soc_test

    soc = _build_system(args.system)
    selection = _parse_selection(soc, args.select)
    plan = plan_soc_test(soc, selection)
    payload = plan_to_dict(plan)
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_lint(args) -> int:
    from repro.lint import DEFAULT_REGISTRY, Severity, lint_soc

    if args.rules:
        rows = [
            [rule.rule_id, rule.scope, rule.severity.label, rule.title]
            for rule in DEFAULT_REGISTRY.rules()
        ]
        print(render_table(["rule", "scope", "severity", "checks that"], rows,
                           title="registered lint rules"))
        return 0
    if not args.system:
        raise UsageError("a SYSTEM argument is required (or use --rules)")
    try:
        fail_on = Severity.parse(args.fail_on)
    except ValueError as error:
        raise UsageError(str(error))
    registry = DEFAULT_REGISTRY.clone()
    for rule_id in args.disable or ():
        if rule_id not in registry:
            raise UsageError(
                f"unknown rule {rule_id!r}; run 'repro lint --rules' for the list"
            )
        registry.disable(rule_id)
    soc = _build_system(args.system)
    report = lint_soc(soc, registry=registry)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 1 if report.has_at_least(fail_on) else 0


def cmd_certify(args) -> int:
    from repro.analysis import certify_soc, replay_soc
    from repro.lint import Severity

    try:
        fail_on = Severity.parse(args.fail_on)
    except ValueError as error:
        raise UsageError(str(error))
    soc = _build_system(args.system)
    selection = _parse_selection(soc, args.select)
    certificate = certify_soc(soc, selection=selection)
    diagnostics = certificate.diagnostics(escalate=True)
    if args.replay:
        replays = replay_soc(soc)
        certificate.replays = [result.to_dict() for result in replays]
        from repro.lint.diagnostics import Diagnostic, location

        for result in replays:
            if not result.ok:
                diagnostics.append(Diagnostic(
                    rule="analysis.replay",
                    severity=Severity.ERROR,
                    location=location(("core", result.core),
                                      ("version", result.version_index)),
                    message=(
                        f"proved {result.direction} path for {result.port} failed "
                        f"gate-level replay: {result.detail}"
                    ),
                    hint="a proof the simulator contradicts is a certifier bug; report it",
                ))
    text = certificate.to_json() if args.json else _render_certificate(
        certificate, diagnostics
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 1 if any(d.severity >= fail_on for d in diagnostics) else 0


def _render_certificate(certificate, diagnostics) -> str:
    summary = certificate.summary()
    rows = []
    for version in certificate.versions:
        refuted = [path for path in version.paths if not path.proved]
        selected = certificate.selection.get(version.core) == version.index
        rows.append([
            version.core,
            f"V{version.index + 1}" + ("*" if selected else ""),
            str(len(version.paths)),
            str(len(version.paths) - len(refuted)),
            str(len(refuted)),
            "proved" if version.proved else "REFUTED",
        ])
    lines = [render_table(
        ["core", "version", "paths", "proved", "refuted", "status"], rows,
        title=f"transparency certificate: {certificate.system} "
              f"({'certified' if certificate.certified else 'NOT CERTIFIED'})",
    )]
    routes = [
        f"  {route.status:<9} {route.kind:<11} {route.core}.{route.port} "
        f"(latency {route.latency})"
        for route in certificate.routes
    ]
    if routes:
        lines.append(f"access routes ({summary['routes']} total, "
                     f"{summary['routes_refuted']} refuted):")
        lines.extend(routes)
    if certificate.plan_error:
        lines.append(f"plan error: {certificate.plan_error}")
    if certificate.replays is not None:
        failed = sum(1 for replay in certificate.replays if not replay["ok"])
        lines.append(f"gate-level replay: {len(certificate.replays)} proved "
                     f"paths, {failed} mismatched")
    if diagnostics:
        lines.append("")
        lines.extend(str(d) for d in diagnostics)
    return "\n".join(lines)


def _profile_series(system: str, quick: bool) -> str:
    """The ledger series key for a profile variant (quick runs do less
    work, so they must not share a baseline window with full runs)."""
    return f"profile-{system}" + ("-quick" if quick else "")


def _baseline_record(path: str, series: str) -> Optional[Dict]:
    """The newest baseline record of one series, with usage-grade errors.

    A missing path, or a file that is not a run ledger (wrong schema,
    not JSONL), is an exit-2 usage error naming the offending path --
    never a traceback: pointing ``--baseline`` at the wrong file is an
    operator mistake, not a library failure.
    """
    from repro.errors import LedgerSchemaError
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(path)
    if not ledger.exists():
        raise UsageError(f"baseline ledger {path!r} does not exist")
    try:
        return ledger.latest(series)
    except LedgerSchemaError as error:
        raise UsageError(f"baseline ledger {path!r} is not a run ledger: {error}")


def cmd_profile(args) -> int:
    from repro.flow.profile import QUICK_MAX_FAULTS, profile_system

    max_faults = QUICK_MAX_FAULTS if args.quick else None
    report = profile_system(
        args.system,
        seed=args.seed,
        max_faults=max_faults,
        jobs=getattr(args, "jobs", None),
    )
    print(report.render())
    if args.ledger:
        from repro.obs.ledger import RunLedger

        record = report.ledger_record(bench=_profile_series(args.system, args.quick))
        RunLedger(args.ledger).append(record)
        print(f"appended {record['bench']} record to {args.ledger}", file=sys.stderr)
    return 0


def cmd_regress(args) -> int:
    from repro.errors import RegressionError
    from repro.obs.ledger import RunLedger
    from repro.obs.regress import GatePolicy, compare_ledgers

    candidate = RunLedger(args.ledger)
    if not candidate.exists():
        raise UsageError(f"ledger {args.ledger!r} does not exist")
    baseline = None
    if args.baseline:
        baseline = RunLedger(args.baseline)
        if not baseline.exists():
            raise UsageError(f"baseline ledger {args.baseline!r} does not exist")
    # empty prefixes would match every counter; drop them defensively
    ignore = tuple(p for p in (args.ignore_counter or ()) if p)
    policy = GatePolicy(
        window=args.window,
        min_ratio=args.min_ratio,
        alpha=args.alpha,
        small_sample_ratio=args.small_sample_ratio,
        counter_ignore=ignore if args.ignore_counter else GatePolicy.counter_ignore,
        wall_gate=args.wall_gate,
        counter_gate=not args.no_counter_gate,
        hist_gate=not args.no_hist_gate,
        hist_percentile=args.hist_percentile,
        hist_min_ratio=args.hist_min_ratio,
    )
    try:
        report = compare_ledgers(
            candidate, baseline, benches=args.bench or None, policy=policy
        )
    except RegressionError as error:
        raise UsageError(str(error))
    print(report.to_json() if args.json else report.render())
    return report.exit_code()


def cmd_report(args) -> int:
    from repro.flow.profile import QUICK_MAX_FAULTS, profile_system
    from repro.obs import METRICS, TRACER, enable_tracing
    from repro.obs.ledger import RunLedger
    from repro.obs.report import build_run_report

    series = _profile_series(args.system, args.quick)
    # resolve the baseline before the measured run: a bad --baseline
    # path should fail fast, not after minutes of pipeline work
    baseline_record = None
    if args.baseline:
        baseline_record = _baseline_record(args.baseline, series)
    was_enabled = TRACER.enabled
    if not was_enabled:
        enable_tracing()  # the waterfall is derived from trace spans
    try:
        profile = profile_system(
            args.system,
            seed=args.seed,
            max_faults=QUICK_MAX_FAULTS if args.quick else None,
            jobs=getattr(args, "jobs", None),
        )
    finally:
        if not was_enabled:
            TRACER.disable()
    record = profile.ledger_record(bench=series)
    if args.ledger:
        RunLedger(args.ledger).append(record)
    report = build_run_report(
        title=f"{args.system} pipeline",
        record=record,
        baseline=baseline_record,
        trace_events=TRACER.events(),
        registry=METRICS,
        summary=profile.summary,
        top_k=args.top,
    )
    rendered = {
        "md": report.to_markdown,
        "html": report.to_html,
        "json": report.to_json,
    }[args.format]()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + ("\n" if not rendered.endswith("\n") else ""))
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(rendered)
    return 0


def _explain_series(system: str, quick: bool) -> str:
    """The ledger series key for an explain variant (mirrors profiles)."""
    return f"explain-{system}" + ("-quick" if quick else "")


def cmd_explain(args) -> int:
    from repro.flow.explain import explain_system
    from repro.flow.profile import QUICK_MAX_FAULTS
    from repro.obs import METRICS
    from repro.obs.ledger import RunLedger
    from repro.obs.report import build_run_report

    series = _explain_series(args.system, args.quick)
    baseline_record = None
    if args.baseline:
        baseline_record = _baseline_record(args.baseline, series)
    report = explain_system(
        args.system,
        seed=args.seed,
        max_faults=QUICK_MAX_FAULTS if args.quick else None,
        jobs=getattr(args, "jobs", None),
        top_k=args.top,
    )
    record = report.ledger_record(bench=series)
    if args.ledger:
        RunLedger(args.ledger).append(record)
        print(f"appended {record['bench']} record to {args.ledger}",
              file=sys.stderr)
    if args.json:
        # the raw artifact, byte-for-byte what the schema checker and CI
        # diff expect -- not wrapped in the run-report envelope
        text = report.artifact_json()
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote attrib artifact to {args.output}")
        else:
            sys.stdout.write(text)
        return 0
    run_report = build_run_report(
        title=f"{args.system} search effort",
        record=record,
        baseline=baseline_record,
        registry=METRICS,
        summary=record.get("results"),
        top_k=args.top,
    )
    rendered = run_report.to_html() if args.html else run_report.to_markdown()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + ("\n" if not rendered.endswith("\n") else ""))
        print(f"wrote {'html' if args.html else 'md'} report to {args.output}")
    else:
        print(rendered)
    return 0


# ----------------------------------------------------------------------
# serving
# ----------------------------------------------------------------------
#: where ``repro submit``/``repro jobs`` connect by default (the
#: daemon's default listen address)
DEFAULT_SERVE_ADDRESS = "127.0.0.1:7457"


def _wire_selection(spec: Optional[str]) -> Optional[Dict[str, int]]:
    """A ``CORE=N,...`` string as the wire's 1-based selection mapping.

    Only the shape is checked here -- unknown cores and out-of-range
    versions are validated daemon-side against the warm SOC.
    """
    if not spec:
        return None
    selection: Dict[str, int] = {}
    for item in spec.split(","):
        try:
            core_name, version = item.split("=")
            selection[core_name] = int(version)
        except ValueError:
            raise UsageError(f"bad selection item {item!r}; expected CORE=N")
    return selection


def cmd_serve(args) -> int:
    from repro.serve import ServeConfig, ServeDaemon

    daemon = ServeDaemon(ServeConfig(
        address=args.listen,
        jobs=getattr(args, "jobs", None),
        ledger=args.ledger,
        max_queue=args.max_queue,
        address_file=args.address_file,
    ))
    return daemon.run()


def _connect_client(address: str):
    from repro.serve import ServeClient

    try:
        return ServeClient(address)
    except OSError as error:
        raise UsageError(f"cannot connect to daemon at {address!r}: {error}")


def _submit_params(args) -> Dict:
    selection = _wire_selection(args.select)
    if args.type == "plan":
        return {"select": selection} if selection else {}
    if args.type == "sweep":
        return {"selections": [selection]} if selection else {}
    if args.type in ("profile", "explain"):
        return {"quick": args.quick, "seed": args.seed}
    return {}


def _write_job_trace(path: str, job_id: str, spans: List[Dict]) -> None:
    """The job's span tree as a Chrome ``trace_event`` file."""
    import json

    with open(path, "w") as handle:
        json.dump(
            {"traceEvents": spans, "displayTimeUnit": "ms",
             "metadata": {"job": job_id}},
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    print(f"wrote job trace to {path}", file=sys.stderr)


def cmd_submit(args) -> int:
    import json

    if args.job_trace and not args.wait:
        raise UsageError("--job-trace requires --wait (spans exist once the "
                         "job is terminal)")
    with _connect_client(args.connect) as client:
        job_id = client.submit(
            args.type,
            args.system,
            params=_submit_params(args),
            priority=args.priority,
            timeout_s=args.timeout,
            tenant=args.tenant,
        )
        if not args.wait:
            print(job_id)
            return 0
        descriptor, result = client.wait(job_id)
        if args.job_trace:
            _write_job_trace(args.job_trace, job_id, client.spans(job_id))
    if descriptor["state"] != "done":
        print(f"repro: job {job_id} {descriptor['state']}: "
              f"{descriptor['error']}", file=sys.stderr)
        return 1
    if args.json or args.type != "sweep":
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        # same renderer as `repro sweep`, so the outputs are identical
        print(render_sweep(result["system"], result["points"]))
    return 0


def cmd_jobs(args) -> int:
    import json

    with _connect_client(args.connect) as client:
        listing = client.jobs()
        stats = client.stats()
    if args.json:
        print(json.dumps({"jobs": listing, "stats": stats},
                         indent=2, sort_keys=True))
        return 0
    rows = [
        [job["id"], job["type"], job["system"] or "-", job["tenant"],
         job["priority"], job["state"],
         "-" if job["wall_s"] is None else f"{job['wall_s']:.3f}s"]
        for job in listing
    ]
    print(render_table(
        ["job", "type", "system", "tenant", "prio", "state", "wall"],
        rows, title=f"jobs on {args.connect}",
    ))
    print(f"\nqueue depth: {stats['queue_depth']}; "
          f"result cache: {stats['result_cache']['size']} entries "
          f"({stats['result_cache']['hits']} hits); "
          f"draining: {stats['draining']}")
    return 0


def cmd_top(args) -> int:
    from repro.serve.top import run_top

    if args.interval <= 0:
        raise UsageError("--interval must be positive")
    return run_top(
        args.address, interval=args.interval, once=args.once, expo=args.expo
    )


# ----------------------------------------------------------------------
def _observability_parent() -> argparse.ArgumentParser:
    """The global flags, attachable before *or* after the subcommand.

    Defaults are ``SUPPRESS`` so a subparser never clobbers a value the
    main parser already set; ``main`` reads them with ``getattr``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="FILE", default=argparse.SUPPRESS,
        help="write a Chrome trace_event JSON of this run "
             "(open in chrome://tracing or ui.perfetto.dev)",
    )
    group.add_argument(
        "--metrics", action="store_true", default=argparse.SUPPRESS,
        help="print the full metrics table after the command",
    )
    group.add_argument(
        "-v", "--verbose", action="count", default=argparse.SUPPRESS,
        help="library logging: -v for INFO, -vv for DEBUG",
    )
    execution = parent.add_argument_group("execution")
    execution.add_argument(
        "-j", "--jobs", type=int, metavar="N", default=argparse.SUPPRESS,
        help="worker processes for the parallel stages (0 = one per CPU; "
             "default REPRO_JOBS or 1 = serial; results are identical "
             "at any job count)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    obs = _observability_parent()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOCET core-based SOC test planning (DAC'98 reproduction)",
        parents=[obs],
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_cores = sub.add_parser("cores", help="list the example cores", parents=[obs])
    p_cores.set_defaults(func=cmd_cores)

    p_versions = sub.add_parser(
        "versions", help="a core's transparency versions", parents=[obs]
    )
    p_versions.add_argument("core")
    p_versions.set_defaults(func=cmd_versions)

    p_plan = sub.add_parser("plan", help="plan an SOC test", parents=[obs])
    p_plan.add_argument("system")
    p_plan.add_argument("-s", "--select", help="version selection, e.g. CPU=3,DISPLAY=1")
    p_plan.set_defaults(func=cmd_plan)

    p_sweep = sub.add_parser(
        "sweep", help="sweep the version design space", parents=[obs]
    )
    p_sweep.add_argument("system")
    p_sweep.set_defaults(func=cmd_sweep)

    p_compare = sub.add_parser("compare", help="SOCET vs FSCAN-BSCAN", parents=[obs])
    p_compare.add_argument("system")
    p_compare.set_defaults(func=cmd_compare)

    p_schedule = sub.add_parser(
        "schedule", help="concurrent test-session schedule", parents=[obs]
    )
    p_schedule.add_argument("system")
    p_schedule.add_argument("-s", "--select", help="version selection, e.g. CPU=3")
    p_schedule.add_argument(
        "-a", "--algorithm", default="greedy", choices=["greedy", "sessions"],
        help="scheduler: greedy list (default) or session packer",
    )
    p_schedule.add_argument(
        "-p", "--power-budget", type=int,
        help="max concurrent scan activity (flip-flops)",
    )
    p_schedule.add_argument(
        "--bist", action="store_true",
        help="schedule memory-BIST sessions alongside the logic tests",
    )
    p_schedule.set_defaults(func=cmd_schedule)

    p_lint = sub.add_parser(
        "lint", help="static design-rule check of a system", parents=[obs],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  clean: no diagnostics at or above --fail-on\n"
            "  1  diagnostics at or above --fail-on were reported\n"
            "  2  usage error (unknown system, rule, or severity)\n"
        ),
    )
    p_lint.add_argument("system", nargs="?",
                        help="system to lint (e.g. System1)")
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit the diagnostics as a stable JSON document",
    )
    p_lint.add_argument(
        "--fail-on", default="error", metavar="SEVERITY",
        help="lowest severity that causes exit 1: error (default), "
             "warning, or info",
    )
    p_lint.add_argument(
        "--disable", action="append", metavar="RULE",
        help="disable a rule by id (repeatable)",
    )
    p_lint.add_argument(
        "--rules", action="store_true",
        help="list the registered rules and exit",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_certify = sub.add_parser(
        "certify", help="symbolic transparency certification of a system",
        parents=[obs],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  clean: no diagnostics at or above --fail-on\n"
            "  1  diagnostics at or above --fail-on were reported\n"
            "  2  usage error (unknown system, selection, or severity)\n"
        ),
    )
    p_certify.add_argument("system", help="system to certify (e.g. System1)")
    p_certify.add_argument(
        "-s", "--select", help="version selection, e.g. CPU=3 (default: V1s)",
    )
    p_certify.add_argument(
        "--json", action="store_true",
        help="emit the certificate as stable (byte-reproducible) JSON",
    )
    p_certify.add_argument(
        "--fail-on", default="error", metavar="SEVERITY",
        help="lowest severity that causes exit 1: error (default), "
             "warning, or info",
    )
    p_certify.add_argument(
        "--replay", action="store_true",
        help="differentially replay every proved path on the gate-level "
             "simulator and embed the results",
    )
    p_certify.add_argument("-o", "--output", help="output file (default stdout)")
    p_certify.set_defaults(func=cmd_certify)

    p_export = sub.add_parser("export", help="export a test plan as JSON", parents=[obs])
    p_export.add_argument("system")
    p_export.add_argument("-s", "--select", help="version selection, e.g. CPU=3")
    p_export.add_argument("-o", "--output", help="output file (default stdout)")
    p_export.set_defaults(func=cmd_export)

    p_profile = sub.add_parser(
        "profile", help="run the full pipeline, print a per-stage breakdown",
        parents=[obs],
    )
    p_profile.add_argument("system")
    p_profile.add_argument("--seed", type=int, default=0, help="ATPG seed (default 0)")
    p_profile.add_argument(
        "--quick", action="store_true",
        help="cap per-core ATPG at a sampled fault subset (seconds, not minutes)",
    )
    p_profile.add_argument(
        "--ledger", metavar="FILE",
        help="append this run (samples + counters + env fingerprint) to a "
             "JSONL run ledger",
    )
    p_profile.set_defaults(func=cmd_profile)

    p_regress = sub.add_parser(
        "regress", help="statistical regression gates over a run ledger",
        parents=[obs],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  pass: no wall-time regression, counter drift, or SLO breach\n"
            "  1  regression: a series got significantly slower, a\n"
            "     deterministic counter drifted (correctness alarm), and/or a\n"
            "     latency percentile breached its SLO ratio\n"
            "  2  usage error (missing ledger, unknown series)\n"
            "  3  nothing compared (no series had enough baseline records)\n"
        ),
    )
    p_regress.add_argument(
        "bench", nargs="*",
        help="series to gate (default: every series in the ledger)",
    )
    p_regress.add_argument(
        "--ledger", default="benchmarks/results/ledger.jsonl", metavar="FILE",
        help="candidate ledger; each series' newest record is gated "
             "(default %(default)s)",
    )
    p_regress.add_argument(
        "--baseline", metavar="FILE",
        help="baseline ledger (e.g. the committed one); without it the "
             "candidate ledger's own earlier records form the window",
    )
    p_regress.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="baseline records pooled per series (default %(default)s)",
    )
    p_regress.add_argument(
        "--min-ratio", type=float, default=1.25, metavar="X",
        help="median slowdown ratio below which the wall gate never trips "
             "(default %(default)s)",
    )
    p_regress.add_argument(
        "--alpha", type=float, default=0.05, metavar="A",
        help="one-sided significance level of the rank test (default %(default)s)",
    )
    p_regress.add_argument(
        "--small-sample-ratio", type=float, default=2.0, metavar="X",
        help="pure-threshold fallback when significance is unreachable "
             "(default %(default)s)",
    )
    p_regress.add_argument(
        "--ignore-counter", action="append", metavar="PREFIX",
        help="counter prefix excluded from the exact gate (repeatable; "
             "default: exec., serve., attrib., explain.)",
    )
    p_regress.add_argument(
        "--wall-gate", default="auto", choices=["auto", "always", "off"],
        help="auto (default) downgrades the wall gate to advisory when the "
             "environment fingerprints differ",
    )
    p_regress.add_argument(
        "--no-counter-gate", action="store_true",
        help="disable the exact counter comparison",
    )
    p_regress.add_argument(
        "--no-hist-gate", action="store_true",
        help="disable the latency-percentile SLO gate",
    )
    p_regress.add_argument(
        "--hist-percentile", default="p99", choices=["p50", "p90", "p99"],
        help="histogram percentile the SLO gate compares (default %(default)s)",
    )
    p_regress.add_argument(
        "--hist-min-ratio", type=float, default=1.5, metavar="X",
        help="percentile ratio vs the baseline median below which the SLO "
             "gate never trips (default %(default)s)",
    )
    p_regress.add_argument(
        "--json", action="store_true",
        help="emit the verdicts as a stable JSON document",
    )
    p_regress.set_defaults(func=cmd_regress)

    p_report = sub.add_parser(
        "report", help="run the pipeline, emit a markdown/HTML run report",
        parents=[obs],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "The report combines the stage waterfall (from trace spans), the\n"
            "top-k hotspots (from the profiler), and a counter diff against\n"
            "the baseline ledger's newest record of the same series.\n"
        ),
    )
    p_report.add_argument("system")
    p_report.add_argument("--seed", type=int, default=0, help="ATPG seed (default 0)")
    p_report.add_argument(
        "--quick", action="store_true",
        help="cap per-core ATPG at a sampled fault subset (seconds, not minutes)",
    )
    p_report.add_argument(
        "-f", "--format", default="md", choices=["md", "html", "json"],
        help="report format (default %(default)s)",
    )
    p_report.add_argument("-o", "--output", metavar="FILE",
                          help="output file (default stdout)")
    p_report.add_argument(
        "--ledger", metavar="FILE",
        help="also append this run's record to a JSONL run ledger",
    )
    p_report.add_argument(
        "--baseline", metavar="FILE",
        help="baseline ledger for the counter diff",
    )
    p_report.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="hotspot sections to show (default %(default)s)",
    )
    p_report.set_defaults(func=cmd_report)

    p_explain = sub.add_parser(
        "explain", help="attribute search effort: hard faults, sim work, "
                        "optimizer moves",
        parents=[obs],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Runs the search stages (SOC build, per-core ATPG, planning,\n"
            "design-space sweep, TAT minimization) with the effort-attribution\n"
            "collector on and reports where the search went: the top-K hardest\n"
            "faults (PODEM effort ledger), simulation work per (level, gate\n"
            "kind), and the optimizer's move trajectory.  --json emits the raw\n"
            "byte-stable 'repro-attrib' artifact, checkable offline with\n"
            "'python -m repro.obs.attrib FILE'; it is bit-identical at any\n"
            "--jobs count and under either simulation backend.  REPRO_ATTRIB=deep\n"
            "adds per-fault-site cone-walk detail.\n"
        ),
    )
    p_explain.add_argument("system")
    p_explain.add_argument("--seed", type=int, default=0,
                           help="ATPG seed (default 0)")
    p_explain.add_argument(
        "--quick", action="store_true",
        help="cap per-core ATPG at a sampled fault subset (seconds, not minutes)",
    )
    explain_format = p_explain.add_mutually_exclusive_group()
    explain_format.add_argument(
        "--json", action="store_true",
        help="emit the raw repro-attrib artifact (byte-stable JSON)",
    )
    explain_format.add_argument(
        "--html", action="store_true",
        help="render the report as a standalone HTML page (default: markdown)",
    )
    p_explain.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="hard faults to rank in the artifact and report (default %(default)s)",
    )
    p_explain.add_argument("-o", "--output", metavar="FILE",
                           help="output file (default stdout)")
    p_explain.add_argument(
        "--ledger", metavar="FILE",
        help="also append this run's record (kind 'explain', artifact "
             "embedded) to a JSONL run ledger",
    )
    p_explain.add_argument(
        "--baseline", metavar="FILE",
        help="baseline ledger for the counter diff (markdown/HTML report only)",
    )
    p_explain.set_defaults(func=cmd_explain)

    p_serve = sub.add_parser(
        "serve", help="run the resident planning daemon", parents=[obs],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Speaks the line-delimited JSON 'repro-serve' protocol (see\n"
            "DESIGN.md) over TCP or a unix-domain socket.  SIGTERM (or the\n"
            "'shutdown' op) drains gracefully: queued jobs finish, results\n"
            "flush to --ledger, exit 0.  A second SIGTERM cancels the queue.\n"
        ),
    )
    p_serve.add_argument(
        "--listen", default=DEFAULT_SERVE_ADDRESS, metavar="ADDR",
        help="HOST:PORT (port 0 = ephemeral) or unix:PATH "
             "(default %(default)s)",
    )
    p_serve.add_argument(
        "--ledger", metavar="FILE",
        help="flush the session's per-job samples to this JSONL run "
             "ledger on drain (kind 'serve')",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="queued-job capacity before submissions are rejected "
             "(default %(default)s)",
    )
    p_serve.add_argument(
        "--address-file", metavar="FILE",
        help="write the bound address here once listening (readiness "
             "signal; resolves ephemeral ports)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running daemon", parents=[obs],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  submitted (or, with --wait, the job finished 'done')\n"
            "  1  the awaited job failed / was cancelled / timed out, or\n"
            "     the daemon rejected the request (queue full, draining)\n"
            "  2  usage error (bad selection, unreachable daemon)\n"
        ),
    )
    p_submit.add_argument("type",
                          choices=["plan", "sweep", "profile", "lint", "explain"],
                          help="job type")
    p_submit.add_argument("system", help="system to operate on (e.g. System1)")
    p_submit.add_argument(
        "-s", "--select", help="version selection, e.g. CPU=3,DISPLAY=1 "
                               "(plan and sweep jobs)",
    )
    p_submit.add_argument(
        "--priority", type=int, default=0, metavar="N",
        help="queue priority; higher runs first (default %(default)s)",
    )
    p_submit.add_argument(
        "--timeout", type=float, metavar="S",
        help="per-job execution timeout in seconds",
    )
    p_submit.add_argument(
        "--tenant", default="default", metavar="NAME",
        help="tenant tag for per-tenant accounting (default %(default)s)",
    )
    p_submit.add_argument(
        "--quick", action="store_true",
        help="profile/explain jobs: cap per-core ATPG at a sampled fault subset",
    )
    p_submit.add_argument("--seed", type=int, default=0,
                          help="profile/explain jobs: ATPG seed (default 0)")
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its result",
    )
    p_submit.add_argument(
        "--json", action="store_true",
        help="with --wait: print the raw JSON result (sweep jobs render "
             "the 'repro sweep' table by default)",
    )
    p_submit.add_argument(
        "--job-trace", metavar="FILE",
        help="with --wait: write the job's daemon-side span tree "
             "(validate -> queue-wait -> coalesce -> run -> serialize) as a "
             "Chrome trace_event file",
    )
    p_submit.add_argument(
        "--connect", default=DEFAULT_SERVE_ADDRESS, metavar="ADDR",
        help="daemon address (default %(default)s)",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list a running daemon's jobs and stats", parents=[obs]
    )
    p_jobs.add_argument(
        "--connect", default=DEFAULT_SERVE_ADDRESS, metavar="ADDR",
        help="daemon address (default %(default)s)",
    )
    p_jobs.add_argument(
        "--json", action="store_true",
        help="emit jobs and stats as a JSON document",
    )
    p_jobs.set_defaults(func=cmd_jobs)

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a running daemon",
        parents=[obs],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Polls the daemon's 'stats' and 'metrics' ops and renders queue\n"
            "depth, job states, tenant rollups, p50/p99 latency summaries\n"
            "(with deltas between frames), and the counters that moved.\n"
            "Ctrl-C exits cleanly.\n"
        ),
    )
    p_top.add_argument(
        "address", nargs="?", default=DEFAULT_SERVE_ADDRESS,
        help="daemon address (default %(default)s)",
    )
    p_top.add_argument(
        "-n", "--interval", type=float, default=2.0, metavar="S",
        help="seconds between frames (default %(default)s)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (scriptable)",
    )
    p_top.add_argument(
        "--expo", action="store_true",
        help="print the raw Prometheus exposition instead of the dashboard "
             "(the CI scrape path)",
    )
    p_top.set_defaults(func=cmd_top)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.obs import (
        METRICS,
        TRACER,
        configure_logging,
        disable_tracing,
        enable_tracing,
    )

    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    show_metrics = getattr(args, "metrics", False)
    configure_logging(getattr(args, "verbose", 0))
    if trace_path:
        enable_tracing()
    try:
        status = args.func(args)
    except UsageError as error:
        # bad arguments exit 2, like argparse's own errors; real failures exit 1
        print(f"repro: {error}", file=sys.stderr)
        raise SystemExit(2)
    except ReproError as error:
        raise SystemExit(f"repro: {error}")
    finally:
        if trace_path:
            TRACER.export_chrome(trace_path)
            disable_tracing()
            print(f"wrote trace to {trace_path}", file=sys.stderr)
    if show_metrics:
        from repro.flow.report import render_metrics_table

        print()
        print(render_metrics_table(METRICS.snapshot()))
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
