"""Realize a transparency path as actual test-mode hardware.

:func:`apply_transparency_path` takes a justification path and returns a
modified circuit with

* a 1-bit ``trans_mode`` input,
* select-forcing muxes (``tsel_``) steering every existing mux the path
  uses to the required leg,
* load-forcing / freeze logic (``freeze_``) on the path's registers --
  registers on the path load every cycle in test mode except while
  their ``hold_<reg>`` input freezes them to balance unequal sub-paths,
* synthesized transparency muxes (``tmux_``) for the version's added
  arcs that the path uses.

:func:`freeze_schedule` derives, from the path tree, the exact cycles
each early-arriving register must hold -- the waveform the paper's test
controller FSM would drive.  Together with the simulator this lets the
test suite *prove* transparency at gate level: apply a value at the
terminal input, clock ``latency`` cycles with the schedule, and the
value appears at the target output slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import TransparencyError
from repro.rtl.circuit import RTLCircuit
from repro.rtl.components import Constant, Input, Mux, Operator, Output, Register
from repro.rtl.types import ComponentKind, OpKind, Slice, concat, slice_expr
from repro.rtl.validate import validate_circuit
from repro.transparency.search import PathNode, TransparencyPath

TRANS_MODE = "trans_mode"


@dataclass
class TransparencyApplication:
    """A circuit with one transparency path wired for test mode."""

    circuit: RTLCircuit
    path: TransparencyPath
    mode_input: str
    #: register -> its hold input name (only registers that ever freeze)
    hold_inputs: Dict[str, str] = field(default_factory=dict)
    #: register -> set of cycles (step indices) during which it must hold
    schedule: Dict[str, Set[int]] = field(default_factory=dict)


def freeze_schedule(path: TransparencyPath) -> Dict[str, Set[int]]:
    """Hold cycles per register for one justification path.

    Cycle ``t`` is the t-th :meth:`SequentialSimulator.step` call; a
    register listed for cycle ``t`` must not capture at the end of that
    step.  Terminals are assumed valid (and held) from cycle 0 on.
    """
    holds: Dict[str, Set[int]] = {}

    def load_time(node: PathNode) -> int:
        if not node.branches:
            return 0  # terminal input: valid from the start
        arrivals = []
        for arc, sub in node.branches:
            arrivals.append((arc, sub, load_time(sub) + arc.latency))
        latest = max(t for _, _, t in arrivals)
        for arc, sub, t in arrivals:
            if t < latest and sub.branches:  # an early *register* branch
                register = sub.piece.comp
                # valid from t - arc.latency == load_time(sub); must survive
                # until the parent captures at the end of cycle latest-1
                start = t - arc.latency
                for cycle in range(start, latest - arc.latency):
                    holds.setdefault(register, set()).add(cycle)
        return latest

    load_time(path.tree)
    return holds


def apply_transparency_path(
    circuit: RTLCircuit,
    path: TransparencyPath,
    mode_name: str = TRANS_MODE,
) -> TransparencyApplication:
    """Wire ``path`` into a copy of ``circuit`` as test-mode hardware.

    Both directions apply: a justify path additionally gets freeze
    holds (terminal inputs settle at different times), while a
    propagate path needs none -- its single root word enters once and
    every register on the way loads every cycle.
    """
    if path.direction not in ("justify", "propagate"):
        raise TransparencyError(f"cannot apply a path with direction {path.direction!r}")
    modified = circuit.copy(f"{circuit.name}_trans")
    modified.add(Input(mode_name, 1))
    mode = Slice(mode_name, 0, 1)

    # ------------------------------------------------------------------
    # 1. collect per-mux forced indices and the registers on the path
    # ------------------------------------------------------------------
    forced: Dict[str, int] = {}
    path_registers: Set[str] = set()
    added_arcs: List = []

    def visit(node: PathNode) -> None:
        for arc, sub in node.branches:
            for mux_name, index in arc.mux_path:
                if forced.get(mux_name, index) != index:
                    raise TransparencyError(
                        f"path forces mux {mux_name!r} to two different legs"
                    )
                forced[mux_name] = index
            dest_kind = modified.get(arc.dest.comp).kind
            if dest_kind is ComponentKind.REGISTER:
                path_registers.add(arc.dest.comp)
            if getattr(arc, "added", False):
                added_arcs.append(arc)
            visit(sub)

    visit(path.tree)

    # ------------------------------------------------------------------
    # 2. select forcing on existing muxes
    # ------------------------------------------------------------------
    for mux_name, index in sorted(forced.items()):
        mux: Mux = modified.get(mux_name)  # type: ignore[assignment]
        select_width = mux.select_width
        const = Constant(f"tsel_k_{mux_name}", select_width, value=index)
        modified.add(const)
        override = Mux(
            f"tsel_{mux_name}",
            select_width,
            inputs=[slice_expr(mux.select, 0, select_width), Slice(const.name, 0, select_width)],
            select=mode,
        )
        modified.add(override)
        mux.select = Slice(override.name, 0, select_width)

    # ------------------------------------------------------------------
    # 3. synthesized transparency muxes for added arcs
    # ------------------------------------------------------------------
    for arc in added_arcs:
        dest = modified.get(arc.dest.comp)
        if isinstance(dest, (Register, Output)):
            pieces = []
            cursor = 0
            if arc.dest.lo > 0:
                pieces.append(slice_expr(dest.driver, 0, arc.dest.lo))
            pieces.append(arc.source)
            cursor = arc.dest.lo + arc.dest.width
            if cursor < dest.width:
                pieces.append(slice_expr(dest.driver, cursor, dest.width - cursor))
            bypass = concat(*pieces)
            override = Mux(
                f"tmux_{arc.dest.comp}_{arc.dest.lo}",
                dest.width,
                inputs=[dest.driver, bypass],
                select=mode,
            )
            modified.add(override)
            dest.driver = Slice(override.name, 0, dest.width)
        else:
            raise TransparencyError(f"added arc lands on unsupported {arc.dest.comp!r}")

    # ------------------------------------------------------------------
    # 4. load forcing + freeze holds on path registers
    # ------------------------------------------------------------------
    schedule = freeze_schedule(path) if path.direction == "justify" else {}
    hold_inputs: Dict[str, str] = {}
    for register_name in sorted(path_registers):
        register: Register = modified.get(register_name)  # type: ignore[assignment]
        if register_name in schedule:
            hold_name = f"hold_{register_name}"
            modified.add(Input(hold_name, 1))
            hold_inputs[register_name] = hold_name
            load_when = Operator(
                f"freeze_load_{register_name}", 1, op=OpKind.NOT, operands=[Slice(hold_name, 0, 1)]
            )
            modified.add(load_when)
            test_enable = Slice(load_when.name, 0, 1)
        else:
            const_one = Constant(f"freeze_one_{register_name}", 1, value=1)
            modified.add(const_one)
            test_enable = Slice(const_one.name, 0, 1)
        if register.enable is not None:
            override = Mux(
                f"freeze_{register_name}",
                1,
                inputs=[register.enable, test_enable],
                select=mode,
            )
            modified.add(override)
            register.enable = Slice(override.name, 0, 1)
        elif register_name in schedule:
            # unconditionally-loading register gains a test-mode enable
            override = Mux(
                f"freeze_{register_name}",
                1,
                inputs=[Slice(f"freeze_one_{register_name}_b", 0, 1), test_enable],
                select=mode,
            )
            base_one = Constant(f"freeze_one_{register_name}_b", 1, value=1)
            modified.add(base_one)
            modified.add(override)
            register.enable = Slice(override.name, 0, 1)
        # registers without enable and without holds load every cycle anyway

    validate_circuit(modified)
    return TransparencyApplication(
        circuit=modified,
        path=path,
        mode_input=mode_name,
        hold_inputs=hold_inputs,
        schedule=schedule,
    )
