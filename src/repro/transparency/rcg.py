"""The register connectivity graph (RCG) of a core.

Nodes are the core's input ports, output ports, and registers; a
(slice-level) edge exists wherever a direct or multiplexer path can copy
bits between nodes in one cycle (zero cycles into an output port).  The
graph marks the paper's split nodes:

* a register is **C-split** when different bit-slices of it must receive
  data from different sources (its driving arcs partition it), and
* a node is **O-split** when disjoint bit-slices of it fan out to
  different destinations.

Edges selected by an HSCAN plan are flagged -- the transparency search
prefers them because their steering logic is already paid for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.dft.hscan import HscanResult
from repro.rtl.arcs import Arc, extract_arcs
from repro.rtl.circuit import RTLCircuit
from repro.rtl.types import ComponentKind, Slice


@dataclass(frozen=True)
class TransArc:
    """One slice-level RCG edge (a transfer opportunity).

    ``latency`` is 1 for edges into registers and 0 for combinational
    edges into output ports.  ``hscan`` marks edges whose steering is
    already provided by the core's HSCAN logic.
    """

    source: Slice
    dest: Slice
    mux_path: Tuple[Tuple[str, int], ...]
    latency: int
    hscan: bool
    #: True for synthesized transparency-mux arcs (they open test-only
    #: bypasses and must not re-partition the functional port slicing)
    added: bool = False

    @property
    def width(self) -> int:
        return self.source.width

    def key(self) -> Tuple:
        """Identity used for reservation/sharing bookkeeping."""
        return (self.source, self.dest, self.mux_path)

    def __str__(self) -> str:
        flag = "#" if self.hscan else ""
        return f"{self.source} ->{flag} {self.dest}"


@dataclass
class RCGNode:
    """A port or register of the core, with its split classification."""

    name: str
    kind: str  # "input" | "output" | "register"
    width: int
    c_split: bool = False
    o_split: bool = False


class RCG:
    """Slice-level register connectivity graph."""

    def __init__(self, circuit: RTLCircuit, arcs: List[TransArc]) -> None:
        self.circuit = circuit
        self.arcs = arcs
        self.nodes: Dict[str, RCGNode] = {}
        self._arcs_into: Dict[str, List[TransArc]] = {}
        self._arcs_from: Dict[str, List[TransArc]] = {}
        for arc in arcs:
            self._arcs_into.setdefault(arc.dest.comp, []).append(arc)
            self._arcs_from.setdefault(arc.source.comp, []).append(arc)
        self._build_nodes()

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(
        cls,
        circuit: RTLCircuit,
        hscan_plan: Optional[HscanResult] = None,
        include_scan_pins: bool = False,
    ) -> "RCG":
        """Extract the RCG; flag HSCAN edges if a plan is supplied.

        Scan-in pins introduced by test-mux links are excluded by default
        so transparency paths terminate at *functional* ports, matching
        the CCG the paper draws (Figure 9).
        """
        structural = extract_arcs(circuit)
        hscan_keys: Set[Tuple] = set()
        if hscan_plan is not None:
            for link in hscan_plan.links:
                if link.kind == "testmux" and not include_scan_pins:
                    continue
                hscan_keys.add(
                    (link.source, Slice(link.dest.comp, link.dest.lo, link.dest.width), link.mux_path)
                )
            for obs in hscan_plan.observations:
                if obs.output is None:
                    continue
                source = obs.tail.as_slice()
                dest = Slice(obs.output, obs.output_lo, obs.tail.width)
                hscan_keys.add((source, dest, obs.mux_path))

        arcs: List[TransArc] = []
        seen: Set[Tuple] = set()
        for arc in structural:
            trans = _to_trans_arc(circuit, arc, hscan_keys)
            if trans.key() not in seen:
                seen.add(trans.key())
                arcs.append(trans)
        # HSCAN links whose slices are narrower than any structural arc
        # (split registers) still deserve edges of their own
        for key in hscan_keys:
            if key not in seen:
                source, dest, mux_path = key
                dest_comp = circuit.get(dest.comp)
                latency = 0 if dest_comp.kind is ComponentKind.OUTPUT else 1
                arcs.append(TransArc(source, dest, mux_path, latency, True))
                seen.add(key)
        return cls(circuit, arcs)

    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        for component in self.circuit.components():
            if component.kind is ComponentKind.INPUT:
                self.nodes[component.name] = RCGNode(component.name, "input", component.width)
            elif component.kind is ComponentKind.OUTPUT:
                self.nodes[component.name] = RCGNode(component.name, "output", component.width)
            elif component.kind is ComponentKind.REGISTER:
                self.nodes[component.name] = RCGNode(component.name, "register", component.width)
        for node in self.nodes.values():
            if node.kind != "output":
                node.o_split = self._is_o_split(node)
            if node.kind == "register":
                node.c_split = self._is_c_split(node)

    def _is_c_split(self, node: RCGNode) -> bool:
        """Different slices driven exclusively by different sources?"""
        slices = {(a.dest.lo, a.dest.width) for a in self._arcs_into.get(node.name, [])}
        full = {(0, node.width)}
        return bool(slices) and slices != full and len(slices) > 1

    def _is_o_split(self, node: RCGNode) -> bool:
        """Disjoint slices of the node fanning out to different places?"""
        reads = [
            (a.source.lo, a.source.width, a.dest.comp)
            for a in self._arcs_from.get(node.name, [])
        ]
        distinct_slices = {(lo, w) for lo, w, _ in reads}
        if len(distinct_slices) <= 1:
            return False
        # o-split if at least two *disjoint* read slices exist
        ordered = sorted(distinct_slices)
        for i, (lo_a, w_a) in enumerate(ordered):
            for lo_b, w_b in ordered[i + 1 :]:
                if lo_a + w_a <= lo_b or lo_b + w_b <= lo_a:
                    return True
        return False

    # ------------------------------------------------------------------
    def arcs_into(self, comp: str) -> List[TransArc]:
        return self._arcs_into.get(comp, [])

    def arcs_from(self, comp: str) -> List[TransArc]:
        return self._arcs_from.get(comp, [])

    def input_names(self) -> List[str]:
        return [n.name for n in self.nodes.values() if n.kind == "input"]

    def output_names(self) -> List[str]:
        return [n.name for n in self.nodes.values() if n.kind == "output"]

    def output_slices(self, output: str) -> List[Slice]:
        """Partition an output port at its incoming-arc boundaries.

        The CPU's ``Address`` splits into ``[7:0]`` and ``[11:8]``
        because its halves are fed from different registers.
        """
        node = self.nodes[output]
        cuts = {0, node.width}
        for arc in self._arcs_into.get(output, []):
            if arc.added:
                continue
            cuts.add(arc.dest.lo)
            cuts.add(arc.dest.lo + arc.dest.width)
        ordered = sorted(c for c in cuts if 0 <= c <= node.width)
        return [Slice(output, lo, hi - lo) for lo, hi in zip(ordered, ordered[1:])]

    def with_extra_arcs(self, extra: List[TransArc]) -> "RCG":
        """A new RCG including added transparency-mux edges."""
        marked = [
            TransArc(a.source, a.dest, a.mux_path, a.latency, a.hscan, added=True)
            for a in extra
        ]
        return RCG(self.circuit, self.arcs + marked)


def _to_trans_arc(circuit: RTLCircuit, arc: Arc, hscan_keys: Set[Tuple]) -> TransArc:
    dest = Slice(arc.dest, arc.dest_lo, arc.width)
    key = (arc.source, dest, arc.mux_path)
    return TransArc(
        source=arc.source,
        dest=dest,
        mux_path=arc.mux_path,
        latency=0 if arc.dest_is_output else 1,
        hscan=key in hscan_keys,
    )
