"""Synthesis of core transparency *versions* (latency/area trade-off).

The paper's recipe (Section 4):

* **Version 1** -- transparency through HSCAN edges wherever possible,
  falling back to other existing paths, then to added transparency
  muxes.  Minimal extra area (freeze logic only, in the common case).
* **Version 2** -- all existing RCG edges are fair game from the start,
  buying latency with select-forcing/load logic on non-HSCAN paths
  (the CPU's mux-M shortcut: Data -> Address(7:0) in one cycle).
* **Version 3** -- transparency multiplexers are added for every
  input/output pair still slower than one cycle (Figure 5's shaded mux).

Each version records, per port slice, the transparency path and the
derived chip-level edges (input port -> output slice, latency, resource
set) that the CCG consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dft.hscan import HscanResult, insert_hscan
from repro.errors import TransparencyError
from repro.obs import METRICS, profile_section
from repro.rtl.circuit import RTLCircuit
from repro.rtl.types import ComponentKind, Slice
from repro.transparency.rcg import RCG, TransArc
from repro.transparency.search import TransparencyPath, TransparencySearch

#: cells for an added transparency multiplexer of width w: per-bit mux + select
TMUX_BASE_COST = 2
TMUX_PER_BIT = 2


def _tmux_cost(width: int) -> int:
    return TMUX_PER_BIT * width + TMUX_BASE_COST


def _non_hscan_arc_cost(arc: TransArc) -> int:
    """Cells to steer a non-HSCAN existing edge in transparency mode."""
    if arc.mux_path:
        return 2 * len(arc.mux_path) + arc.width
    return max(1, arc.width // 2)


@dataclass(frozen=True)
class TransparencyEdge:
    """A chip-level transparency edge: input port -> output slice.

    ``resources`` identifies the RCG arcs (plus the input port itself)
    the transfer occupies; two edges sharing a resource cannot carry
    data in the same cycles.
    """

    core: str
    input_port: str
    output: str
    output_lo: int
    output_width: int
    latency: int
    resources: FrozenSet

    @property
    def output_slice(self) -> Slice:
        return Slice(self.output, self.output_lo, self.output_width)

    def __str__(self) -> str:
        return f"{self.core}:{self.input_port}->{self.output_slice} ({self.latency}cy)"


@dataclass
class CoreVersion:
    """One synthesized transparency version of a core."""

    core: str
    name: str
    index: int
    extra_cells: int
    edges: List[TransparencyEdge] = field(default_factory=list)
    justify_paths: Dict[Tuple[str, int, int], TransparencyPath] = field(default_factory=dict)
    propagate_paths: Dict[str, TransparencyPath] = field(default_factory=dict)
    added_muxes: List[TransArc] = field(default_factory=list)
    rcg: Optional[RCG] = None

    def justify_latency(self, output: str, lo: int = 0, width: Optional[int] = None) -> int:
        """Latency to justify one output slice (exact slice key match)."""
        if width is None:
            # whole-port query: combine all slices of the output
            slices = [key for key in self.justify_paths if key[0] == output]
            if not slices:
                raise TransparencyError(f"no justification for {output!r} in {self.name}")
            return self.combined_justify_latency(slices)
        path = self.justify_paths.get((output, lo, width))
        if path is None:
            raise TransparencyError(f"no justification for {output}[{lo}+{width}] in {self.name}")
        return path.latency

    def combined_justify_latency(self, slice_keys: List[Tuple[str, int, int]]) -> int:
        """Latency to have *all* the given output slices valid at once.

        Paths sharing any resource (RCG arc or source input port) must
        transfer sequentially -- their latencies add; disjoint groups
        run in parallel -- the maximum governs.  This reproduces the
        CPU's 6+2=8 (V1), 1+2=3 (V2), 1+1=2 (V3) totals.
        """
        paths = []
        for key in slice_keys:
            path = self.justify_paths.get(tuple(key))
            if path is None:
                raise TransparencyError(f"no justification for {key} in {self.name}")
            paths.append(path)
        return _combined_latency(paths)

    def signature(self) -> Tuple:
        """Per-port latencies; identical signatures mean redundant versions."""
        justify = tuple(sorted((k, p.latency) for k, p in self.justify_paths.items()))
        propagate = tuple(sorted((k, p.latency) for k, p in self.propagate_paths.items()))
        return (justify, propagate)


def _path_resources(path: TransparencyPath) -> Set:
    resources: Set = set(path.arcs_used)
    for port in path.terminal_ports:
        resources.add(("port", port))
    return resources


def _combined_latency(paths: List[TransparencyPath]) -> int:
    groups: List[Tuple[Set, int]] = []  # (resources, summed latency)
    for path in paths:
        resources = _path_resources(path)
        merged_resources, merged_latency = set(resources), path.latency
        remaining = []
        for group_resources, group_latency in groups:
            if group_resources & merged_resources:
                merged_resources |= group_resources
                merged_latency += group_latency
            else:
                remaining.append((group_resources, group_latency))
        remaining.append((merged_resources, merged_latency))
        groups = remaining
    return max((latency for _, latency in groups), default=0)


# ----------------------------------------------------------------------
# version generation
# ----------------------------------------------------------------------
def generate_versions(
    circuit: RTLCircuit,
    hscan_plan: Optional[HscanResult] = None,
    max_versions: int = 3,
) -> List[CoreVersion]:
    """Synthesize up to ``max_versions`` transparency versions.

    Version 1 prefers HSCAN edges; Version 2 allows every existing RCG
    edge (kept only if it actually improves some latency); subsequent
    versions add transparency multiplexers *one input/output pair at a
    time*, worst pair first, exactly as Section 4 describes.
    """
    with profile_section("transparency.versions", core=circuit.name) as section:
        if hscan_plan is None:
            hscan_plan = insert_hscan(circuit)
        rcg = RCG.from_circuit(circuit, hscan_plan)

        versions: List[CoreVersion] = []
        v1 = _solve_version(circuit, rcg, name="Version 1", index=0, hscan_first=True)
        versions.append(v1)

        if max_versions >= 2:
            v2 = _solve_version(circuit, rcg, name="Version 2", index=1, hscan_first=False)
            if v2.signature() != v1.signature():
                versions.append(v2)

        while len(versions) < max_versions:
            improved = _improve_worst_pair(circuit, versions[-1], index=len(versions))
            if improved is None or improved.signature() == versions[-1].signature():
                break
            versions.append(improved)
        METRICS.counter("transparency.versions.synthesized").inc(len(versions))
        section.set(versions=len(versions))

    for i, version in enumerate(versions):
        version.index = i
        version.name = f"Version {i + 1}"
    return versions


def _improve_worst_pair(
    circuit: RTLCircuit, base: CoreVersion, index: int
) -> Optional[CoreVersion]:
    """Add transparency mux(es) for the slowest pair still above one cycle.

    A "pair" is an input/output *port* pair (the granularity of Figures
    6 and 8); all slices of the slowest output port slower than one
    cycle get a mux in the same version.
    """
    assert base.rcg is not None
    # worst justify latency per output port
    port_worst: Dict[str, int] = {}
    for (port, _, _), path in base.justify_paths.items():
        port_worst[port] = max(port_worst.get(port, 0), path.latency)
    worst: Optional[Tuple[int, str, str]] = None  # (latency, kind, port)
    for port in sorted(port_worst):
        if port_worst[port] > 1 and (worst is None or port_worst[port] > worst[0]):
            worst = (port_worst[port], "justify", port)
    for input_name, path in sorted(base.propagate_paths.items()):
        if path.latency > 1 and (worst is None or path.latency > worst[0]):
            worst = (path.latency, "propagate", input_name)
    if worst is None:
        return None

    _, kind, port = worst
    extra: List[TransArc] = []
    if kind == "justify":
        working = base.rcg
        for key, path in sorted(base.justify_paths.items()):
            if key[0] != port or path.latency <= 1:
                continue
            arcs = _fallback_justify_mux(working, Slice(*key))
            extra.extend(arcs)
            if arcs:
                working = working.with_extra_arcs(arcs)
    else:
        source = Slice(port, 0, base.rcg.nodes[port].width)
        extra = _fallback_propagate_mux(base.rcg, source)
    if not extra:
        return None
    working = base.rcg.with_extra_arcs(extra)
    version = _solve_version(circuit, working, name=f"Version {index + 1}", index=index, hscan_first=False)
    version.added_muxes = list(base.added_muxes) + extra
    version.extra_cells = _version_cost(circuit, working, version, version.added_muxes)
    version.edges = _derive_edges(circuit.name, version)
    return version


def _iter_targets(rcg: RCG) -> Tuple[List[Slice], List[Slice]]:
    outputs = []
    for output in sorted(rcg.output_names()):
        outputs.extend(rcg.output_slices(output))
    inputs = [
        Slice(name, 0, rcg.nodes[name].width) for name in sorted(rcg.input_names())
    ]
    return outputs, inputs


def _solve_version(
    circuit: RTLCircuit,
    rcg: RCG,
    name: str,
    index: int,
    hscan_first: bool,
) -> CoreVersion:
    version = CoreVersion(core=circuit.name, name=name, index=index, extra_cells=0, rcg=rcg)
    output_slices, input_slices = _iter_targets(rcg)
    used_arcs: Set[Tuple] = set()
    added: List[TransArc] = []
    working_rcg = rcg

    def searchers(current: RCG) -> List[TransparencySearch]:
        stages = []
        if hscan_first:
            stages.append(TransparencySearch(current, hscan_only=True, avoid_arcs=used_arcs))
        stages.append(TransparencySearch(current, hscan_only=False, avoid_arcs=used_arcs))
        return stages

    for target in output_slices:
        path = None
        for search in searchers(working_rcg):
            path = search.justify(target)
            if path is not None:
                break
        if path is None:
            mux_arcs = _fallback_justify_mux(working_rcg, target)
            if not mux_arcs:
                raise TransparencyError(
                    f"cannot make output slice {target} of {circuit.name!r} transparent"
                )
            added.extend(mux_arcs)
            working_rcg = working_rcg.with_extra_arcs(mux_arcs)
            path = TransparencySearch(working_rcg).justify(target)
            if path is None:
                raise TransparencyError(f"added mux failed to justify {target}")
        version.justify_paths[(target.comp, target.lo, target.width)] = path
        used_arcs |= set(path.arcs_used)

    for source in input_slices:
        path = None
        for search in searchers(working_rcg):
            path = search.propagate(source)
            if path is not None:
                break
        if path is None:
            mux_arcs = _fallback_propagate_mux(working_rcg, source)
            if not mux_arcs:
                raise TransparencyError(
                    f"cannot propagate input {source} of {circuit.name!r}"
                )
            added.extend(mux_arcs)
            working_rcg = working_rcg.with_extra_arcs(mux_arcs)
            path = TransparencySearch(working_rcg).propagate(source)
            if path is None:
                raise TransparencyError(f"added mux failed to propagate {source}")
        version.propagate_paths[source.comp] = path
        used_arcs |= set(path.arcs_used)

    version.added_muxes = added
    version.rcg = working_rcg
    version.extra_cells = _version_cost(circuit, working_rcg, version, added)
    version.edges = _derive_edges(circuit.name, version)
    return version


def _fallback_justify_mux(rcg: RCG, target: Slice) -> List[TransArc]:
    """Transparency mux(es) making ``target`` justifiable in one cycle.

    Following Figure 5: the mux feeds the register driving the output
    slice straight from a core input.  If no single input is wide
    enough, the target is split across several inputs ("or a
    combination of inputs", Section 3).
    """
    # the register currently feeding the output slice, if any
    feeder: Optional[Slice] = None
    for arc in rcg.arcs_into(target.comp):
        if arc.dest.lo <= target.lo and target.hi <= arc.dest.hi:
            if rcg.circuit.get(arc.source.comp).kind is ComponentKind.REGISTER:
                feeder = arc.source.sub(target.lo - arc.dest.lo, target.width)
                break
    landing = feeder if feeder is not None else target
    latency = 1 if feeder is not None else 0

    arcs: List[TransArc] = []
    remaining = landing.width
    offset = 0
    for input_name in sorted(rcg.input_names(), key=lambda n: -rcg.nodes[n].width):
        if remaining == 0:
            break
        take = min(remaining, rcg.nodes[input_name].width)
        arcs.append(
            TransArc(Slice(input_name, 0, take), landing.sub(offset, take), (), latency, False)
        )
        offset += take
        remaining -= take
    return arcs if remaining == 0 else []


def _fallback_propagate_mux(rcg: RCG, source: Slice) -> List[TransArc]:
    """Transparency mux(es) carrying ``source`` to output(s) in one cycle.

    Picks a register loadable from the input in one cycle and muxes it
    onto output port(s); wide sources spread across several outputs
    ("an output (or outputs if bit-widths mismatch)", Section 4).
    """
    landing: Optional[Slice] = None
    for arc in rcg.arcs_from(source.comp):
        if rcg.circuit.get(arc.dest.comp).kind is ComponentKind.REGISTER:
            if arc.source.lo <= source.lo and source.hi <= arc.source.hi:
                landing = arc.dest.sub(source.lo - arc.source.lo, source.width)
                break
    carried = landing if landing is not None else source

    arcs: List[TransArc] = []
    remaining = carried.width
    offset = 0
    for output_name in sorted(rcg.output_names(), key=lambda n: -rcg.nodes[n].width):
        if remaining == 0:
            break
        take = min(remaining, rcg.nodes[output_name].width)
        arcs.append(
            TransArc(carried.sub(offset, take), Slice(output_name, 0, take), (), 0, False)
        )
        offset += take
        remaining -= take
    return arcs if remaining == 0 else []


def _version_cost(
    circuit: RTLCircuit,
    rcg: RCG,
    version: CoreVersion,
    added_muxes: List[TransArc],
) -> int:
    """Extra transparency cells: freezes + non-HSCAN steering + muxes."""
    added_keys = {arc.key() for arc in added_muxes}
    cells = 0
    frozen: Set[str] = set()
    non_hscan: Set[Tuple] = set()
    all_paths = list(version.justify_paths.values()) + list(version.propagate_paths.values())
    arc_by_key = {arc.key(): arc for arc in rcg.arcs}
    for path in all_paths:
        for register_name, _ in path.freezes:
            frozen.add(register_name)
        for key in path.arcs_used:
            arc = arc_by_key.get(key)
            if arc is None or key in added_keys:
                continue
            if not arc.hscan:
                non_hscan.add(key)
    from repro.transparency.search import FREEZE_COST_NO_ENABLE, FREEZE_COST_WITH_ENABLE

    for register_name in frozen:
        register = circuit.get(register_name)
        has_enable = getattr(register, "enable", None) is not None
        cells += FREEZE_COST_WITH_ENABLE if has_enable else FREEZE_COST_NO_ENABLE
    for key in non_hscan:
        cells += _non_hscan_arc_cost(arc_by_key[key])
    for arc in added_muxes:
        cells += _tmux_cost(arc.width)
    return cells


def _derive_edges(core_name: str, version: CoreVersion) -> List[TransparencyEdge]:
    """Chip-level edges from the version's paths (min latency per pair)."""
    best: Dict[Tuple[str, str, int, int], Tuple[int, FrozenSet]] = {}

    def offer(input_port: str, out: Slice, latency: int, resources: FrozenSet) -> None:
        key = (input_port, out.comp, out.lo, out.width)
        current = best.get(key)
        if current is None or latency < current[0]:
            best[key] = (latency, resources)

    for (output, lo, width), path in version.justify_paths.items():
        resources = frozenset(_path_resources(path))
        for port in path.terminal_ports:
            offer(port, Slice(output, lo, width), path.latency, resources)

    for input_port, path in version.propagate_paths.items():
        resources = frozenset(_path_resources(path))
        for terminal, latency in _terminal_latencies(path):
            offer(input_port, terminal, latency, resources)

    edges = [
        TransparencyEdge(
            core=core_name,
            input_port=input_port,
            output=output,
            output_lo=lo,
            output_width=width,
            latency=latency,
            resources=resources,
        )
        for (input_port, output, lo, width), (latency, resources) in sorted(best.items())
    ]
    return edges


def _terminal_latencies(path: TransparencyPath) -> List[Tuple[Slice, int]]:
    """(terminal slice, cycles from root) for every leaf of the tree."""
    results: List[Tuple[Slice, int]] = []

    def walk(node, accumulated: int) -> None:
        if not node.branches:
            results.append((node.piece, accumulated))
            return
        for arc, sub in node.branches:
            walk(sub, accumulated + arc.latency)

    walk(path.tree, 0)
    return results
