"""Core transparency: the paper's Section 4.

A core is *transparent* when, in a test mode, every output can be
justified from some input(s) and every input propagated to some
output(s) in a fixed number of cycles (the transparency latency).  This
package extracts the register connectivity graph (RCG) with its
C-split/O-split nodes, searches it for transparency paths (HSCAN edges
first, then other existing paths, then added transparency muxes),
balances parallel sub-paths with freeze logic, and synthesizes the
latency/area *versions* of a core that the chip-level optimizer trades
off (Figures 6 and 8 of the paper).
"""

from repro.transparency.rcg import RCG, RCGNode, TransArc
from repro.transparency.search import TransparencySearch, PathNode, TransparencyPath
from repro.transparency.versions import (
    CoreVersion,
    TransparencyEdge,
    generate_versions,
)
from repro.transparency.apply import (
    TransparencyApplication,
    apply_transparency_path,
    freeze_schedule,
)

__all__ = [
    "RCG",
    "RCGNode",
    "TransArc",
    "TransparencySearch",
    "PathNode",
    "TransparencyPath",
    "CoreVersion",
    "TransparencyEdge",
    "generate_versions",
    "TransparencyApplication",
    "apply_transparency_path",
    "freeze_schedule",
]
