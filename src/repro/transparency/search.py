"""Transparency-path search on the RCG (the paper's Section 4 BFS).

Two directions:

* **justify**: make a core *output* slice take an arbitrary value by
  applying data at core inputs some cycles earlier.  The search walks
  arcs backwards; at a C-split register every driven sub-slice spawns a
  mandatory branch (AND), and alternative arcs covering the same
  sub-slice are alternatives (OR).  Branches reconverge when they reach
  the same O-split source -- exactly the CPU example where the search
  splits at ACCUMULATOR and reconverges at IR.

* **propagate**: make a core *input* value visible at core outputs.
  Arcs are walked forwards; at an O-split node all disjoint fanout
  slices must be carried (AND), alternatives covering the same slice
  are OR.

Parallel sub-paths of different depth are balanced by *freezing* the
early data in place (extra enable-gating logic on the register holding
it), matching the paper's Status-register freeze.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.obs import METRICS, profile_section
from repro.rtl.types import ComponentKind, Slice
from repro.transparency.rcg import RCG, TransArc

#: cells to freeze a register that already has a load enable
FREEZE_COST_WITH_ENABLE = 1
#: cells to freeze a register that loads unconditionally
FREEZE_COST_NO_ENABLE = 3

_EXPANSIONS = METRICS.counter("transparency.search.expansions")
_JUSTIFY_CALLS = METRICS.counter("transparency.search.justify")
_PROPAGATE_CALLS = METRICS.counter("transparency.search.propagate")


@dataclass
class PathNode:
    """One node of a transparency-path tree.

    ``branches`` pair the arc taken with the subtree beyond it; all
    branches are required (they cover disjoint sub-slices of ``piece``).
    ``latency`` is the cycles between this node's data being valid and
    the terminal end of the subtree.
    """

    piece: Slice
    latency: int
    branches: List[Tuple[TransArc, "PathNode"]] = field(default_factory=list)

    def walk_arcs(self) -> List[TransArc]:
        arcs = []
        for arc, sub in self.branches:
            arcs.append(arc)
            arcs.extend(sub.walk_arcs())
        return arcs

    def walk_terminals(self) -> List[Slice]:
        if not self.branches:
            return [self.piece]
        terminals: List[Slice] = []
        for _, sub in self.branches:
            terminals.extend(sub.walk_terminals())
        return terminals


@dataclass
class TransparencyPath:
    """A complete justification/propagation solution for one port slice."""

    direction: str  # "justify" | "propagate"
    root: Slice
    tree: PathNode
    latency: int
    arcs_used: FrozenSet[Tuple]
    terminals: List[Slice]
    freezes: List[Tuple[str, int]]  # (register, cycles held)

    @property
    def terminal_ports(self) -> List[str]:
        seen: Dict[str, None] = {}
        for terminal in self.terminals:
            seen.setdefault(terminal.comp, None)
        return list(seen)

    def freeze_cells(self, rcg: RCG) -> int:
        """Cells for the freeze logic this path needs."""
        cells = 0
        for register_name, _ in self.freezes:
            register = rcg.circuit.get(register_name)
            has_enable = getattr(register, "enable", None) is not None
            cells += FREEZE_COST_WITH_ENABLE if has_enable else FREEZE_COST_NO_ENABLE
        return cells


class TransparencySearch:
    """Min-latency transparency-path solver over one RCG."""

    def __init__(
        self,
        rcg: RCG,
        hscan_only: bool = False,
        avoid_arcs: Optional[Set[Tuple]] = None,
    ) -> None:
        self.rcg = rcg
        self.hscan_only = hscan_only
        #: arcs already used by other paths; reusing them is allowed but
        #: deprioritized (the paper first tries disjoint paths)
        self.avoid_arcs = avoid_arcs or set()

    # ------------------------------------------------------------------
    def justify(self, target: Slice) -> Optional[TransparencyPath]:
        """Find how to set output/register slice ``target`` from inputs."""
        _JUSTIFY_CALLS.inc()
        with profile_section("transparency.search"):
            tree = self._search(target, backwards=True, stack=frozenset())
        if tree is None:
            return None
        return self._finish("justify", target, tree)

    def propagate(self, source: Slice) -> Optional[TransparencyPath]:
        """Find how input/register slice ``source`` reaches outputs."""
        _PROPAGATE_CALLS.inc()
        with profile_section("transparency.search"):
            tree = self._search(source, backwards=False, stack=frozenset())
        if tree is None:
            return None
        return self._finish("propagate", source, tree)

    # ------------------------------------------------------------------
    def _finish(self, direction: str, root: Slice, tree: PathNode) -> TransparencyPath:
        freezes: List[Tuple[str, int]] = []
        self._collect_freezes(tree, freezes)
        return TransparencyPath(
            direction=direction,
            root=root,
            tree=tree,
            latency=tree.latency,
            arcs_used=frozenset(arc.key() for arc in tree.walk_arcs()),
            terminals=tree.walk_terminals(),
            freezes=freezes,
        )

    def _collect_freezes(self, node: PathNode, out: List[Tuple[str, int]]) -> None:
        if node.branches:
            totals = [arc.latency + sub.latency for arc, sub in node.branches]
            longest = max(totals)
            for (arc, sub), total in zip(node.branches, totals):
                if total < longest:
                    holder = sub.piece.comp
                    kind = self.rcg.circuit.get(holder).kind
                    if kind is ComponentKind.REGISTER:
                        out.append((holder, longest - total))
        for _, sub in node.branches:
            self._collect_freezes(sub, out)

    # ------------------------------------------------------------------
    def _allowed(self, arc: TransArc) -> bool:
        return arc.hscan or not self.hscan_only

    def _terminal_kind(self, backwards: bool) -> ComponentKind:
        return ComponentKind.INPUT if backwards else ComponentKind.OUTPUT

    def _search(
        self, piece: Slice, backwards: bool, stack: FrozenSet[str]
    ) -> Optional[PathNode]:
        _EXPANSIONS.inc()
        kind = self.rcg.circuit.get(piece.comp).kind
        if kind is self._terminal_kind(backwards):
            return PathNode(piece, 0)
        if piece.comp in stack:
            return None
        next_stack = stack | {piece.comp}

        if backwards:
            arcs = [
                a
                for a in self.rcg.arcs_into(piece.comp)
                if self._allowed(a) and a.dest.lo < piece.hi and piece.lo < a.dest.hi
            ]
        else:
            arcs = [
                a
                for a in self.rcg.arcs_from(piece.comp)
                if self._allowed(a) and a.source.lo < piece.hi and piece.lo < a.source.hi
            ]
        if not arcs:
            return None

        segments = self._segments(piece, arcs, backwards)
        branches: List[Tuple[TransArc, PathNode]] = []
        for segment in segments:
            best: Optional[Tuple[Tuple, TransArc, PathNode]] = None
            for arc in arcs:
                own = arc.dest if backwards else arc.source
                if not (own.lo <= segment.lo and segment.hi <= own.hi):
                    continue
                far = arc.source if backwards else arc.dest
                sub_piece = far.sub(segment.lo - own.lo, segment.width)
                sub = self._search(sub_piece, backwards, next_stack)
                if sub is None:
                    continue
                total = arc.latency + sub.latency
                score = (
                    total,
                    1 if arc.key() in self.avoid_arcs else 0,
                    0 if arc.hscan else 1,
                    str(arc.source),
                )
                if best is None or score < best[0]:
                    best = (score, arc, sub)
            if best is None:
                return None
            branches.append((best[1], best[2]))

        latency = max(arc.latency + sub.latency for arc, sub in branches)
        return PathNode(piece, latency, branches)

    @staticmethod
    def _segments(piece: Slice, arcs: Sequence[TransArc], backwards: bool) -> List[Slice]:
        """Cut ``piece`` at the boundaries of the arcs touching it."""
        cuts = {piece.lo, piece.hi}
        for arc in arcs:
            own = arc.dest if backwards else arc.source
            if piece.lo < own.lo < piece.hi:
                cuts.add(own.lo)
            if piece.lo < own.hi < piece.hi:
                cuts.add(own.hi)
        ordered = sorted(cuts)
        return [
            Slice(piece.comp, lo, hi - lo) for lo, hi in zip(ordered, ordered[1:])
        ]
