"""Single-stuck-at fault model, collapsing, and fault simulation.

The fault simulator is the measurement instrument behind the paper's
Table 3: it grades precomputed core test sets (combinational, full-scan
view) and functional input sequences (sequential view) against the
collapsed stuck-at universe of a gate netlist.
"""

from repro.faults.model import Fault, full_fault_universe
from repro.faults.collapse import collapse_faults
from repro.faults.simulator import FaultSimulator, sequential_fault_grade
from repro.faults.coverage import CoverageReport

__all__ = [
    "Fault",
    "full_fault_universe",
    "collapse_faults",
    "FaultSimulator",
    "sequential_fault_grade",
    "CoverageReport",
]
