"""Structural equivalence collapsing of stuck-at faults.

Classic gate-local rules (Abramovici et al., "Digital Systems Testing and
Testable Design", ch. 4):

* AND : any input sa0 == output sa0        NAND: any input sa0 == output sa1
* OR  : any input sa1 == output sa1        NOR : any input sa1 == output sa0
* NOT : input sa0 == output sa1, input sa1 == output sa0
* BUF : input sav == output sav

Pin faults that were never enumerated (single-fanout nets) are already
implicitly collapsed onto the driving stem by the universe builder; here
we union the enumerated faults into equivalence classes and keep one
representative per class.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.model import Fault
from repro.gates.cells import GateKind
from repro.gates.netlist import GateNetlist

_Key = Tuple[str, Optional[int], int]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[_Key, _Key] = {}

    def find(self, key: _Key) -> _Key:
        parent = self._parent.setdefault(key, key)
        if parent != key:
            parent = self.find(parent)
            self._parent[key] = parent
        return parent

    def union(self, a: _Key, b: _Key) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def collapse_faults(netlist: GateNetlist, faults: List[Fault]) -> List[Fault]:
    """Return one representative per structural equivalence class.

    Only faults present in ``faults`` participate; the representative is
    the lexicographically smallest member so results are deterministic.
    """
    present = {(f.gate, f.pin, f.stuck): f for f in faults}
    uf = _UnionFind()

    def union_if_present(a: _Key, b: _Key) -> None:
        if a in present and b in present:
            uf.union(a, b)

    for gate in netlist.gates():
        name, kind = gate.name, gate.kind
        pins = range(len(gate.fanins))
        if kind is GateKind.AND:
            for pin in pins:
                union_if_present((name, None, 0), (name, pin, 0))
        elif kind is GateKind.NAND:
            for pin in pins:
                union_if_present((name, None, 1), (name, pin, 0))
        elif kind is GateKind.OR:
            for pin in pins:
                union_if_present((name, None, 1), (name, pin, 1))
        elif kind is GateKind.NOR:
            for pin in pins:
                union_if_present((name, None, 0), (name, pin, 1))
        elif kind is GateKind.NOT:
            union_if_present((name, None, 1), (name, 0, 0))
            union_if_present((name, None, 0), (name, 0, 1))
        elif kind in (GateKind.BUF, GateKind.OUTPUT, GateKind.DFF):
            # a buffer/flop forwards its D pin; pin fault == stem fault.
            union_if_present((name, None, 0), (name, 0, 0))
            union_if_present((name, None, 1), (name, 0, 1))
    classes: Dict[_Key, List[Fault]] = {}
    for key, fault in present.items():
        classes.setdefault(uf.find(key), []).append(fault)
    representatives = [min(members, key=Fault.sort_key) for members in classes.values()]
    return sorted(representatives, key=Fault.sort_key)
