"""The single-stuck-at fault universe of a gate netlist.

Faults live on gate *output stems* and on gate *input pins*.  Input-pin
faults are only enumerated where they are not trivially equivalent to the
driving stem's fault -- i.e. when the driving net has fanout greater than
one (fanout branches can diverge from the stem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.gates.cells import GateKind
from repro.gates.netlist import GateNetlist
from repro.gates.simulator import FaultSite

_NO_STEM_FAULT = (GateKind.OUTPUT, GateKind.CONST0, GateKind.CONST1)


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault.

    ``pin`` is ``None`` for a fault on the gate's output stem, otherwise
    the index of the faulty fanin pin.  ``stuck`` is the stuck value.
    """

    gate: str
    pin: Optional[int]
    stuck: int

    def site(self) -> FaultSite:
        return FaultSite(self.gate, self.pin, self.stuck)

    def sort_key(self) -> tuple:
        """Deterministic ordering key (stem faults sort before pin faults)."""
        return (self.gate, -1 if self.pin is None else self.pin, self.stuck)

    def __str__(self) -> str:
        location = self.gate if self.pin is None else f"{self.gate}.pin{self.pin}"
        return f"{location}/sa{self.stuck}"


def full_fault_universe(netlist: GateNetlist) -> List[Fault]:
    """Enumerate the uncollapsed stuck-at universe of ``netlist``.

    Constants and OUTPUT markers get no stem faults (a stuck constant is
    undetectable by definition; the marker is an alias).  Input pins of
    OUTPUT markers are skipped too -- they are electrically the stem.
    """
    fanout = netlist.fanout_map()
    faults: List[Fault] = []
    for gate in netlist.gates():
        if gate.kind not in _NO_STEM_FAULT:
            faults.append(Fault(gate.name, None, 0))
            faults.append(Fault(gate.name, None, 1))
        if gate.kind is GateKind.OUTPUT:
            continue
        for pin, source in enumerate(gate.fanins):
            if len(fanout[source]) > 1:
                faults.append(Fault(gate.name, pin, 0))
                faults.append(Fault(gate.name, pin, 1))
    return faults
