"""Vectorized fault grading over compiled netlist programs.

The scalar fault simulator (:mod:`repro.faults.simulator`) is the
bit-identity *oracle*: this module reproduces its decisions -- the same
detected/undetected fault lists in the same order, the same
``first_detection`` indices, and the same ``faultsim.*`` counter values
-- while doing the arithmetic as dense numpy sweeps.

Combinational grading keeps the scalar path's batch structure (64
patterns per batch, fault dropping between batches -- anything coarser
would change which faults are still alive when) but replaces its
per-fault work with whole-fault-list vector ops: one gather computes
every stem fault's activation, one padded gather per gate kind computes
every pin fault's forced value, and only the faults that actually
activate enter a dense ``(faults, rows, words)`` propagation cube that
runs the compiled program once with per-fault row forcing between
levels.  A cheap replay of the scalar batch loop then re-derives the
exact counters and orderings -- including ``faultsim.cone.*``, by
touching the simulator's real cone cache precisely when the scalar
activation checks would have.

Sequential grading runs the good machine once and the whole faulty batch
cycle by cycle with carried per-fault state, mirroring the scalar
per-fault :class:`SequentialSimulator` semantics (flop input-pin faults
are inert there, stem faults force their row every cycle, combinational
pin faults are corrected from the *faulty* plane because corrupted state
feeds back).

One documented divergence: the scalar path discovers a pattern that
misses a source lazily, batch by batch, so on malformed input it may
raise about a different source than the kernel (which packs name-major).
Well-formed pattern sets behave identically.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.faults.simulator import (
    FaultSimResult,
    Pattern,
    _lowest_bit,
    attrib_cone_profile,
    attrib_netlist_profile,
)
from repro.gates.cells import STATE_KINDS, GateKind
from repro.gates.kernel import (
    ALL_ONES,
    CompiledProgram,
    _PAD_ROW,
    ZERO_ROW,
    compiled_program,
    eval_group_ops,
    int_to_words,
    np,
    tail_masks,
    word_count,
)
from repro.gates.netlist import GateNetlist
from repro.obs import METRICS
from repro.obs.attrib import ATTRIB

# the scalar simulator's instruments, shared by name so both backends
# advance the very same counters
_BATCHES = METRICS.counter("faultsim.batches")
_EVENTS = METRICS.counter("faultsim.events")
_DROPPED = METRICS.counter("faultsim.faults.dropped")
_CONE_REUSES = METRICS.counter("faultsim.cone.reuses")

#: faults evaluated per dense propagation sweep (bounds the value cube)
FAULT_CHUNK = 1024

# fault plan kinds
_STEM = 0  # output-stem fault: force the gate's row to the stuck word
_PIN = 1  # combinational input-pin fault: recompute the gate with one pin forced
_FLOP_PIN = 2  # flop input-pin fault: special-cased by the scalar simulator


class _Plan:
    """Per-fault lowering: how to force one fault into the value cube."""

    __slots__ = (
        "fault", "kind", "row", "level", "stuck", "gate_kind", "fanin_rows",
        "pin", "pin_row", "src_row",
    )

    def __init__(self, program: CompiledProgram, fault: Fault) -> None:
        gate = program.netlist.gate(fault.gate)
        self.fault = fault
        self.stuck = np.uint64(ALL_ONES if fault.stuck else 0)
        self.row = program.row[fault.gate]
        self.level = program.level[fault.gate]
        self.gate_kind = gate.kind
        self.fanin_rows = None
        self.pin = fault.pin
        self.pin_row = -1
        self.src_row = -1
        if fault.pin is None:
            self.kind = _STEM
        elif gate.kind in STATE_KINDS:
            self.kind = _FLOP_PIN
            self.src_row = program.row[gate.fanins[fault.pin]]
        else:
            self.kind = _PIN
            self.fanin_rows = np.array(
                [program.row[f] for f in gate.fanins], dtype=np.intp
            )
            self.pin_row = int(self.fanin_rows[fault.pin])


def _forced_pin_value(plan: _Plan, plane) -> "np.ndarray":
    """The faulty gate-output words with one input pin forced, ``(W,)``.

    ``plane`` is a per-fault ``(rows, W)`` slice of the faulty cube --
    used by sequential grading, where corrupted state feeds the gate so
    the correction must read the faulty machine, not the good one.
    """
    ops = plane[plan.fanin_rows, :].copy()
    ops[plan.pin, :] = plan.stuck
    return eval_group_ops(plan.gate_kind, ops)


class _PinGroup:
    """All combinational pin faults of one gate kind, padded to one arity.

    One gather + one vector gate evaluation yields every group member's
    forced output word at once (the combinational shortcut: a pin
    fault's gate reads only fault-free upstream values, so the forced
    output is computable from the good plane alone).
    """

    __slots__ = ("kind", "idx", "fanin_rows", "pin_slot", "pin_rows", "out_rows", "stuck")

    def __init__(self, kind: GateKind, plans: List[Tuple[int, _Plan]]) -> None:
        arity = max(len(plan.fanin_rows) for _, plan in plans)
        pad = _PAD_ROW.get(kind, ZERO_ROW)
        self.kind = kind
        self.idx = np.array([i for i, _ in plans], dtype=np.intp)
        self.fanin_rows = np.full((len(plans), arity), pad, dtype=np.intp)
        for j, (_, plan) in enumerate(plans):
            self.fanin_rows[j, : len(plan.fanin_rows)] = plan.fanin_rows
        self.pin_slot = np.array([plan.pin for _, plan in plans], dtype=np.intp)
        self.pin_rows = np.array([plan.pin_row for _, plan in plans], dtype=np.intp)
        self.out_rows = np.array([plan.row for _, plan in plans], dtype=np.intp)
        self.stuck = np.array([plan.stuck for _, plan in plans], dtype=np.uint64)


def grade_combinational(
    fsim, patterns: Sequence[Pattern], faults: Sequence[Fault]
) -> FaultSimResult:
    """Numpy-backend equivalent of :meth:`FaultSimulator._run`.

    ``fsim`` is the :class:`FaultSimulator` whose netlist, observe set,
    and cone cache define the grading; decisions and counters match its
    scalar path bit for bit.
    """
    netlist: GateNetlist = fsim.netlist
    program = compiled_program(netlist)
    result = FaultSimResult(total=len(faults))
    alive: List[Fault] = list(faults)
    if not patterns:
        result.undetected = alive
        return result
    if not alive:
        # the scalar loop grades one batch before noticing it has no faults
        _BATCHES.inc()
        if ATTRIB.enabled:
            ATTRIB.sim_good(attrib_netlist_profile(netlist))
        return result

    # ---- static per-fault lowering (one plan per distinct fault,
    # cached on the program: ATPG re-grades the same universe often) ----
    plan_cache = program.plan_cache
    plan_of: Dict[Fault, int] = {}
    plan_list: List[_Plan] = []
    cone_keys: List[Tuple] = []
    observe_key = fsim._observe_key
    for fault in alive:
        if fault not in plan_of:
            plan = plan_cache.get(fault)
            if plan is None:
                plan = plan_cache[fault] = _Plan(program, fault)
            plan_of[fault] = len(plan_list)
            plan_list.append(plan)
            cone_keys.append((observe_key, fault.gate))
    n_plans = len(plan_list)
    alive_idx: List[int] = [plan_of[fault] for fault in alive]

    stems = [(i, p) for i, p in enumerate(plan_list) if p.kind is _STEM]
    flops = [(i, p) for i, p in enumerate(plan_list) if p.kind is _FLOP_PIN]
    stem_idx = np.array([i for i, _ in stems], dtype=np.intp)
    stem_rows = np.array([p.row for _, p in stems], dtype=np.intp)
    stem_stuck = np.array([p.stuck for _, p in stems], dtype=np.uint64)
    flop_idx = np.array([i for i, _ in flops], dtype=np.intp)
    flop_rows = np.array([p.src_row for _, p in flops], dtype=np.intp)
    flop_stuck = np.array([p.stuck for _, p in flops], dtype=np.uint64)
    by_kind: Dict[GateKind, List[Tuple[int, _Plan]]] = {}
    for i, plan in enumerate(plan_list):
        if plan.kind is _PIN:
            by_kind.setdefault(plan.gate_kind, []).append((i, plan))
    pin_groups = [_PinGroup(kind, plans) for kind, plans in by_kind.items()]

    rows_of = np.array([p.row for p in plan_list], dtype=np.intp)
    levels_of = np.array([p.level for p in plan_list], dtype=np.intp)
    obs_rows = np.array(
        sorted(program.row[name] for name in fsim._observe if name in program.row),
        dtype=np.intp,
    )
    cone_cache = fsim._cone_cache

    # ---- good machine, all batches in one wide evaluation ----
    # (the scalar path re-simulates per 64-pattern batch; the good
    # machine has no dropping dependency, so one W-word pass is exact)
    total = len(patterns)
    W = word_count(total)
    good_all = program.new_values(W)
    for name in program.source_names:
        word = 0
        for position, pattern in enumerate(patterns):
            try:
                if pattern[name]:
                    word |= 1 << position
            except KeyError:
                raise SimulationError(
                    f"pattern misses source {name!r}"
                ) from None
        good_all[program.row[name], :] = int_to_words(word, W)
    program.eval(good_all)

    # ---- activation + forced output value, every fault x every word ----
    masks_all = tail_masks(total)
    act = np.zeros((n_plans, W), dtype=bool)
    detect = np.zeros((n_plans, W), dtype=np.uint64)
    forced = np.zeros((n_plans, W), dtype=np.uint64)
    if len(stem_idx):
        gv = good_all[stem_rows, :]
        act[stem_idx] = ((gv ^ stem_stuck[:, None]) & masks_all) != 0
        forced[stem_idx] = stem_stuck[:, None]
    if len(flop_idx):
        # observed directly at scan capture; never activates a cone
        detect[flop_idx] = (good_all[flop_rows, :] ^ flop_stuck[:, None]) & masks_all
    for group in pin_groups:
        ops = good_all[group.fanin_rows, :]
        ops[np.arange(len(group.idx)), group.pin_slot, :] = group.stuck[:, None]
        fv = eval_group_ops(group.kind, ops)
        act[group.idx] = (
            (((good_all[group.pin_rows, :] ^ group.stuck[:, None]) & masks_all) != 0)
            & (((fv ^ good_all[group.out_rows, :]) & masks_all) != 0)
        )
        forced[group.idx] = fv

    def dense_sweep(need: List[int], w0: int, w1: int) -> None:
        """Propagate faults ``need`` over words [w0, w1) into ``detect``.

        Runs the fault batch through the compiled program as a
        ``(F, rows, words)`` cube: each fault's row is forced to its
        faulty value between levels, everything downstream re-evaluates,
        and the detect word is the OR over observed rows of (faulty XOR
        good).  Nets outside the fault's fanout cone see identical
        inputs and contribute exactly zero, so no explicit cone masking
        is needed for bit-identity with the scalar overlay propagation.
        """
        Wc = w1 - w0
        plane = good_all[:, w0:w1]
        # cap the cube around ~64 MB so wide pattern sets stay in cache
        cap = max(16, min(FAULT_CHUNK, (64 << 20) // (program.rows * Wc * 8)))
        for start in range(0, len(need), cap):
            sel = np.array(need[start : start + cap], dtype=np.intp)
            cube = np.broadcast_to(plane, (len(sel),) + plane.shape).copy()
            lv, rw, fv = levels_of[sel], rows_of[sel], forced[sel][:, w0:w1]
            by_level: Dict[int, Tuple] = {}
            for level in np.unique(lv):
                at = lv == level
                by_level[int(level)] = (np.nonzero(at)[0], rw[at], fv[at])

            def force(level: int, values) -> None:
                entry = by_level.get(level)
                if entry is not None:
                    idx, frows, fvals = entry
                    values[idx, frows, :] = fvals

            program.eval(cube, after_level=force)
            if len(obs_rows):
                diff = cube[:, obs_rows, :] ^ plane[obs_rows, :]
                detect[sel, w0:w1] = (
                    np.bitwise_or.reduce(diff, axis=1) & masks_all[w0:w1]
                )

    # Word 0 sees every fault, but most die there under random patterns,
    # so it gets a narrow one-word sweep; the survivors (the hard
    # faults) then get all remaining words in one wide sweep.
    dense_sweep(list(dict.fromkeys(i for i in alive_idx if act[i, 0])), 0, 1)
    swept_tail = W == 1

    # ---- replay the scalar batch loop for counters and ordering ----
    for w in range(W):
        batch_start = w * 64
        count = min(64, total - batch_start)
        if w and not swept_tail:
            tail = act[:, w:].any(axis=1)
            dense_sweep(list(dict.fromkeys(i for i in alive_idx if tail[i])), 1, W)
            swept_tail = True
        act_col = act[:, w].tolist()
        det_col = detect[:, w].tolist()
        _BATCHES.inc()
        _EVENTS.inc(count * len(alive))
        attrib = ATTRIB.enabled
        if attrib:
            ATTRIB.sim_good(attrib_netlist_profile(netlist))
            ATTRIB.sim_sweep(count * len(alive))
        still_alive: List[Fault] = []
        still_idx: List[int] = []
        dropped = 0
        for fault, i in zip(alive, alive_idx):
            if act_col[i]:
                # exactly where the scalar path walks the fanout cone --
                # keeps faultsim.cone.builds/reuses and the shared cone
                # cache state identical (inlined reuse fast path)
                if cone_keys[i] in cone_cache:
                    _CONE_REUSES.inc()
                else:
                    fsim._cone(fault.gate)
                if attrib:
                    ATTRIB.sim_cone(
                        attrib_cone_profile(
                            fsim, fault.gate, cone_cache[cone_keys[i]][0]
                        ),
                        f"{netlist.name}::{fault.gate}",
                    )
            word = det_col[i]
            if word:
                result.detected.append(fault)
                result.first_detection[fault] = batch_start + _lowest_bit(word)
                dropped += 1
            else:
                still_alive.append(fault)
                still_idx.append(i)
        _DROPPED.inc(dropped)
        alive = still_alive
        alive_idx = still_idx
        if not alive:
            break

    result.undetected = alive
    return result


# ----------------------------------------------------------------------
# sequential grading
# ----------------------------------------------------------------------
def _next_states(program: CompiledProgram, values):
    """Flop capture values ``(..., flops, W)`` from a value cube."""
    states = np.empty(values.shape[:-2] + (len(program.flop_rows), values.shape[-1]),
                      dtype=np.uint64)
    if len(program.dff_pos):
        states[..., program.dff_pos, :] = values[..., program.dff_d_rows, :]
    if len(program.sdff_pos):
        d = values[..., program.sdff_d_rows, :]
        si = values[..., program.sdff_si_rows, :]
        se = values[..., program.sdff_se_rows, :]
        states[..., program.sdff_pos, :] = (d & ~se) | (si & se)
    return states


def grade_sequence_group(
    netlist: GateNetlist,
    sequences: Sequence[Sequence[Pattern]],
    length: int,
    alive: List[Fault],
    result: FaultSimResult,
) -> List[Fault]:
    """Numpy-backend equivalent of :func:`_grade_sequence_group`.

    Grades one packed group (<= ``SEQUENCE_PACK_LIMIT`` sequences) and
    returns the survivors; detected faults and ``first_detection`` cycles
    land in ``result`` in the scalar path's order.
    """
    program = compiled_program(netlist)
    count = len(sequences)
    Wg = word_count(count)
    gmasks = tail_masks(count)

    # per-cycle packed input words, exactly like the scalar packer
    # (missing inputs default to 0 -- no error here)
    input_rows = program.input_rows
    cycle_words = np.zeros((length, len(input_rows), Wg), dtype=np.uint64)
    for cycle in range(length):
        for n, name in enumerate(program.input_names):
            word = 0
            for position, sequence in enumerate(sequences):
                if sequence[cycle].get(name, 0):
                    word |= 1 << position
            cycle_words[cycle, n, :] = int_to_words(word, Wg)

    n_out = len(program.output_rows)

    # ---- good machine trace (primary outputs per cycle) ----
    good_po = np.zeros((length, n_out, Wg), dtype=np.uint64)
    values = program.new_values(Wg)
    state = np.zeros((len(program.flop_rows), Wg), dtype=np.uint64)
    for cycle in range(length):
        values[input_rows, :] = cycle_words[cycle]
        values[program.flop_rows, :] = state
        program.eval(values)
        good_po[cycle] = values[program.output_rows, :]
        state = _next_states(program, values)

    detected_cycle: Dict[Fault, int] = {}
    dense: List[_Plan] = []
    for fault in dict.fromkeys(alive):
        plan = _Plan(program, fault)
        if plan.kind is _FLOP_PIN:
            # flop input-pin faults never perturb the scalar sequential
            # simulation (flops are sources, never re-evaluated): inert
            continue
        dense.append(plan)

    for start in range(0, len(dense), FAULT_CHUNK):
        sub = dense[start : start + FAULT_CHUNK]
        F = len(sub)
        stem_by_level: Dict[int, Tuple[List[int], List[int], "np.ndarray"]] = {}
        pins_by_level: Dict[int, List[Tuple[int, _Plan]]] = {}
        for i, plan in enumerate(sub):
            if plan.kind is _STEM:
                idx, rows, _ = stem_by_level.setdefault(plan.level, ([], [], None))
                idx.append(i)
                rows.append(plan.row)
            else:
                pins_by_level.setdefault(plan.level, []).append((i, plan))
        for level, (idx, rows, _) in list(stem_by_level.items()):
            stuck = np.array([sub[i].stuck for i in idx], dtype=np.uint64)
            stem_by_level[level] = (idx, rows, stuck[:, None])

        def force(level: int, cube) -> None:
            entry = stem_by_level.get(level)
            if entry is not None:
                idx, rows, stuck = entry
                cube[idx, rows, :] = stuck
            for i, plan in pins_by_level.get(level, ()):
                # corrupted state feeds back, so the correction reads the
                # *faulty* plane -- unlike the combinational shortcut
                cube[i, plan.row, :] = _forced_pin_value(plan, cube[i])

        cube = program.new_values(Wg, batch=(F,))
        state_f = np.zeros((F, len(program.flop_rows), Wg), dtype=np.uint64)
        pending = set(range(F))
        for cycle in range(length):
            cube[:, input_rows, :] = cycle_words[cycle]
            cube[:, program.flop_rows, :] = state_f
            program.eval(cube, after_level=force)
            if n_out:
                diff = (cube[:, program.output_rows, :] ^ good_po[cycle]) & gmasks
                hits = diff.any(axis=(1, 2))
                for i in [i for i in pending if hits[i]]:
                    detected_cycle[sub[i].fault] = cycle
                    pending.discard(i)
            if not pending:
                break
            state_f = _next_states(program, cube)

    survivors: List[Fault] = []
    for fault in alive:
        cycle = detected_cycle.get(fault)
        if cycle is None:
            survivors.append(fault)
        else:
            result.detected.append(fault)
            result.first_detection[fault] = cycle
    return survivors
