"""Parallel-pattern single-fault-propagation simulation.

Patterns are packed 64 at a time into per-net words; for each still-alive
fault only the fanout cone of the fault site is re-evaluated and compared
against the good machine at the observation points inside the cone.
Detected faults are dropped, so later batches get cheaper -- the standard
fault-simulation workhorse the paper's coverage numbers rest on.
"""

from __future__ import annotations

import logging
import random
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.gates.cells import SOURCE_KINDS, GateKind
from repro.gates.kernel import resolve_backend
from repro.gates.levelize import depth_levels
from repro.gates.netlist import GateNetlist
from repro.gates.simulator import CombinationalSimulator, eval_kind
from repro.gates.sequential import SequentialSimulator
from repro.gates.simulator import FaultSite
from repro.obs import METRICS, profile_section
from repro.obs.attrib import ATTRIB

logger = logging.getLogger("repro.faults.simulator")

_BATCHES = METRICS.counter("faultsim.batches")
_EVENTS = METRICS.counter("faultsim.events")
_DROPPED = METRICS.counter("faultsim.faults.dropped")
_SEQ_FAULTS = METRICS.counter("faultsim.sequential.faults")
_SEQ_CHUNKS = METRICS.counter("faultsim.sequential.chunks")
_CONE_BUILDS = METRICS.counter("faultsim.cone.builds")
_CONE_REUSES = METRICS.counter("faultsim.cone.reuses")

#: sequences packed per word in sequential grading; longer stimulus sets
#: are chunked transparently (fault dropping carries across chunks)
SEQUENCE_PACK_LIMIT = 256

#: netlist -> {(observe key, fault site): cone} -- shared by every
#: FaultSimulator on the same netlist (ATPG, compaction, and repeated
#: grade calls re-walk identical fanout cones otherwise)
_SHARED_CONES: "weakref.WeakKeyDictionary[GateNetlist, Dict]" = (
    weakref.WeakKeyDictionary()
)


def clear_cone_caches() -> None:
    """Drop every shared fanout-cone cache.

    Cone reuse is a wall-time optimization, not a semantic one; callers
    that need cache-warmth-independent counters (the bench harness, which
    records ``faultsim.cone.builds``/``reuses`` in ledger records) clear
    the shared state so a run counts the same whether or not an earlier
    run in the process already walked the same netlists.
    """
    _SHARED_CONES.clear()
    _ATTRIB_PROFILES.clear()


#: netlist -> {"netlist": profile, ("cone", observe_key, site): profile}
#: -- per-(level, kind) gate populations feeding effort attribution
_ATTRIB_PROFILES: "weakref.WeakKeyDictionary[GateNetlist, Dict]" = (
    weakref.WeakKeyDictionary()
)


def attrib_netlist_profile(netlist: GateNetlist) -> Dict[str, int]:
    """``level:kind`` -> evaluated-gate count for one full good-value pass.

    Counts exactly the gates the compiled kernels group into op slots
    (everything outside :data:`SOURCE_KINDS`), bucketed by the shared
    :func:`depth_levels` definition, so the scalar oracle and the numpy
    kernels attribute identical populations.
    """
    try:
        store = _ATTRIB_PROFILES.setdefault(netlist, {})
    except TypeError:  # unweakrefable netlist stand-in (tests)
        store = {}
    profile = store.get("netlist")
    if profile is None:
        levels = depth_levels(netlist)
        profile = {}
        for gate in netlist.gates():
            if gate.kind in SOURCE_KINDS:
                continue
            bucket = f"{levels[gate.name]}:{gate.kind.value}"
            profile[bucket] = profile.get(bucket, 0) + 1
        store["netlist"] = profile
    return profile


def attrib_cone_profile(
    fsim: "FaultSimulator", site_gate: str, cone: Sequence[str]
) -> Dict[str, int]:
    """``level:kind`` profile of one detection cone (cached per site)."""
    try:
        store = _ATTRIB_PROFILES.setdefault(fsim.netlist, {})
    except TypeError:
        store = {}
    key = ("cone", fsim._observe_key, site_gate)
    profile = store.get(key)
    if profile is None:
        levels = depth_levels(fsim.netlist)
        profile = {}
        for name in cone:
            gate = fsim.netlist.gate(name)
            bucket = f"{levels[name]}:{gate.kind.value}"
            profile[bucket] = profile.get(bucket, 0) + 1
        store[key] = profile
    return profile

Pattern = Mapping[str, int]  # source gate name -> bit value


@dataclass
class FaultSimResult:
    """Outcome of grading a pattern set against a fault list."""

    total: int
    detected: List[Fault] = field(default_factory=list)
    undetected: List[Fault] = field(default_factory=list)
    #: fault -> index of the first pattern that detects it
    first_detection: Dict[Fault, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fault coverage in percent."""
        if self.total == 0:
            return 100.0
        return 100.0 * len(self.detected) / self.total


class FaultSimulator:
    """Combinational-view fault simulator with fault dropping.

    ``observe`` names the nets whose values are compared between the good
    and faulty machines; the default is all primary outputs plus all
    flip-flop D-pin nets (the full-scan observation set).

    ``backend`` pins grading to ``"scalar"`` or ``"numpy"``; ``None``
    defers to ``REPRO_SIM_BACKEND`` per :meth:`run` call.  The scalar
    path is the decision oracle: both backends produce identical results
    and identical ``faultsim.*`` counters.
    """

    def __init__(
        self,
        netlist: GateNetlist,
        observe: Optional[Iterable[str]] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.netlist = netlist
        self._backend = backend
        self._sim = CombinationalSimulator(netlist, backend=backend)
        if observe is None:
            observed: List[str] = [g.name for g in netlist.outputs]
            for flop in netlist.flops:
                observed.append(flop.fanins[0])
        else:
            observed = list(observe)
        self._observe: Set[str] = set(observed)
        self._level: Dict[str, int] = {name: i for i, name in enumerate(self._sim.order)}
        self._fanout = netlist.fanout_map()
        # cones depend only on (netlist, observe set), so simulators on
        # the same netlist share one cache keyed by the observe set
        self._observe_key = frozenset(self._observe)
        try:
            self._cone_cache: Dict[Tuple, Tuple[List[str], List[str]]] = (
                _SHARED_CONES.setdefault(netlist, {})
            )
        except TypeError:  # unweakrefable netlist stand-in (tests)
            self._cone_cache = {}

    # ------------------------------------------------------------------
    def _cone(self, site_gate: str) -> Tuple[List[str], List[str]]:
        """(combinational gates downstream of site in level order, observed nets in cone)."""
        cache_key = (self._observe_key, site_gate)
        cached = self._cone_cache.get(cache_key)
        if cached is not None:
            _CONE_REUSES.inc()
            return cached
        _CONE_BUILDS.inc()
        visited: Set[str] = set()
        stack = [site_gate]
        while stack:
            name = stack.pop()
            if name in visited:
                continue
            visited.add(name)
            for reader in self._fanout[name]:
                kind = self.netlist.gate(reader).kind
                if kind in (GateKind.DFF, GateKind.SDFF):
                    continue  # the D net itself is observed; state stops the cone
                stack.append(reader)
        ordered = sorted(
            (name for name in visited if name in self._level), key=self._level.__getitem__
        )
        observed = [name for name in visited if name in self._observe]
        result = (ordered, observed)
        self._cone_cache[cache_key] = result
        return result

    # ------------------------------------------------------------------
    def run(self, patterns: Sequence[Pattern], faults: Sequence[Fault]) -> FaultSimResult:
        """Grade ``patterns`` against ``faults`` with fault dropping."""
        with profile_section(
            "faultsim.run", patterns=len(patterns), faults=len(faults)
        ):
            if resolve_backend(self._backend) == "numpy":
                from repro.faults import kernel as _kernel

                return _kernel.grade_combinational(self, patterns, faults)
            return self._run(patterns, faults)

    def _run(self, patterns: Sequence[Pattern], faults: Sequence[Fault]) -> FaultSimResult:
        alive: List[Fault] = list(faults)
        result = FaultSimResult(total=len(faults))
        source_names = [
            g.name for g in self.netlist.gates() if g.kind in (GateKind.INPUT, GateKind.DFF, GateKind.SDFF)
        ]

        for batch_start in range(0, len(patterns), 64):
            batch = patterns[batch_start : batch_start + 64]
            count = len(batch)
            mask = (1 << count) - 1
            sources: Dict[str, int] = {}
            for name in source_names:
                word = 0
                for position, pattern in enumerate(batch):
                    try:
                        if pattern[name]:
                            word |= 1 << position
                    except KeyError:
                        raise SimulationError(f"pattern misses source {name!r}") from None
                sources[name] = word
            good = self._sim.run(sources, count)

            _BATCHES.inc()
            _EVENTS.inc(count * len(alive))
            if ATTRIB.enabled:
                ATTRIB.sim_good(attrib_netlist_profile(self.netlist))
                ATTRIB.sim_sweep(count * len(alive))

            still_alive: List[Fault] = []
            for fault in alive:
                detected_word = self._detect_word(fault, good, mask, count)
                if detected_word:
                    first = batch_start + _lowest_bit(detected_word)
                    result.detected.append(fault)
                    result.first_detection[fault] = first
                else:
                    still_alive.append(fault)
            _DROPPED.inc(len(alive) - len(still_alive))
            alive = still_alive
            if not alive:
                break

        result.undetected = alive
        return result

    # ------------------------------------------------------------------
    def _detect_word(self, fault: Fault, good: Dict[str, int], mask: int, count: int) -> int:
        """Packed word of patterns on which ``fault`` is detected."""
        gate = self.netlist.gate(fault.gate)
        stuck_word = mask if fault.stuck else 0

        if fault.pin is None:
            # activation: patterns where the good value differs from the stuck value
            if good[fault.gate] == stuck_word:
                return 0
            cone_root = fault.gate
            overlay: Dict[str, int] = {fault.gate: stuck_word}
        elif gate.kind in (GateKind.DFF, GateKind.SDFF):
            # A flop input-pin fault is observed directly at scan capture:
            # the captured value differs wherever the pin net toggles away
            # from the stuck value.
            source = gate.fanins[fault.pin]
            return (good[source] ^ stuck_word) & mask
        else:
            # pin fault: re-evaluate the gate with the pin forced
            operands = [good[s] for s in gate.fanins]
            if operands[fault.pin] == stuck_word:
                return 0
            operands[fault.pin] = stuck_word
            faulty_value = eval_kind(gate.kind, operands, mask)
            if faulty_value == good[fault.gate]:
                return 0
            cone_root = fault.gate
            overlay = {fault.gate: faulty_value}

        cone, observed = self._cone(cone_root)
        if ATTRIB.enabled:
            ATTRIB.sim_cone(
                attrib_cone_profile(self, cone_root, cone),
                f"{self.netlist.name}::{cone_root}",
            )
        if not observed:
            return 0

        for name in cone:
            if name in overlay:
                continue  # the root's value is already forced
            g = self.netlist.gate(name)
            changed = False
            operands = []
            for source in g.fanins:
                word = overlay.get(source)
                if word is None:
                    word = good[source]
                else:
                    changed = True
                operands.append(word)
            if not changed:
                continue
            new_value = eval_kind(g.kind, operands, mask)
            if new_value != good[name]:
                overlay[name] = new_value

        detected = 0
        for name in observed:
            word = overlay.get(name)
            if word is not None:
                detected |= word ^ good[name]
        return detected & mask


def _lowest_bit(word: int) -> int:
    return (word & -word).bit_length() - 1


def sequential_fault_grade(
    netlist: GateNetlist,
    sequences: Sequence[Sequence[Pattern]],
    faults: Sequence[Fault],
    sample: Optional[int] = None,
    seed: int = 0,
    backend: Optional[str] = None,
) -> FaultSimResult:
    """Grade functional input *sequences* against ``faults``.

    Used for the paper's "original circuit" and "HSCAN without chip-level
    DFT" rows: the circuit is exercised through its functional inputs over
    multiple cycles (flip-flops start at 0) and a fault counts as detected
    if any primary output differs in any cycle of any sequence.

    ``sample`` randomly subsamples the fault list (statistical fault
    grading) to bound runtime on large netlists; coverage is then an
    estimate over the sample, reported against ``total = len(sample)``.

    ``backend`` pins grading to ``"scalar"`` or ``"numpy"``; ``None``
    defers to ``REPRO_SIM_BACKEND``.
    """
    chosen: List[Fault] = list(faults)
    if sample is not None and sample < len(chosen):
        rng = random.Random(seed)
        chosen = rng.sample(chosen, sample)

    with profile_section(
        "faultsim.sequential", sequences=len(sequences), faults=len(chosen)
    ):
        _SEQ_FAULTS.inc(len(chosen))
        return _sequential_grade(netlist, sequences, chosen, backend=backend)


def _sequential_grade(
    netlist: GateNetlist,
    sequences: Sequence[Sequence[Pattern]],
    chosen: List[Fault],
    backend: Optional[str] = None,
) -> FaultSimResult:
    result = FaultSimResult(total=len(chosen))
    if not sequences:
        result.undetected = chosen
        return result

    length = len(sequences[0])
    for index, sequence in enumerate(sequences):
        if len(sequence) != length:
            raise SimulationError(
                f"all sequences must have equal length: sequence {index} has "
                f"{len(sequence)} cycles, expected {length}"
            )

    # words pack one bit per sequence, so stimulus sets beyond the pack
    # limit are graded in chunks; dropped faults carry across chunks
    if len(sequences) > SEQUENCE_PACK_LIMIT:
        logger.debug(
            "packing %d sequences in %d chunks of <= %d",
            len(sequences),
            -(-len(sequences) // SEQUENCE_PACK_LIMIT),
            SEQUENCE_PACK_LIMIT,
        )
    use_kernel = resolve_backend(backend) == "numpy"
    if use_kernel:
        from repro.faults import kernel as _kernel

    alive = chosen
    for start in range(0, len(sequences), SEQUENCE_PACK_LIMIT):
        _SEQ_CHUNKS.inc()
        group = sequences[start : start + SEQUENCE_PACK_LIMIT]
        if use_kernel:
            alive = _kernel.grade_sequence_group(netlist, group, length, alive, result)
        else:
            alive = _grade_sequence_group(netlist, group, length, alive, result, backend)
        if not alive:
            break
    result.undetected = alive
    return result


def _grade_sequence_group(
    netlist: GateNetlist,
    sequences: Sequence[Sequence[Pattern]],
    length: int,
    alive: List[Fault],
    result: FaultSimResult,
    backend: Optional[str] = None,
) -> List[Fault]:
    """Grade one packed group of sequences; returns the surviving faults."""
    count = len(sequences)

    # per-cycle packed input words across sequences
    cycle_inputs: List[Dict[str, int]] = []
    input_names = [g.name for g in netlist.inputs]
    for cycle in range(length):
        words: Dict[str, int] = {name: 0 for name in input_names}
        for position, sequence in enumerate(sequences):
            pattern = sequence[cycle]
            for name in input_names:
                if pattern.get(name, 0):
                    words[name] |= 1 << position
        cycle_inputs.append(words)

    good_sim = SequentialSimulator(netlist, pattern_count=count, backend=backend)
    good_trace = good_sim.run_sequence(cycle_inputs)

    survivors: List[Fault] = []
    for fault in alive:
        faulty_sim = SequentialSimulator(
            netlist, pattern_count=count, fault=fault.site(), backend=backend
        )
        detected = False
        for cycle, outputs in enumerate(faulty_sim.run_sequence(cycle_inputs)):
            good = good_trace[cycle]
            if any(outputs[name] != good[name] for name in outputs):
                detected = True
                break
        if detected:
            result.detected.append(fault)
            result.first_detection[fault] = cycle
        else:
            survivors.append(fault)
    return survivors
