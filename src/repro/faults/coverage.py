"""Coverage metrics: fault coverage and test efficiency.

The paper reports both *fault coverage* (detected / total) and *test
efficiency* (detected + proven redundant) / total -- redundant faults are
undetectable by any pattern, so a test set that detects everything
detectable has 100% test efficiency even below 100% coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.faults.model import Fault


@dataclass
class CoverageReport:
    """Aggregated grading outcome for one circuit + test set."""

    total: int
    detected: int
    redundant: int = 0
    aborted: int = 0
    undetected_faults: List[Fault] = field(default_factory=list)

    @property
    def fault_coverage(self) -> float:
        """Detected / total, in percent."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.detected / self.total

    @property
    def test_efficiency(self) -> float:
        """(Detected + redundant) / total, in percent."""
        if self.total == 0:
            return 100.0
        return 100.0 * (self.detected + self.redundant) / self.total

    def merged_with(self, other: "CoverageReport") -> "CoverageReport":
        """Combine two disjoint fault populations (e.g. per-core reports)."""
        return CoverageReport(
            total=self.total + other.total,
            detected=self.detected + other.detected,
            redundant=self.redundant + other.redundant,
            aborted=self.aborted + other.aborted,
            undetected_faults=self.undetected_faults + other.undetected_faults,
        )
