"""GCD core (System 2), after the HLSynth'95 benchmark [10].

Euclid's algorithm by repeated subtraction: operand registers ``X`` and
``Y`` load from the inputs on ``Start`` and subtract each other until
equal; ``Result`` presents ``X`` and ``Done`` flags completion.
"""

from __future__ import annotations

from repro.rtl import CircuitBuilder, OpKind, RTLCircuit, Slice


def build_gcd() -> RTLCircuit:
    b = CircuitBuilder("GCD")

    x_in = b.input("Xin", 8)
    y_in = b.input("Yin", 8)
    start = b.input("Start", 1)

    x = b.register("X", 8)
    y = b.register("Y", 8)
    done = b.register("DN", 1)
    phase = b.register("PH", 1)

    x_minus_y = b.op("XMY", OpKind.SUB, [x, y])
    y_minus_x = b.op("YMX", OpKind.SUB, [y, x])
    x_less = b.op("XLT", OpKind.LT, [x, y])
    equal = b.op("EQL", OpKind.EQ, [x, y])

    x_mux = b.mux("X_MUX", [x_minus_y, x_in], select=start)
    b.drive(x, x_mux, enable=b.op("X_EN", OpKind.OR, [start, b.op("NXL", OpKind.NOT, [x_less])]))
    y_mux = b.mux("Y_MUX", [y_minus_x, y_in], select=start)
    b.drive(y, y_mux, enable=b.op("Y_EN", OpKind.OR, [start, x_less]))

    done_mux = b.mux("DN_MUX", [equal, start], select=start)
    b.drive(done, done_mux)
    phase_mux = b.mux("PH_MUX", [Slice("DN", 0, 1), start], select=equal)
    b.drive(phase, phase_mux)

    b.output("Result", x)
    b.output("Done", Slice("DN", 0, 1))
    b.output("Phase", Slice("PH", 0, 1))
    return b.build()
