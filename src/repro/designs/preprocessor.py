"""The barcode PREPROCESSOR core (paper Figures 2, 8a, 9).

Receives the scanner signal ``Video`` and the calibration bus ``NUM``,
filters the bar widths, and writes them to memory: a five-deep filter /
measurement pipeline feeds the data bus ``DB``, a 12-bit write-address
generator drives ``Address`` (which goes only to the RAM -- the paper's
example of an output needing a system-level test multiplexer), and an
end-of-conversion flag ``Eoc`` interrupts the CPU.

The pipeline depth gives Version 1 its NUM->DB latency of 5 and
NUM->Address latency of 2 (Figure 8a); a raw-bypass mux into the final
data register provides the existing edge Version 2 exploits (NUM->DB in
one cycle).
"""

from __future__ import annotations

from repro.rtl import CircuitBuilder, OpKind, RTLCircuit, Slice
from repro.rtl.types import Concat, concat


def build_preprocessor() -> RTLCircuit:
    b = CircuitBuilder("PREPROCESSOR")

    # ------------------------------------------------------------------ ports
    video = b.input("Video", 1)
    num = b.input("NUM", 8)
    reset = b.input("Reset", 1)

    # ------------------------------------------------------------------ filter/measure pipeline (5 deep)
    filt0 = b.register("FILT0", 8)
    filt1 = b.register("FILT1", 8)
    width = b.register("WIDTH", 8)
    bar = b.register("BAR", 8)
    dbr = b.register("DBR", 8)

    vreg = b.register("VREG", 1)
    b.drive(vreg, video)

    # threshold calibration from NUM, or re-circulated measurement
    smooth = b.op("SMOOTH", OpKind.ADD, [Slice("FILT0", 0, 8), Slice("FILT1", 0, 8)])
    filt0_mux = b.mux("FILT0_MUX", [num, smooth], select=vreg)
    b.drive(filt0, filt0_mux)
    b.drive(filt1, filt0)

    count_inc = b.op("CNT_INC", OpKind.INC, [Slice("WIDTH", 0, 8)])
    width_mux = b.mux("WIDTH_MUX", [filt1, count_inc], select=vreg)
    b.drive(width, width_mux)

    over = b.op("OVER", OpKind.LT, [Slice("FILT1", 0, 8), Slice("WIDTH", 0, 8)])
    bar_mux = b.mux("BAR_MUX", [width, Slice("DBR", 0, 8)], select=over)
    b.drive(bar, bar_mux)

    # the data-bus register: measured bar width, or raw NUM (calibration
    # passthrough) -- the existing 1-cycle edge Version 2 reuses
    dbr_mux = b.mux("DBR_MUX", [bar, num], select=over)
    b.drive(dbr, dbr_mux)

    # ------------------------------------------------------------------ write-address generator
    # THR: calibration/base-address register loaded from NUM (its HSCAN
    # scan-in comes from a test mux, so Version 1 reaches the address
    # registers through the *existing* NUM -> THR path in two cycles)
    thr = b.register("THR", 8)
    thr_mux = b.mux("THR_MUX", [num, Slice("FILT1", 0, 8)], select=vreg)
    b.drive(thr, thr_mux)

    cnt = b.register("CNT", 8)  # address offset within the page
    pg = b.register("PG", 4)  # memory page
    addr_inc = b.op("ADDR_INC", OpKind.INC, [Slice("CNT", 0, 8)])
    cnt_mux = b.mux("CNT_MUX", [Slice("THR", 0, 8), addr_inc], select=vreg)
    b.drive(cnt, cnt_mux)
    pg_mux = b.mux("PG_MUX", [Slice("THR", 4, 4), Slice("PG", 0, 4)], select=vreg)
    b.drive(pg, pg_mux)

    # ------------------------------------------------------------------ end-of-conversion chain (Reset -> E0 -> E1 -> Eoc)
    e0 = b.register("E0", 1)
    e1 = b.register("E1", 1)
    done = b.op("DONE", OpKind.REDUCE_AND, [Slice("CNT", 0, 8)])
    e0_mux = b.mux("E0_MUX", [reset, done], select=vreg)
    b.drive(e0, e0_mux)
    e1_mux = b.mux("E1_MUX", [e0, Slice("VREG", 0, 1)], select=reset)
    b.drive(e1, e1_mux)

    # ------------------------------------------------------------------ outputs
    b.output("DB", Slice("DBR", 0, 8))
    b.output("Address", Concat((Slice("CNT", 0, 8), Slice("PG", 0, 4))))
    b.output("Eoc", Slice("E1", 0, 1))
    return b.build()
