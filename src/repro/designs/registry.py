"""Name-based lookup of the example cores and systems."""

from __future__ import annotations

from typing import Callable, Dict

from repro.designs.cpu import build_cpu
from repro.designs.display import build_display
from repro.designs.gcd import build_gcd
from repro.designs.graphics import build_graphics
from repro.designs.memory_cores import build_ram, build_rom
from repro.designs.preprocessor import build_preprocessor
from repro.designs.x25 import build_x25


def core_builders() -> Dict[str, Callable]:
    """Builders for every example core, keyed by core name."""
    return {
        "CPU": build_cpu,
        "PREPROCESSOR": build_preprocessor,
        "DISPLAY": build_display,
        "RAM": build_ram,
        "ROM": build_rom,
        "GCD": build_gcd,
        "GRAPHICS": build_graphics,
        "X25": build_x25,
    }


def system_builders() -> Dict[str, Callable]:
    """Builders for the example systems.

    System1/System2 reproduce the paper's chips; System3/System4 add
    parallel topologies for the concurrent test-session scheduler.
    """
    from repro.designs.barcode import build_system1
    from repro.designs.system2 import build_system2
    from repro.designs.system3 import build_system3
    from repro.designs.system4 import build_system4

    return {
        "System1": build_system1,
        "System2": build_system2,
        "System3": build_system3,
        "System4": build_system4,
    }
