"""System 4: four independent pin-attached cores (scheduling stress case).

Every core connects straight to dedicated chip pins, so no test borrows
another core's transparency: all four tests could run at once.  That
makes System 4 the extreme case for the concurrent-session scheduler --
and the natural demonstration of the scan-power budget, which is then
the only thing forcing tests apart.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.designs.display import build_display
from repro.designs.gcd import build_gcd
from repro.designs.preprocessor import build_preprocessor
from repro.designs.x25 import build_x25
from repro.soc import Core, Soc

#: precomputed combinational vector counts (our ATPG, seed 0)
DEFAULT_VECTORS: Dict[str, int] = {
    "PREPROCESSOR": 34,
    "GCD": 43,
    "X25": 18,
    "DISPLAY": 19,
}


def build_system4(test_vectors: Optional[Dict[str, int]] = None, atpg_seed: int = 0) -> Soc:
    vectors = dict(DEFAULT_VECTORS)
    vectors.update(test_vectors or {})

    soc = Soc("System4")
    pre = Core.from_circuit(
        build_preprocessor(), test_vectors=vectors.get("PREPROCESSOR"), atpg_seed=atpg_seed
    )
    gcd = Core.from_circuit(build_gcd(), test_vectors=vectors.get("GCD"), atpg_seed=atpg_seed)
    x25 = Core.from_circuit(build_x25(), test_vectors=vectors.get("X25"), atpg_seed=atpg_seed)
    display = Core.from_circuit(
        build_display(), test_vectors=vectors.get("DISPLAY"), atpg_seed=atpg_seed
    )
    for core in (pre, gcd, x25, display):
        soc.add_core(core)

    # PREPROCESSOR
    soc.add_input("Video", 1)
    soc.add_input("NUM", 8)
    soc.add_input("ScanReset", 1)
    soc.add_output("DB", 8)
    soc.add_output("Address", 12)
    soc.add_output("Eoc", 1)
    soc.wire(None, "Video", "PREPROCESSOR", "Video")
    soc.wire(None, "NUM", "PREPROCESSOR", "NUM")
    soc.wire(None, "ScanReset", "PREPROCESSOR", "Reset")
    soc.wire("PREPROCESSOR", "DB", None, "DB")
    soc.wire("PREPROCESSOR", "Address", None, "Address")
    soc.wire("PREPROCESSOR", "Eoc", None, "Eoc")

    # GCD
    soc.add_input("Xin", 8)
    soc.add_input("Yin", 8)
    soc.add_input("Start", 1)
    soc.add_output("Result", 8)
    soc.add_output("Done", 1)
    soc.add_output("Phase", 1)
    soc.wire(None, "Xin", "GCD", "Xin")
    soc.wire(None, "Yin", "GCD", "Yin")
    soc.wire(None, "Start", "GCD", "Start")
    soc.wire("GCD", "Result", None, "Result")
    soc.wire("GCD", "Done", None, "Done")
    soc.wire("GCD", "Phase", None, "Phase")

    # X25
    soc.add_input("RX", 8)
    soc.add_input("Frame", 1)
    soc.add_input("LinkReset", 1)
    soc.add_output("TX", 8)
    soc.add_output("Ack", 1)
    soc.add_output("Seq", 8)
    soc.wire(None, "RX", "X25", "RX")
    soc.wire(None, "Frame", "X25", "Frame")
    soc.wire(None, "LinkReset", "X25", "Reset")
    soc.wire("X25", "TX", None, "TX")
    soc.wire("X25", "Ack", None, "Ack")
    soc.wire("X25", "SeqOut", None, "Seq")

    # DISPLAY
    soc.add_input("DigitSel", 12)
    soc.add_input("DigitData", 8)
    for index in range(1, 7):
        soc.add_output(f"PORT{index}", 7)
    soc.wire(None, "DigitSel", "DISPLAY", "A")
    soc.wire(None, "DigitData", "DISPLAY", "D")
    for index in range(1, 7):
        soc.wire("DISPLAY", f"PORT{index}", None, f"PORT{index}")

    return soc.validate()
