"""System 1: the barcode-scanner SOC of Figure 2.

The PREPROCESSOR digitizes the scanned barcode and writes bar widths to
the RAM; the CPU converts them to a price using the program in the ROM;
the DISPLAY drives six seven-segment digits (the chip outputs).  The
memory cores are BIST-tested and therefore excluded from the CCG, so
the PREPROCESSOR's RAM-facing address bus is the paper's example of an
output observable only through a system-level test multiplexer.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.designs.cpu import build_cpu
from repro.designs.display import build_display
from repro.designs.memory_cores import build_ram, build_rom
from repro.designs.preprocessor import build_preprocessor
from repro.soc import Core, Soc

#: precomputed combinational vector counts (our ATPG, seed 0); pass
#: ``test_vectors={"CPU": None, ...}`` to regenerate a core's count.
DEFAULT_VECTORS: Dict[str, int] = {
    "CPU": 50,
    "PREPROCESSOR": 34,
    "DISPLAY": 19,
}


def build_system1(test_vectors: Optional[Dict[str, int]] = None, atpg_seed: int = 0) -> Soc:
    """Assemble System 1.

    ``test_vectors`` maps core name to precomputed vector count; cores
    missing from it get sized by running the combinational ATPG on their
    elaborated netlist (slower, but exact for the current library).
    """
    vectors = dict(DEFAULT_VECTORS)
    if test_vectors:
        vectors.update(test_vectors)

    soc = Soc("System1")
    cpu = Core.from_circuit(build_cpu(), test_vectors=vectors.get("CPU"), atpg_seed=atpg_seed)
    pre = Core.from_circuit(
        build_preprocessor(), test_vectors=vectors.get("PREPROCESSOR"), atpg_seed=atpg_seed
    )
    display = Core.from_circuit(
        build_display(), test_vectors=vectors.get("DISPLAY"), atpg_seed=atpg_seed
    )
    ram = Core.from_circuit(build_ram(), test_vectors=0, is_memory=True)
    rom = Core.from_circuit(build_rom(), test_vectors=0, is_memory=True)
    for core in (cpu, pre, display, ram, rom):
        soc.add_core(core)

    # chip pins
    soc.add_input("Video", 1)
    soc.add_input("NUM", 8)
    soc.add_input("Reset", 1)
    for index in range(1, 7):
        soc.add_output(f"PORT{index}", 7)

    # PREPROCESSOR <- pins
    soc.wire(None, "Video", "PREPROCESSOR", "Video")
    soc.wire(None, "NUM", "PREPROCESSOR", "NUM")
    soc.wire(None, "Reset", "PREPROCESSOR", "Reset")

    # CPU <- PREPROCESSOR / pins
    soc.wire("PREPROCESSOR", "DB", "CPU", "Data")
    soc.wire(None, "Reset", "CPU", "Reset")
    soc.wire("PREPROCESSOR", "Eoc", "CPU", "Interrupt")

    # DISPLAY <- CPU / PREPROCESSOR
    soc.wire("CPU", "Address", "DISPLAY", "A")
    soc.wire("PREPROCESSOR", "DB", "DISPLAY", "D")

    # DISPLAY -> chip outputs
    for index in range(1, 7):
        soc.wire("DISPLAY", f"PORT{index}", None, f"PORT{index}")

    # memory subsystem (excluded from the CCG; BIST-tested)
    soc.wire("PREPROCESSOR", "Address", "RAM", "Address")
    soc.wire("CPU", "DataOut", "RAM", "DataIn")
    soc.wire("CPU", "Write", "RAM", "Write")
    soc.wire("CPU", "Read", "RAM", "Read")
    soc.wire("CPU", "Address", "ROM", "Address")
    soc.wire("CPU", "Read", "ROM", "Enable")

    return soc.validate()
