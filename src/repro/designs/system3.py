"""System 3: a dual-pipe SOC built to exercise concurrent test sessions.

The paper's two systems are single chains, so every core's test borrows
its neighbours' transparency and the tests serialize.  System 3 has
three independent subsystems on one chip -- a GRAPHICS->GCD pipe, a
standalone X.25 link, and a standalone DISPLAY -- each with dedicated
pins, the topology (common in practice) where a concurrent-session
scheduler beats the serial test order.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.designs.display import build_display
from repro.designs.gcd import build_gcd
from repro.designs.graphics import build_graphics
from repro.designs.x25 import build_x25
from repro.soc import Core, Soc

#: precomputed combinational vector counts (our ATPG, seed 0)
DEFAULT_VECTORS: Dict[str, int] = {
    "GRAPHICS": 27,
    "GCD": 43,
    "X25": 18,
    "DISPLAY": 19,
}


def build_system3(test_vectors: Optional[Dict[str, int]] = None, atpg_seed: int = 0) -> Soc:
    vectors = dict(DEFAULT_VECTORS)
    vectors.update(test_vectors or {})

    soc = Soc("System3")
    graphics = Core.from_circuit(
        build_graphics(), test_vectors=vectors.get("GRAPHICS"), atpg_seed=atpg_seed
    )
    gcd = Core.from_circuit(build_gcd(), test_vectors=vectors.get("GCD"), atpg_seed=atpg_seed)
    x25 = Core.from_circuit(build_x25(), test_vectors=vectors.get("X25"), atpg_seed=atpg_seed)
    display = Core.from_circuit(
        build_display(), test_vectors=vectors.get("DISPLAY"), atpg_seed=atpg_seed
    )
    for core in (graphics, gcd, x25, display):
        soc.add_core(core)

    # pipe A: pins -> GRAPHICS -> GCD -> pins
    soc.add_input("Cmd", 8)
    soc.add_input("Data", 8)
    soc.add_input("Go", 1)
    soc.add_output("Ratio", 8)
    soc.add_output("RDone", 1)
    soc.add_output("Pattern", 8)
    soc.wire(None, "Cmd", "GRAPHICS", "Cmd")
    soc.wire(None, "Data", "GRAPHICS", "Data")
    soc.wire(None, "Go", "GRAPHICS", "Go")
    soc.wire("GRAPHICS", "PX", "GCD", "Xin")
    soc.wire("GRAPHICS", "PY", "GCD", "Yin")
    soc.wire("GRAPHICS", "Valid", "GCD", "Start")
    soc.wire("GRAPHICS", "Pattern", None, "Pattern")
    soc.wire("GCD", "Result", None, "Ratio")
    soc.wire("GCD", "Done", None, "RDone")
    # GCD.Phase stays internal: the planner adds a test mux

    # pipe B: the X.25 link, entirely pin-attached
    soc.add_input("RX", 8)
    soc.add_input("Frame", 1)
    soc.add_input("LinkReset", 1)
    soc.add_output("TX", 8)
    soc.add_output("Ack", 1)
    soc.add_output("Seq", 8)
    soc.wire(None, "RX", "X25", "RX")
    soc.wire(None, "Frame", "X25", "Frame")
    soc.wire(None, "LinkReset", "X25", "Reset")
    soc.wire("X25", "TX", None, "TX")
    soc.wire("X25", "Ack", None, "Ack")
    soc.wire("X25", "SeqOut", None, "Seq")

    # pipe C: the DISPLAY, driven straight from pins
    soc.add_input("DigitSel", 12)
    soc.add_input("DigitData", 8)
    for index in range(1, 7):
        soc.add_output(f"PORT{index}", 7)
    soc.wire(None, "DigitSel", "DISPLAY", "A")
    soc.wire(None, "DigitData", "DISPLAY", "D")
    for index in range(1, 7):
        soc.wire("DISPLAY", f"PORT{index}", None, f"PORT{index}")

    return soc.validate()
