"""Graphics processor core (System 2), after the control-flow-intensive
line-drawing processor of [9].

A Bresenham-style stepper: command/data registers feed coordinate
counters ``CX``/``CY`` with an error accumulator ``ERR`` and a pattern
register ``PAT``; the current pixel coordinates stream out on
``PX``/``PY`` with a ``Valid`` strobe.
"""

from __future__ import annotations

from repro.rtl import CircuitBuilder, OpKind, RTLCircuit, Slice
from repro.rtl.types import Concat


def build_graphics() -> RTLCircuit:
    b = CircuitBuilder("GRAPHICS")

    cmd = b.input("Cmd", 8)
    data = b.input("Data", 8)
    go = b.input("Go", 1)

    creg = b.register("CREG", 8)  # latched command
    dreg = b.register("DREG", 8)  # latched parameter
    cx = b.register("CX", 8)
    cy = b.register("CY", 8)
    err = b.register("ERR", 8)
    pat = b.register("PAT", 8)
    run = b.register("RUN", 1)
    vld = b.register("VLD", 1)

    b.drive(creg, cmd)
    b.drive(dreg, data)

    opcode = b.op("OPC", OpKind.DECODE, [Slice("CREG", 0, 2)])
    is_move = opcode.sub(0, 1)
    is_draw = b.op("IS_DRAW", OpKind.REDUCE_OR, [opcode.sub(1, 2)])
    is_nop = opcode.sub(3, 1)

    step_x = b.op("STEPX", OpKind.INC, [cx])
    cx_mux = b.mux("CX_MUX", [step_x, dreg], select=is_move)
    b.drive(cx, cx_mux, enable=go)

    step_y = b.op("STEPY", OpKind.INC, [cy])
    cy_mux = b.mux("CY_MUX", [step_y, cx], select=is_move)
    b.drive(cy, cy_mux, enable=go)

    err_next = b.op("ERRN", OpKind.SUB, [err, dreg])
    err_enable = b.op("ERR_EN", OpKind.OR, [is_draw, go])
    err_mux = b.mux("ERR_MUX", [err_next, cy], select=is_move)
    b.drive(err, err_mux, enable=err_enable)

    rotate = Concat((Slice("PAT", 7, 1), Slice("PAT", 0, 7)))
    pat_enable = b.op("PAT_EN", OpKind.NOT, [is_nop])
    pat_mux = b.mux("PAT_MUX", [rotate, dreg], select=is_move)
    b.drive(pat, pat_mux, enable=pat_enable)

    err_neg = Slice("ERR", 7, 1)
    run_mux = b.mux("RUN_MUX", [err_neg, go], select=go)
    b.drive(run, run_mux)
    vld_mux = b.mux("VLD_MUX", [Slice("RUN", 0, 1), go], select=is_move)
    b.drive(vld, vld_mux)

    b.output("PX", cx)
    b.output("PY", cy)
    b.output("Pattern", pat)
    b.output("Valid", Slice("VLD", 0, 1))
    return b.build()
