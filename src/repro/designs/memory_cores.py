"""RAM and ROM cores of the barcode system.

The paper excludes memory cores from the transparency CCG ("most memory
cores use BIST"); these minimal RTL shells exist so the SOC wiring is
complete, while their actual testing is handled by :mod:`repro.bist`
March-test engines against the behavioral models there.
"""

from __future__ import annotations

from repro.rtl import CircuitBuilder, OpKind, RTLCircuit, Slice


def build_ram() -> RTLCircuit:
    """4KB RAM interface shell (16 pages x 256 bytes, 8-bit data)."""
    b = CircuitBuilder("RAM")
    address = b.input("Address", 12)
    data_in = b.input("DataIn", 8)
    write = b.input("Write", 1)
    read = b.input("Read", 1)

    # interface latches standing in for the (behaviorally modelled) array
    dor = b.register("DOR", 8, enable=read)
    b.drive(dor, data_in)
    busy = b.register("BUSY", 1)
    strobe = b.op("STROBE", OpKind.OR, [write, read])
    b.drive(busy, strobe)
    _ = address
    b.output("DataOut", Slice("DOR", 0, 8))
    b.output("Busy", Slice("BUSY", 0, 1))
    return b.build()


def build_rom() -> RTLCircuit:
    """4KB program ROM interface shell."""
    b = CircuitBuilder("ROM")
    address = b.input("Address", 12)
    enable = b.input("Enable", 1)
    # stand-in decode of the address into a data pattern
    folded = b.op("FOLD", OpKind.XOR, [address.sub(0, 6), address.sub(6, 6)])
    dor = b.register("DOR", 6, enable=enable)
    b.drive(dor, folded)
    pad = b.const("PAD", 2, 0)
    from repro.rtl.types import Concat

    b.output("Data", Concat((Slice("DOR", 0, 6), Slice("PAD", 0, 2))))
    return b.build()
