"""The barcode system's CPU core (paper Figures 3-7).

A Parwan-style 8-bit accumulator machine with a 12-bit (page + offset)
address space:

* ``IR`` instruction register, ``DR`` data/operand register, ``AC``
  accumulator, ``SR`` status flags, ``PC_offset`` program counter,
  ``MAR_page``/``MAR_offset`` memory address register halves;
* mux ``M`` in front of ``MAR_offset`` selects between the program
  counter and the ``Data`` bus -- the existing path the paper's
  Version 2 steals for 1-cycle transparency (Data -> Address(7:0));
* single-bit control chains ``Reset -> ... -> Read`` and
  ``Interrupt -> ... -> Write`` (2 cycles each, as in Section 4).

The register/mux topology is arranged so that the *generic* HSCAN and
transparency algorithms reproduce the paper's Figure 6 latencies:
Version 1: Data->A(7:0)=6, Data->A(11:8)=2 (total 8); Version 2: 1/2
(total 3); Version 3: 1/1 (total 2).
"""

from __future__ import annotations

from repro.rtl import CircuitBuilder, OpKind, RTLCircuit, Slice
from repro.rtl.types import Concat, concat


def build_cpu() -> RTLCircuit:
    b = CircuitBuilder("CPU")

    # ------------------------------------------------------------------ ports
    data = b.input("Data", 8)
    reset = b.input("Reset", 1)
    interrupt = b.input("Interrupt", 1)

    # ------------------------------------------------------------------ state
    ir = b.register("IR", 8)
    dr = b.register("DR", 8)
    sr = b.register("SR", 4)
    ac = b.register("AC", 8)
    pc_offset = b.register("PC_offset", 8)
    mar_page = b.register("MAR_page", 4)
    mar_offset = b.register("MAR_offset", 8)
    # two-bit control FSM + interrupt synchronizer (single-bit chains)
    ctrl0 = b.register("CTRL0", 1)
    ctrl1 = b.register("CTRL1", 1)
    int0 = b.register("INT0", 1)
    int1 = b.register("INT1", 1)

    # ------------------------------------------------------------------ control decode
    phase = b.op("PHASE", OpKind.DECODE, [concat(ctrl0, ctrl1)])  # 4 one-hot phases
    opcode = b.op("OPCODE", OpKind.DECODE, [ir.sub(4, 4)])  # 16 one-hot opcodes
    is_load = b.op("IS_LOAD", OpKind.REDUCE_OR, [opcode.sub(0, 2)])
    is_jump = b.op("IS_JUMP", OpKind.REDUCE_OR, [opcode.sub(2, 2)])
    is_store = b.op("IS_STORE", OpKind.REDUCE_OR, [opcode.sub(4, 2)])
    is_halt = b.op("IS_HALT", OpKind.REDUCE_OR, [opcode.sub(8, 4)])
    is_io = b.op("IS_IO", OpKind.REDUCE_OR, [opcode.sub(12, 4)])
    fetch_phase = phase.sub(0, 1)
    mem_phase = phase.sub(1, 1)
    exec_phase = phase.sub(2, 1)
    wb_phase = phase.sub(3, 1)

    # ------------------------------------------------------------------ datapath
    alu_add = b.op("ALU_ADD", OpKind.ADD, [ac, dr])
    alu_and = b.op("ALU_AND", OpKind.AND, [ac, dr])
    alu_sel = b.op("ALU_SEL", OpKind.REDUCE_OR, [opcode.sub(6, 2)])
    alu_out = b.mux("ALU_MUX", [alu_add, alu_and], select=alu_sel)

    zero_const = b.const("ZERO8", 8, 0)
    flag_zero = b.op("FLAG_Z", OpKind.EQ, [alu_out, zero_const])
    flag_neg = alu_out.sub(7, 1)
    flag_carry = b.op("FLAG_C", OpKind.LT, [alu_out, ac])
    flag_odd = alu_out.sub(0, 1)
    flags = concat(flag_zero, flag_neg, flag_carry, flag_odd)

    # IR: loads the instruction from the data bus during fetch
    b.drive(ir, data, enable=fetch_phase)

    # DR: memory data register -- from the bus-held IR value (addressing
    # modes), the ALU result (read-modify-write), or the Data bus itself
    dr_sel = concat(is_store, exec_phase)
    dr_enable = b.op("DR_EN", OpKind.OR, [mem_phase, is_store])
    dr_mux = b.mux("DR_MUX", [ir, alu_out, data], select=dr_sel)
    b.drive(dr, dr_mux, enable=dr_enable)

    # SR: status flags, restored from DR's low nibble (context restore),
    # or written from the bus (flag-restore instruction)
    sr_sel = concat(exec_phase, is_jump)
    sr_mux = b.mux("SR_MUX", [dr.sub(0, 4), flags, data.sub(0, 4)], select=sr_sel)
    b.drive(sr, sr_mux)

    # AC: ALU result, or assembled from SR (low) and DR (high) on restore
    restore_value = Concat((Slice("SR", 0, 4), Slice("DR", 4, 4)))
    ac_enable = b.op("AC_EN", OpKind.OR, [exec_phase, is_io])
    ac_mux = b.mux("AC_MUX", [alu_out, restore_value], select=is_load)
    b.drive(ac, ac_mux, enable=ac_enable)

    # PC offset: increment, or jump target taken from AC; halted CPUs
    # and write-back phases freeze the program counter
    pc_inc = b.op("PC_INC", OpKind.INC, [pc_offset])
    not_halt = b.op("NOT_HALT", OpKind.NOT, [is_halt])
    pc_hold = b.op("PC_HOLD", OpKind.NOT, [wb_phase])
    pc_enable = b.op("PC_EN", OpKind.AND, [not_halt, pc_hold])
    pc_mux = b.mux("PC_MUX", [pc_inc, ac], select=is_jump)
    b.drive(pc_offset, pc_mux, enable=pc_enable)

    # MAR offset through mux M: program counter or direct Data (operand fetch)
    mar_mux = b.mux("M", [pc_offset, data], select=is_load)
    b.drive(mar_offset, mar_mux)

    # MAR page from the instruction's page nibble or the status register
    page_mux = b.mux("PAGE_MUX", [ir.sub(0, 4), sr], select=is_jump)
    b.drive(mar_page, page_mux)

    # control FSM: Reset loads state 0; otherwise advance
    ns0 = b.op("NS0", OpKind.XOR, [ctrl0, ctrl1])
    ctrl0_mux = b.mux("CTRL0_MUX", [ns0, reset], select=reset)
    b.drive(ctrl0, ctrl0_mux)
    ctrl1_mux = b.mux("CTRL1_MUX", [ctrl0, reset], select=reset)
    b.drive(ctrl1, ctrl1_mux)

    # interrupt synchronizer chain
    b.drive(int0, interrupt)
    int1_mux = b.mux("INT1_MUX", [int0, ctrl1], select=fetch_phase)
    b.drive(int1, int1_mux)

    # ------------------------------------------------------------------ outputs
    b.output("Address", Concat((Slice("MAR_offset", 0, 8), Slice("MAR_page", 0, 4))))
    b.output("DataOut", Slice("AC", 0, 8))
    b.output("Read", Slice("CTRL1", 0, 1))
    b.output("Write", Slice("INT1", 0, 1))
    return b.build()
