"""RTL reconstructions of the paper's example cores and systems.

System 1 is the barcode-scanner SOC of Figure 2 (CPU + PREPROCESSOR +
DISPLAY + RAM + ROM); the CPU follows the Parwan-style accumulator
machine of Figure 3.  System 2 combines a graphics processor, a GCD
unit, and an X.25-style protocol engine (references [9]-[11]).  The
original RTL is not public, so these are reconstructions guided by the
paper's figures, port lists, flip-flop counts, and version latency
tables; the DESIGN.md substitution notes apply.
"""

from repro.designs.cpu import build_cpu
from repro.designs.preprocessor import build_preprocessor
from repro.designs.display import build_display
from repro.designs.memory_cores import build_ram, build_rom
from repro.designs.gcd import build_gcd
from repro.designs.graphics import build_graphics
from repro.designs.x25 import build_x25
from repro.designs.barcode import build_system1
from repro.designs.system2 import build_system2
from repro.designs.system3 import build_system3
from repro.designs.system4 import build_system4
from repro.designs.registry import core_builders, system_builders

__all__ = [
    "build_cpu",
    "build_preprocessor",
    "build_display",
    "build_ram",
    "build_rom",
    "build_gcd",
    "build_graphics",
    "build_x25",
    "build_system1",
    "build_system2",
    "build_system3",
    "build_system4",
    "core_builders",
    "system_builders",
]
