"""X.25 protocol core (System 2), after the conditional/loop-intensive
protocol benchmark of [11].

A frame-level receiver/transmitter: the receive shifter ``SHIFT``
captures the byte stream, ``HOLD`` buffers a validated frame byte for
retransmission, ``CRC`` accumulates a checksum, and the sequence
counter ``SEQ`` with the state register ``ST`` tracks the protocol
handshake.
"""

from __future__ import annotations

from repro.rtl import CircuitBuilder, OpKind, RTLCircuit, Slice
from repro.rtl.types import Concat


def build_x25() -> RTLCircuit:
    b = CircuitBuilder("X25")

    rx = b.input("RX", 8)
    frame = b.input("Frame", 1)
    reset = b.input("Reset", 1)

    shift = b.register("SHIFT", 8)
    hold = b.register("HOLD", 8)
    crc = b.register("CRC", 8)
    seq = b.register("SEQ", 4)
    st0 = b.register("ST0", 1)
    st1 = b.register("ST1", 1)

    b.drive(shift, rx)
    hold_mux = b.mux("HOLD_MUX", [shift, Slice("CRC", 0, 8)], select=frame)
    b.drive(hold, hold_mux)

    crc_next = b.op("CRCN", OpKind.XOR, [crc, shift])
    crc_mux = b.mux("CRC_MUX", [crc_next, shift], select=frame)
    b.drive(crc, crc_mux)

    seq_next = b.op("SEQN", OpKind.INC, [seq])
    seq_mux = b.mux("SEQ_MUX", [seq_next, Slice("SHIFT", 0, 4)], select=frame)
    b.drive(seq, seq_mux)

    good = b.op("GOOD", OpKind.EQ, [crc, shift])
    st0_mux = b.mux("ST0_MUX", [good, reset], select=reset)
    b.drive(st0, st0_mux)
    st1_mux = b.mux("ST1_MUX", [Slice("ST0", 0, 1), frame], select=reset)
    b.drive(st1, st1_mux)

    # the transmit bus shows the frame buffer only while the handshake
    # state allows it (functionally deepening chip-level observability;
    # the mux is an existing path transparency can steer)
    idle = b.const("IDLE", 8, 0)
    tx_mux = b.mux("TX_MUX", [idle, Slice("HOLD", 0, 8)], select=Slice("ST1", 0, 1))
    b.output("TX", tx_mux)
    b.output("SeqOut", Concat((Slice("SEQ", 0, 4), Slice("SHIFT", 4, 4))))
    b.output("Ack", Slice("ST1", 0, 1))
    return b.build()
