"""The barcode DISPLAY core (paper Figures 2, 8b).

Converts the CPU's binary-coded-decimal price into six seven-segment
display codes.  66 flip-flops / 20 internal input bits, matching the
paper's accounting for the FSCAN-BSCAN comparison:

* ``AD`` (12) latched address bus, ``DREG`` (8) latched data bus,
  ``BCD`` (4) digit register, ``P1``..``P6`` (7 each) port registers:
  12 + 8 + 4 + 42 = 66 flip-flops;
* inputs ``A`` (12) + ``D`` (8) = 20 internal input bits.

The register topology is arranged so the generic algorithms reproduce
Figure 8b's Version 1 latencies -- D->OUT = 2 (data latch straight into
ports P1/P2) and A->OUT = 3 (the low address nibble detours through the
BCD digit register, the high bits through the P2->P3 refresh chain) --
and the longest HSCAN chain is 4 deep (the paper's "sequential depth of
the longest HSCAN chain is 4", giving 105 x 5 = 525 HSCAN vectors).
"""

from __future__ import annotations

from repro.rtl import CircuitBuilder, OpKind, RTLCircuit, Slice
from repro.rtl.types import Concat, concat


def build_display() -> RTLCircuit:
    b = CircuitBuilder("DISPLAY")

    # ------------------------------------------------------------------ ports
    a = b.input("A", 12)
    d = b.input("D", 8)

    # ------------------------------------------------------------------ bus latches
    ad = b.register("AD", 12)
    dreg = b.register("DREG", 8)
    b.drive(ad, a)
    b.drive(dreg, d)

    # write decode (random logic exercising the address)
    port_sel = b.op("PORT_SEL", OpKind.DECODE, [Slice("AD", 8, 3)])
    write_en = b.op("WR_EN", OpKind.REDUCE_OR, [Slice("AD", 0, 4)])
    spare_sel = b.op("SPARE_SEL", OpKind.REDUCE_OR, [port_sel.sub(6, 2)])

    # BCD digit register: captured from the latched address low nibble
    bcd = b.register("BCD", 4)
    digit_next = b.op("DIGIT_NEXT", OpKind.INC, [Slice("BCD", 0, 4)])
    bcd_enable = b.op("BCD_EN", OpKind.NOT, [spare_sel])
    bcd_mux = b.mux("BCD_MUX", [Slice("AD", 0, 4), digit_next], select=write_en)
    b.drive(bcd, bcd_mux, enable=bcd_enable)

    # seven-segment decode of the BCD digit (random logic, 7 wide)
    seg_dec = b.op("SEG_DEC", OpKind.DECODE, [Slice("BCD", 0, 3)])
    seg = Slice("SEG_DEC", 0, 7)

    # ------------------------------------------------------------------ port registers
    port_index = [0]

    def port(name: str, refresh) -> Slice:
        reg = b.register(name, 7)
        mux = b.mux(f"{name}_MUX", [seg, refresh], select=Slice("BCD", 3, 1))
        # a port loads when its address is decoded or during refresh
        enable = b.op(
            f"{name}_EN", OpKind.OR, [port_sel.sub(port_index[0], 1), Slice("BCD", 3, 1)]
        )
        port_index[0] += 1
        b.drive(reg, mux, enable=enable)
        return reg

    # refresh/copy paths partition the latched buses without overlap:
    #   DREG[6:0] -> P1, DREG[7] + AD[9:4] -> P2, AD[11:10] + P2 -> P3,
    #   BCD + P1[2:0] -> P4, P4 -> P5, P3 -> P6
    p1 = port("P1", Slice("DREG", 0, 7))
    p2 = port("P2", Concat((Slice("DREG", 7, 1), Slice("AD", 4, 6))))
    p3 = port("P3", Concat((Slice("AD", 10, 2), Slice("P2", 0, 5))))
    p4 = port("P4", Concat((Slice("BCD", 0, 4), Slice("P1", 0, 3))))
    p5 = port("P5", Slice("P4", 0, 7))
    p6 = port("P6", Slice("P3", 0, 7))

    # ------------------------------------------------------------------ outputs
    for index, reg in enumerate([p1, p2, p3, p4, p5, p6], start=1):
        b.output(f"PORT{index}", reg)
    return b.build()
