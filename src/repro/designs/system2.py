"""System 2: graphics processor + GCD + X.25 protocol core.

The paper gives only the core list; the topology here chains them the
way the barcode system chains its cores -- the graphics processor's
pixel stream feeds the GCD unit (computing a step ratio), whose result
feeds the protocol core for transmission -- so that embedded cores must
again be tested through their neighbours' transparency.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.designs.gcd import build_gcd
from repro.designs.graphics import build_graphics
from repro.designs.x25 import build_x25
from repro.soc import Core, Soc


#: precomputed combinational vector counts (our ATPG, seed 0)
DEFAULT_VECTORS: Dict[str, int] = {
    "GRAPHICS": 27,
    "GCD": 43,
    "X25": 18,
}


def build_system2(test_vectors: Optional[Dict[str, int]] = None, atpg_seed: int = 0) -> Soc:
    vectors = dict(DEFAULT_VECTORS)
    vectors.update(test_vectors or {})

    soc = Soc("System2")
    graphics = Core.from_circuit(
        build_graphics(), test_vectors=vectors.get("GRAPHICS"), atpg_seed=atpg_seed
    )
    gcd = Core.from_circuit(build_gcd(), test_vectors=vectors.get("GCD"), atpg_seed=atpg_seed)
    x25 = Core.from_circuit(build_x25(), test_vectors=vectors.get("X25"), atpg_seed=atpg_seed)
    for core in (graphics, gcd, x25):
        soc.add_core(core)

    # only the protocol core's transmit interface reaches the chip pins:
    # everything else is deeply embedded (like the paper's systems, where
    # poor functional observability is the whole problem)
    soc.add_input("Cmd", 8)
    soc.add_input("Data", 8)
    soc.add_input("Go", 1)
    soc.add_input("Reset", 1)
    soc.add_output("TX", 8)
    soc.add_output("Ack", 1)

    # GRAPHICS <- pins
    soc.wire(None, "Cmd", "GRAPHICS", "Cmd")
    soc.wire(None, "Data", "GRAPHICS", "Data")
    soc.wire(None, "Go", "GRAPHICS", "Go")

    # GCD <- GRAPHICS
    soc.wire("GRAPHICS", "PX", "GCD", "Xin")
    soc.wire("GRAPHICS", "PY", "GCD", "Yin")
    soc.wire("GRAPHICS", "Valid", "GCD", "Start")

    # X25 <- GCD / pins
    soc.wire("GCD", "Result", "X25", "RX")
    soc.wire("GCD", "Done", "X25", "Frame")
    soc.wire(None, "Reset", "X25", "Reset")

    # chip outputs (X25.SeqOut and GRAPHICS.Pattern stay internal; the
    # planner must add system-level test muxes to observe them)
    soc.wire("X25", "TX", None, "TX")
    soc.wire("X25", "Ack", None, "Ack")

    return soc.validate()
