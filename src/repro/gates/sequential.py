"""Clocked (multi-cycle) simulation on top of the combinational evaluator."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.gates.cells import GateKind
from repro.gates.netlist import GateNetlist
from repro.gates.simulator import CombinationalSimulator, FaultSite, next_state_word


class SequentialSimulator:
    """Cycle-by-cycle simulation with word-parallel patterns.

    All flip-flops start at the given initial value (default 0 across all
    patterns; pass ``initial_states`` for something else).  Each call to
    :meth:`step` applies one input assignment, evaluates the combinational
    logic, records the primary outputs, and clocks the state.
    """

    def __init__(
        self,
        netlist: GateNetlist,
        pattern_count: int = 1,
        initial_states: Optional[Mapping[str, int]] = None,
        fault: Optional[FaultSite] = None,
        backend: Optional[str] = None,
    ) -> None:
        if pattern_count <= 0:
            raise SimulationError("pattern_count must be positive")
        self.netlist = netlist
        self.pattern_count = pattern_count
        self._mask = (1 << pattern_count) - 1
        self._sim = CombinationalSimulator(netlist, backend=backend)
        self._fault = fault
        self._flops = netlist.flops
        self.states: Dict[str, int] = {flop.name: 0 for flop in self._flops}
        if initial_states:
            for name, word in initial_states.items():
                if name not in self.states:
                    raise SimulationError(f"{name!r} is not a flip-flop")
                self.states[name] = word & self._mask

    def step(self, input_words: Mapping[str, int]) -> Dict[str, int]:
        """Apply one cycle; returns the packed primary-output values."""
        sources = dict(self.states)
        for gate in self.netlist.inputs:
            try:
                sources[gate.name] = input_words[gate.name] & self._mask
            except KeyError:
                raise SimulationError(f"no value for input {gate.name!r}") from None
        values = self._sim.run(sources, self.pattern_count, fault=self._fault)
        outputs = {gate.name: values[gate.name] for gate in self.netlist.outputs}
        for flop in self._flops:
            self.states[flop.name] = next_state_word(flop, values, self._mask)
            if self._fault is not None and self._fault.pin is None and self._fault.gate == flop.name:
                self.states[flop.name] = self._mask if self._fault.stuck_value else 0
        return outputs

    def run_sequence(self, input_sequence: Sequence[Mapping[str, int]]) -> List[Dict[str, int]]:
        """Apply a list of per-cycle input assignments; returns PO traces."""
        return [self.step(cycle_inputs) for cycle_inputs in input_sequence]
