"""Compiled numpy simulation kernels: levelized netlists as flat programs.

The scalar simulators walk the netlist gate by gate with Python-int
words -- perfectly general, but every gate evaluation is an interpreter
step.  This module lowers a levelized :class:`GateNetlist` once into a
*flat numpy program*: contiguous fanin index arrays grouped by (level,
gate kind), evaluated with vectorized ``uint64`` bitwise ops over
``W``-word value planes (64 patterns per word, so a W=8 plane carries
512 patterns per pass).  An optional leading *batch* dimension carries
hundreds of faulty machines through the same program in one sweep
(:mod:`repro.faults.kernel` builds the per-fault force plans).

Backend selection is environment-driven: ``REPRO_SIM_BACKEND`` picks
``scalar`` or ``numpy`` (the default).  When numpy is missing or broken
the kernel degrades to the scalar backend with a one-line warning and a
``sim.backend.fallbacks`` count -- never an import error.  The scalar
path remains the bit-identity oracle: both backends must produce the
same values, decisions, and ``faultsim.*``/``atpg.*`` counters (see
DESIGN.md, "Vectorized kernels").

Value-plane convention: row 0 is a reserved all-zeros word, row 1 a
reserved all-ones word (identity padding for variable-arity gates);
every gate owns one row from 2 up.  Bits beyond the pattern count are
*unspecified* -- producers never mask mid-program, consumers mask at
extraction -- which keeps every op a pure full-word bitwise instruction.
"""

from __future__ import annotations

import logging
import os
import weakref
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.gates.cells import SOURCE_KINDS, STATE_KINDS, GateKind
from repro.gates.levelize import depth_levels
from repro.gates.netlist import GateNetlist
from repro.obs import METRICS, profile_section

logger = logging.getLogger("repro.gates.kernel")

try:  # degrade, never crash: a broken numpy means "scalar backend"
    import numpy as _np
except Exception as _exc:  # pragma: no cover - exercised via _force_numpy_unavailable
    _np = None
    _NUMPY_ERROR: Optional[str] = f"{type(_exc).__name__}: {_exc}"
else:
    _NUMPY_ERROR = None

np = _np  # re-exported for the fault kernel (None when unavailable)

_COMPILES = METRICS.counter("kernel.compiles")
_CACHE_REUSES = METRICS.counter("kernel.cache.reuses")
_WORDS = METRICS.counter("kernel.words_evaluated")
_FALLBACKS = METRICS.counter("sim.backend.fallbacks")

#: environment variable selecting the simulation backend
BACKEND_ENV = "REPRO_SIM_BACKEND"
BACKENDS = ("scalar", "numpy")
DEFAULT_BACKEND = "numpy"

#: reserved value-plane rows (identity padding for variable-arity gates)
ZERO_ROW = 0
ONE_ROW = 1

ALL_ONES = 0xFFFFFFFFFFFFFFFF

_warned_fallback = False


def numpy_available() -> bool:
    """True when the numpy backend can run in this process."""
    return np is not None


def numpy_unavailable_reason() -> Optional[str]:
    return _NUMPY_ERROR


def resolve_backend(override: Optional[str] = None) -> str:
    """The backend a simulator should use right now.

    ``override`` wins over the ``REPRO_SIM_BACKEND`` environment
    variable, which wins over the default (``numpy``).  Requesting
    ``numpy`` without a working numpy degrades to ``scalar`` with a
    one-line warning (once per process) and a ``sim.backend.fallbacks``
    count; an unknown name is a :class:`SimulationError`.
    """
    choice = override or os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    choice = choice.strip().lower()
    if choice not in BACKENDS:
        raise SimulationError(
            f"unknown simulation backend {choice!r}: expected one of {BACKENDS}"
        )
    if choice == "numpy" and np is None:
        global _warned_fallback
        _FALLBACKS.inc()
        if not _warned_fallback:
            _warned_fallback = True
            logger.warning(
                "numpy unavailable (%s): falling back to the scalar simulation "
                "backend", _NUMPY_ERROR,
            )
        return "scalar"
    return choice


def word_count(pattern_count: int) -> int:
    """Words needed for ``pattern_count`` packed patterns (64 per word)."""
    if pattern_count <= 0:
        raise SimulationError("pattern_count must be positive")
    return (pattern_count + 63) // 64


def tail_masks(pattern_count: int):
    """Per-word valid-bit masks for ``pattern_count`` patterns, shape (W,)."""
    W = word_count(pattern_count)
    masks = [ALL_ONES] * W
    tail = pattern_count - (W - 1) * 64
    if tail < 64:
        masks[W - 1] = (1 << tail) - 1
    return np.array(masks, dtype=np.uint64)


def int_to_words(value: int, words: int):
    """Split a packed Python-int word into ``words`` uint64 limbs (LSB first)."""
    return np.array(
        [(value >> (64 * w)) & ALL_ONES for w in range(words)], dtype=np.uint64
    )


def words_to_int(limbs) -> int:
    """Rebuild a Python int from uint64 limbs (LSB first)."""
    value = 0
    for w in range(len(limbs) - 1, -1, -1):
        value = (value << 64) | int(limbs[w])
    return value


# ----------------------------------------------------------------------
# the compiled program
# ----------------------------------------------------------------------
class _OpGroup:
    """One (level, kind) group: contiguous outputs, padded fanin matrix."""

    __slots__ = ("kind", "out_rows", "fanin_rows")

    def __init__(self, kind: GateKind, out_rows, fanin_rows) -> None:
        self.kind = kind
        self.out_rows = out_rows
        self.fanin_rows = fanin_rows


#: identity row used to pad a variable-arity gate's fanin list
_PAD_ROW = {
    GateKind.AND: ONE_ROW,
    GateKind.NAND: ONE_ROW,
    GateKind.OR: ZERO_ROW,
    GateKind.NOR: ZERO_ROW,
}

#: deterministic evaluation order for kinds within one level
_KIND_ORDER = {kind: i for i, kind in enumerate(GateKind)}


def eval_group_ops(kind: GateKind, ops):
    """Evaluate one gate kind over gathered operands ``(..., A, W)``.

    Padding slots (identity rows) are already part of ``ops``; results
    carry unspecified bits beyond the pattern count, masked by callers
    at extraction.
    """
    if kind in (GateKind.BUF, GateKind.OUTPUT):
        return ops[..., 0, :]
    if kind is GateKind.NOT:
        return ~ops[..., 0, :]
    if kind is GateKind.AND:
        return np.bitwise_and.reduce(ops, axis=-2)
    if kind is GateKind.OR:
        return np.bitwise_or.reduce(ops, axis=-2)
    if kind is GateKind.NAND:
        return ~np.bitwise_and.reduce(ops, axis=-2)
    if kind is GateKind.NOR:
        return ~np.bitwise_or.reduce(ops, axis=-2)
    if kind is GateKind.XOR:
        return ops[..., 0, :] ^ ops[..., 1, :]
    if kind is GateKind.XNOR:
        return ~(ops[..., 0, :] ^ ops[..., 1, :])
    if kind is GateKind.MUX2:
        select = ops[..., 2, :]
        return (ops[..., 0, :] & ~select) | (ops[..., 1, :] & select)
    raise SimulationError(f"cannot compile gate kind {kind.value}")


class CompiledProgram:
    """A levelized :class:`GateNetlist` lowered to flat numpy arrays.

    Immutable once built; safe to share across simulators on the same
    netlist (mirroring the shared fanout-cone cache).  All structural
    queries the fault kernel needs -- rows, levels, source groups, flop
    state plumbing -- are precomputed here so a grading sweep touches
    only ndarray ops.
    """

    def __init__(self, netlist: GateNetlist) -> None:
        if np is None:  # pragma: no cover - callers check resolve_backend first
            raise SimulationError(
                f"numpy backend unavailable: {_NUMPY_ERROR}"
            )
        self.netlist = netlist
        names = list(netlist.names())
        #: gate name -> value-plane row (rows 0/1 are reserved)
        self.row: Dict[str, int] = {name: i + 2 for i, name in enumerate(names)}
        self.names: List[str] = names
        self.rows = len(names) + 2

        #: gate name -> level (sources 0, gates 1 + max fanin level);
        #: shared with the scalar-side attribution profiles so both
        #: backends bucket work identically
        level = dict(depth_levels(netlist))
        self.level: Dict[str, int] = level
        self.depth = max(level.values(), default=0)

        # ---- (level, kind) op groups with identity-padded fanins ----
        grouped: Dict[Tuple[int, GateKind], List[str]] = {}
        for name in names:
            gate = netlist.gate(name)
            if gate.kind in SOURCE_KINDS:
                continue
            grouped.setdefault((level[name], gate.kind), []).append(name)
        self.levels: List[List[_OpGroup]] = [[] for _ in range(self.depth + 1)]
        op_outputs = 0
        for (lvl, kind) in sorted(
            grouped, key=lambda key: (key[0], _KIND_ORDER[key[1]])
        ):
            members = grouped[(lvl, kind)]
            arity = max(len(netlist.gate(m).fanins) for m in members)
            pad = _PAD_ROW.get(kind)
            fanin_rows = np.full((len(members), arity), ZERO_ROW, dtype=np.intp)
            out_rows = np.empty(len(members), dtype=np.intp)
            for i, member in enumerate(members):
                gate = netlist.gate(member)
                out_rows[i] = self.row[member]
                for a in range(arity):
                    if a < len(gate.fanins):
                        fanin_rows[i, a] = self.row[gate.fanins[a]]
                    else:
                        if pad is None:
                            raise SimulationError(
                                f"gate {member!r} of kind {kind.value} has "
                                f"{len(gate.fanins)} fanins, group arity {arity}"
                            )
                        fanin_rows[i, a] = pad
            self.levels[lvl].append(_OpGroup(kind, out_rows, fanin_rows))
            op_outputs += len(members)
        #: gate outputs computed per full eval (feeds kernel.words_evaluated)
        self.op_outputs = op_outputs

        # ---- source groups ----
        def rows_of(kinds) -> "np.ndarray":
            return np.array(
                [self.row[g.name] for g in netlist.gates() if g.kind in kinds],
                dtype=np.intp,
            )

        self.input_rows = rows_of((GateKind.INPUT,))
        self.input_names = [g.name for g in netlist.inputs]
        self.const0_rows = rows_of((GateKind.CONST0,))
        self.const1_rows = rows_of((GateKind.CONST1,))
        #: simulation sources in the scalar simulators' iteration order
        self.source_names = [
            g.name
            for g in netlist.gates()
            if g.kind is GateKind.INPUT or g.kind in STATE_KINDS
        ]
        self.source_rows = np.array(
            [self.row[name] for name in self.source_names], dtype=np.intp
        )

        # ---- flop state plumbing (netlist.flops order) ----
        flops = netlist.flops
        self.flop_names = [flop.name for flop in flops]
        self.flop_rows = np.array(
            [self.row[f.name] for f in flops], dtype=np.intp
        )
        dff_pos = [i for i, f in enumerate(flops) if f.kind is GateKind.DFF]
        sdff_pos = [i for i, f in enumerate(flops) if f.kind is GateKind.SDFF]
        self.dff_pos = np.array(dff_pos, dtype=np.intp)
        self.dff_d_rows = np.array(
            [self.row[flops[i].fanins[0]] for i in dff_pos], dtype=np.intp
        )
        self.sdff_pos = np.array(sdff_pos, dtype=np.intp)
        self.sdff_d_rows = np.array(
            [self.row[flops[i].fanins[0]] for i in sdff_pos], dtype=np.intp
        )
        self.sdff_si_rows = np.array(
            [self.row[flops[i].fanins[1]] for i in sdff_pos], dtype=np.intp
        )
        self.sdff_se_rows = np.array(
            [self.row[flops[i].fanins[2]] for i in sdff_pos], dtype=np.intp
        )
        self.output_rows = np.array(
            [self.row[g.name] for g in netlist.outputs], dtype=np.intp
        )
        self.output_names = [g.name for g in netlist.outputs]

        #: per-fault lowering cache, populated by repro.faults.kernel --
        #: lives here so it shares the program's lifetime and cache policy
        self.plan_cache: Dict[object, object] = {}

    # ------------------------------------------------------------------
    def new_values(self, words: int, batch: Tuple[int, ...] = ()):
        """A fresh value plane ``(*batch, rows, words)`` with reserved and
        constant rows filled."""
        values = np.zeros(batch + (self.rows, words), dtype=np.uint64)
        values[..., ONE_ROW, :] = np.uint64(ALL_ONES)
        if len(self.const1_rows):
            values[..., self.const1_rows, :] = np.uint64(ALL_ONES)
        return values

    def eval(
        self,
        values,
        after_level: Optional[Callable[[int, object], None]] = None,
    ) -> None:
        """Run the flat program over ``values`` ``(..., rows, words)`` in place.

        ``after_level(level, values)`` -- when given -- is called once
        for level 0 *before* any op (source-row forcing) and once after
        each computed level (stem forcing / faulty-pin corrections must
        land before the next level reads the row).
        """
        batch = int(np.prod(values.shape[:-2], dtype=np.int64)) if values.ndim > 2 else 1
        _WORDS.inc(self.op_outputs * values.shape[-1] * batch)
        if after_level is not None:
            after_level(0, values)
        for lvl in range(1, self.depth + 1):
            for group in self.levels[lvl]:
                ops = values[..., group.fanin_rows, :]
                values[..., group.out_rows, :] = eval_group_ops(group.kind, ops)
            if after_level is not None:
                after_level(lvl, values)

    # ------------------------------------------------------------------
    def run_words(
        self,
        sources: Mapping[str, int],
        pattern_count: int,
        fault=None,
    ) -> Dict[str, int]:
        """Scalar-simulator-compatible full evaluation.

        Mirrors :meth:`CombinationalSimulator.run` exactly: same source
        lookup order and error, same optional single stuck-at fault
        (``fault`` duck-types :class:`FaultSite`), same masked Python-int
        word per gate in the returned dict.
        """
        W = word_count(pattern_count)
        mask = (1 << pattern_count) - 1
        values = self.new_values(W)
        for name in self.source_names:
            try:
                packed = sources[name] & mask
            except KeyError:
                raise SimulationError(
                    f"no value supplied for source {name!r}"
                ) from None
            values[self.row[name], :] = int_to_words(packed, W)

        hook = None
        if fault is not None and fault.gate in self.row:
            hook = self._single_fault_hook(fault)
        self.eval(values, after_level=hook)

        masks = tail_masks(pattern_count)
        masked = values & masks
        result: Dict[str, int] = {}
        for name, row in self.row.items():
            result[name] = words_to_int(masked[row])
        return result

    def _single_fault_hook(self, fault):
        """Per-level forcing for one stuck-at fault (good-machine path)."""
        gate = self.netlist.gate(fault.gate)
        row = self.row[fault.gate]
        lvl = self.level[fault.gate]
        stuck_word = np.uint64(ALL_ONES if fault.stuck_value else 0)

        if fault.pin is None:
            def hook(level: int, values) -> None:
                if level == lvl:
                    values[..., row, :] = stuck_word
            return hook

        # pin fault: only meaningful on evaluated (combinational) gates;
        # the scalar simulator ignores pin faults on source kinds.
        if gate.kind in SOURCE_KINDS:
            return None
        fanin_rows = np.array(
            [self.row[f] for f in gate.fanins], dtype=np.intp
        )
        pin = fault.pin

        def hook(level: int, values) -> None:
            if level != lvl:
                return
            ops = values[..., fanin_rows, :].copy()
            ops[..., pin, :] = stuck_word
            values[..., row, :] = eval_group_ops(gate.kind, ops)
        return hook


# ----------------------------------------------------------------------
# compiled-program cache (mirrors the shared fanout-cone cache)
# ----------------------------------------------------------------------
_PROGRAMS: "weakref.WeakKeyDictionary[GateNetlist, CompiledProgram]" = (
    weakref.WeakKeyDictionary()
)


def compiled_program(netlist: GateNetlist) -> CompiledProgram:
    """The netlist's compiled program, compiled once per process.

    Keyed weakly by the netlist object (like ``_SHARED_CONES``): every
    simulator, ATPG pass, and compaction run on the same netlist shares
    one program.  ``kernel.compiles`` / ``kernel.cache.reuses`` count
    cache behaviour; :func:`clear_kernel_caches` restores cold-state
    counting for the bench harness.
    """
    try:
        program = _PROGRAMS.get(netlist)
        cacheable = True
    except TypeError:  # unweakrefable netlist stand-in (tests)
        program = None
        cacheable = False
    if program is not None:
        _CACHE_REUSES.inc()
        return program
    with profile_section("kernel.compile", netlist=netlist.name, gates=len(netlist)):
        program = CompiledProgram(netlist)
    _COMPILES.inc()
    if cacheable:
        _PROGRAMS[netlist] = program
    return program


def clear_kernel_caches() -> None:
    """Drop every cached compiled program (cache-warmth reset, not semantic)."""
    _PROGRAMS.clear()
