"""Primitive cell kinds and the area model.

The paper reports area as "number of cells" after technology mapping with
a 0.8um library and an in-house synthesis tool.  We cannot reproduce that
mapper; instead we use a fixed generic library in which each primitive has
an area in *cell units* roughly proportional to its transistor count in a
standard-cell library (a D flip-flop is about five 2-input-NAND
equivalents, an XOR about two, a scan flip-flop a DFF plus a mux).
Relative overheads -- which is what the paper's comparisons rest on --
are therefore preserved even though absolute counts differ.
"""

from __future__ import annotations

import enum
from typing import Dict


class GateKind(enum.Enum):
    """Primitive gate/cell kinds of the gate-level netlist."""

    INPUT = "input"  # primary input (no fanin)
    OUTPUT = "output"  # primary output marker (one fanin, zero area)
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"  # 2+ fanins
    OR = "or"  # 2+ fanins
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"  # exactly 2 fanins
    XNOR = "xnor"
    MUX2 = "mux2"  # fanins (d0, d1, select)
    DFF = "dff"  # fanins (d,); state element
    SDFF = "sdff"  # scan flip-flop: fanins (d, scan_in, scan_enable)


#: State-element kinds (flip-flops) -- break combinational cycles.
STATE_KINDS = (GateKind.DFF, GateKind.SDFF)

#: Kinds whose value is a *source* to combinational evaluation: primary
#: inputs, constants, and flip-flop outputs (pseudo-primary inputs in
#: the combinational view).  Shared by the levelizer, both simulators,
#: and the compiled numpy kernels -- one definition, one ordering.
SOURCE_KINDS = (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1) + STATE_KINDS

#: Area in cell units for each kind (multi-input gates add per extra pin).
CELL_AREA: Dict[GateKind, int] = {
    GateKind.INPUT: 0,
    GateKind.OUTPUT: 0,
    GateKind.CONST0: 0,
    GateKind.CONST1: 0,
    GateKind.BUF: 1,
    GateKind.NOT: 1,
    GateKind.AND: 1,
    GateKind.OR: 1,
    GateKind.NAND: 1,
    GateKind.NOR: 1,
    GateKind.XOR: 2,
    GateKind.XNOR: 2,
    GateKind.MUX2: 2,
    GateKind.DFF: 5,
    GateKind.SDFF: 7,
}

#: Extra area per fanin beyond the second for the simple n-input gates.
EXTRA_PIN_AREA = 1

_WIDE_GATES = {GateKind.AND, GateKind.OR, GateKind.NAND, GateKind.NOR}


def gate_area(kind: GateKind, fanin_count: int) -> int:
    """Area in cell units of one gate instance."""
    base = CELL_AREA[kind]
    if kind in _WIDE_GATES and fanin_count > 2:
        # A wide gate is mapped as a tree of 2-input cells.
        return base + (fanin_count - 2) * EXTRA_PIN_AREA
    return base


#: Area of one boundary-scan cell (capture FF + update latch + output mux).
BSCAN_CELL_AREA = 8
