"""Flat gate-level netlist.

A :class:`GateNetlist` is a dict of named single-output gates; a gate's
fanins are names of other gates.  State elements (``DFF``/``SDFF``) break
combinational cycles.  The *combinational view* used by scan-based ATPG
treats flip-flop outputs as pseudo-primary inputs and flip-flop D pins as
pseudo-primary outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import NetlistError
from repro.gates.cells import SOURCE_KINDS, STATE_KINDS, GateKind, gate_area


@dataclass
class Gate:
    """A single-output gate instance."""

    name: str
    kind: GateKind
    fanins: Tuple[str, ...] = ()

    def area(self) -> int:
        return gate_area(self.kind, len(self.fanins))


class GateNetlist:
    """A named, flat collection of gates.

    Primary outputs are explicit ``OUTPUT`` marker gates (zero area, one
    fanin); primary inputs are ``INPUT`` gates with no fanin.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._fanout_cache: Optional[Dict[str, List[str]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(self, name: str, kind: GateKind, fanins: Iterable[str] = ()) -> str:
        if name in self._gates:
            raise NetlistError(f"duplicate gate name {name!r} in netlist {self.name!r}")
        fanin_tuple = tuple(fanins)
        _check_arity(name, kind, len(fanin_tuple))
        self._gates[name] = Gate(name, kind, fanin_tuple)
        self._fanout_cache = None
        return name

    def replace_gate(self, name: str, kind: GateKind, fanins: Iterable[str]) -> None:
        """Overwrite an existing gate (used by DFT insertion)."""
        if name not in self._gates:
            raise NetlistError(f"cannot replace unknown gate {name!r}")
        fanin_tuple = tuple(fanins)
        _check_arity(name, kind, len(fanin_tuple))
        self._gates[name] = Gate(name, kind, fanin_tuple)
        self._fanout_cache = None

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r} in netlist {self.name!r}") from None

    def gates(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def names(self) -> Iterator[str]:
        return iter(self._gates.keys())

    def of_kind(self, *kinds: GateKind) -> List[Gate]:
        wanted = set(kinds)
        return [g for g in self._gates.values() if g.kind in wanted]

    @property
    def inputs(self) -> List[Gate]:
        return self.of_kind(GateKind.INPUT)

    @property
    def outputs(self) -> List[Gate]:
        return self.of_kind(GateKind.OUTPUT)

    @property
    def flops(self) -> List[Gate]:
        return self.of_kind(*STATE_KINDS)

    def fanout_map(self) -> Dict[str, List[str]]:
        """Gate name -> names of gates that read it (cached)."""
        if self._fanout_cache is None:
            fanout: Dict[str, List[str]] = {name: [] for name in self._gates}
            for gate in self._gates.values():
                for source in gate.fanins:
                    fanout[source].append(gate.name)
            self._fanout_cache = fanout
        return self._fanout_cache

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def area(self) -> int:
        """Total area in cell units."""
        return sum(gate.area() for gate in self._gates.values())

    def flop_count(self) -> int:
        return len(self.flops)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> "GateNetlist":
        for gate in self._gates.values():
            for source in gate.fanins:
                if source not in self._gates:
                    raise NetlistError(f"gate {gate.name!r} reads unknown net {source!r}")
                if self._gates[source].kind is GateKind.OUTPUT:
                    raise NetlistError(f"gate {gate.name!r} reads OUTPUT marker {source!r}")
        # combinational cycle check: DFS skipping state/source gates
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._gates}
        for start, gate in self._gates.items():
            if gate.kind in SOURCE_KINDS or color[start] != WHITE:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [(start, iter(gate.fanins))]
            color[start] = GREY
            while stack:
                node, iterator = stack[-1]
                advanced = False
                for source in iterator:
                    if self._gates[source].kind in SOURCE_KINDS:
                        continue
                    if color[source] == GREY:
                        raise NetlistError(f"combinational cycle through {source!r}")
                    if color[source] == WHITE:
                        color[source] = GREY
                        stack.append((source, iter(self._gates[source].fanins)))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return self

    # ------------------------------------------------------------------
    def copy(self, new_name: Optional[str] = None) -> "GateNetlist":
        clone = GateNetlist(new_name or self.name)
        clone._gates = {name: Gate(g.name, g.kind, g.fanins) for name, g in self._gates.items()}
        return clone


def _check_arity(name: str, kind: GateKind, count: int) -> None:
    if kind is GateKind.INPUT or kind in (GateKind.CONST0, GateKind.CONST1):
        expected = count == 0
    elif kind in (GateKind.OUTPUT, GateKind.BUF, GateKind.NOT, GateKind.DFF):
        expected = count == 1
    elif kind in (GateKind.XOR, GateKind.XNOR):
        expected = count == 2
    elif kind is GateKind.MUX2:
        expected = count == 3
    elif kind is GateKind.SDFF:
        expected = count == 3
    else:  # AND / OR / NAND / NOR
        expected = count >= 2
    if not expected:
        raise NetlistError(f"gate {name!r} of kind {kind.value} has invalid fanin count {count}")
