"""Topological levelization of the combinational part of a gate netlist."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import NetlistError
from repro.gates.cells import SOURCE_KINDS
from repro.gates.netlist import GateNetlist


def levelize(netlist: GateNetlist) -> List[str]:
    """Return gate names in evaluation order.

    Sources (inputs, constants, flip-flop outputs) come first, then every
    combinational gate after all of its fanins.  Raises
    :class:`NetlistError` on a combinational cycle.
    """
    order: List[str] = []
    pending: Dict[str, int] = {}
    ready: List[str] = []

    for gate in netlist.gates():
        if gate.kind in SOURCE_KINDS:
            order.append(gate.name)
        else:
            # State elements do not gate their D-pin evaluation order.
            pending[gate.name] = sum(
                1 for source in gate.fanins if netlist.gate(source).kind not in SOURCE_KINDS
            )
            if pending[gate.name] == 0:
                ready.append(gate.name)

    fanout = netlist.fanout_map()
    resolved = 0
    while ready:
        name = ready.pop()
        order.append(name)
        resolved += 1
        for reader in fanout[name]:
            if reader in pending:
                pending[reader] -= 1
                if pending[reader] == 0:
                    ready.append(reader)
                    del pending[reader]

    unresolved = [name for name, count in pending.items() if count > 0]
    if unresolved:
        raise NetlistError(
            f"combinational cycle involving {sorted(unresolved)[:5]} in {netlist.name!r}"
        )
    return order
