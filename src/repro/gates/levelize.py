"""Topological levelization of the combinational part of a gate netlist."""

from __future__ import annotations

from typing import Dict, List
from weakref import WeakKeyDictionary

from repro.errors import NetlistError
from repro.gates.cells import SOURCE_KINDS
from repro.gates.netlist import GateNetlist

_DEPTH_CACHE: "WeakKeyDictionary[GateNetlist, Dict[str, int]]" = WeakKeyDictionary()


def levelize(netlist: GateNetlist) -> List[str]:
    """Return gate names in evaluation order.

    Sources (inputs, constants, flip-flop outputs) come first, then every
    combinational gate after all of its fanins.  Raises
    :class:`NetlistError` on a combinational cycle.
    """
    order: List[str] = []
    pending: Dict[str, int] = {}
    ready: List[str] = []

    for gate in netlist.gates():
        if gate.kind in SOURCE_KINDS:
            order.append(gate.name)
        else:
            # State elements do not gate their D-pin evaluation order.
            pending[gate.name] = sum(
                1 for source in gate.fanins if netlist.gate(source).kind not in SOURCE_KINDS
            )
            if pending[gate.name] == 0:
                ready.append(gate.name)

    fanout = netlist.fanout_map()
    resolved = 0
    while ready:
        name = ready.pop()
        order.append(name)
        resolved += 1
        for reader in fanout[name]:
            if reader in pending:
                pending[reader] -= 1
                if pending[reader] == 0:
                    ready.append(reader)
                    del pending[reader]

    unresolved = [name for name, count in pending.items() if count > 0]
    if unresolved:
        raise NetlistError(
            f"combinational cycle involving {sorted(unresolved)[:5]} in {netlist.name!r}"
        )
    return order


def depth_levels(netlist: GateNetlist) -> Dict[str, int]:
    """Logic depth of every gate: sources are level 0, a combinational
    gate is one past its deepest non-source fanin.

    This is the level definition the compiled kernels group their ops
    by, shared here so scalar-side consumers (effort attribution, the
    PODEM ledger) bucket identically without importing numpy.  Cached
    per netlist; treat the result as read-only.
    """
    cached = _DEPTH_CACHE.get(netlist)
    if cached is not None:
        return cached
    levels: Dict[str, int] = {}
    for name in levelize(netlist):
        gate = netlist.gate(name)
        if gate.kind in SOURCE_KINDS:
            levels[name] = 0
        else:
            levels[name] = 1 + max(
                (
                    levels[source]
                    for source in gate.fanins
                    if netlist.gate(source).kind not in SOURCE_KINDS
                ),
                default=0,
            )
    _DEPTH_CACHE[netlist] = levels
    return levels
