"""Gate-level substrate: cells, netlists, levelization, logic simulation.

Everything downstream of RTL elaboration -- ATPG, fault simulation, and
area accounting -- operates on the :class:`~repro.gates.netlist.GateNetlist`
defined here.  The simulator packs many test patterns into Python integers
(one word per net) for word-parallel evaluation.
"""

from repro.gates.cells import CELL_AREA, GateKind
from repro.gates.netlist import Gate, GateNetlist
from repro.gates.levelize import levelize
from repro.gates.simulator import CombinationalSimulator
from repro.gates.sequential import SequentialSimulator

__all__ = [
    "CELL_AREA",
    "GateKind",
    "Gate",
    "GateNetlist",
    "levelize",
    "CombinationalSimulator",
    "SequentialSimulator",
]
