"""Word-parallel logic simulation.

Each net carries a Python integer *word*; bit ``p`` of the word is the
net's value under test pattern ``p``.  Because Python integers are
arbitrary precision, any number of patterns can be evaluated in a single
pass -- the fault simulator typically packs 64 at a time so that fault
dropping stays responsive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.gates.cells import SOURCE_KINDS, GateKind
from repro.gates.kernel import compiled_program, resolve_backend
from repro.gates.levelize import levelize
from repro.gates.netlist import Gate, GateNetlist


@dataclass(frozen=True)
class FaultSite:
    """A stuck-at fault injection point for simulation.

    ``gate`` names the faulty gate; ``pin`` is ``None`` for an output
    (stem) fault or the fanin index for an input (branch) fault;
    ``stuck_value`` is 0 or 1.
    """

    gate: str
    pin: Optional[int]
    stuck_value: int


class CombinationalSimulator:
    """Levelized word-parallel evaluator for the combinational view.

    ``backend`` pins this simulator to ``"scalar"`` or ``"numpy"``;
    ``None`` defers to ``REPRO_SIM_BACKEND`` (resolved per call).  Both
    backends return bit-identical value dicts -- the scalar path is the
    oracle the compiled numpy kernels are checked against.
    """

    def __init__(self, netlist: GateNetlist, backend: Optional[str] = None) -> None:
        self.netlist = netlist
        self._backend = backend
        self._order: List[str] = [
            name for name in levelize(netlist) if netlist.gate(name).kind not in SOURCE_KINDS
        ]
        self._gates: Dict[str, Gate] = {name: netlist.gate(name) for name in netlist.names()}

    @property
    def order(self) -> Sequence[str]:
        """Combinational gates in evaluation order."""
        return self._order

    # ------------------------------------------------------------------
    def run(
        self,
        sources: Mapping[str, int],
        pattern_count: int,
        fault: Optional[FaultSite] = None,
    ) -> Dict[str, int]:
        """Evaluate all nets for up to ``pattern_count`` packed patterns.

        ``sources`` maps every INPUT and flip-flop gate name to its packed
        value word.  Returns a dict with a word for every gate.
        """
        if resolve_backend(self._backend) == "numpy":
            return compiled_program(self.netlist).run_words(sources, pattern_count, fault)
        if pattern_count <= 0:
            raise SimulationError("pattern_count must be positive")
        mask = (1 << pattern_count) - 1
        values: Dict[str, int] = {}
        for gate in self._gates.values():
            if gate.kind is GateKind.INPUT or gate.kind in (GateKind.DFF, GateKind.SDFF):
                try:
                    values[gate.name] = sources[gate.name] & mask
                except KeyError:
                    raise SimulationError(f"no value supplied for source {gate.name!r}") from None
            elif gate.kind is GateKind.CONST0:
                values[gate.name] = 0
            elif gate.kind is GateKind.CONST1:
                values[gate.name] = mask

        if fault is not None and fault.pin is None:
            if fault.gate in values:
                values[fault.gate] = mask if fault.stuck_value else 0

        stuck_output = fault.gate if fault is not None and fault.pin is None else None
        for name in self._order:
            gate = self._gates[name]
            if name == stuck_output:
                values[name] = mask if fault.stuck_value else 0  # type: ignore[union-attr]
            else:
                values[name] = self._eval_gate(gate, values, mask, fault)
        return values

    # ------------------------------------------------------------------
    def _eval_gate(
        self,
        gate: Gate,
        values: Mapping[str, int],
        mask: int,
        fault: Optional[FaultSite],
    ) -> int:
        operands = [values[source] for source in gate.fanins]
        if fault is not None and fault.pin is not None and fault.gate == gate.name:
            operands[fault.pin] = mask if fault.stuck_value else 0
        return eval_kind(gate.kind, operands, mask)


def eval_kind(kind: GateKind, operands: Sequence[int], mask: int) -> int:
    """Evaluate one gate of ``kind`` over packed operand words."""
    if kind in (GateKind.BUF, GateKind.OUTPUT):
        return operands[0]
    if kind is GateKind.NOT:
        return ~operands[0] & mask
    if kind is GateKind.AND:
        result = mask
        for word in operands:
            result &= word
        return result
    if kind is GateKind.OR:
        result = 0
        for word in operands:
            result |= word
        return result
    if kind is GateKind.NAND:
        result = mask
        for word in operands:
            result &= word
        return ~result & mask
    if kind is GateKind.NOR:
        result = 0
        for word in operands:
            result |= word
        return ~result & mask
    if kind is GateKind.XOR:
        return operands[0] ^ operands[1]
    if kind is GateKind.XNOR:
        return ~(operands[0] ^ operands[1]) & mask
    if kind is GateKind.MUX2:
        d0, d1, select = operands
        return (d0 & ~select) | (d1 & select)
    raise SimulationError(f"cannot evaluate gate kind {kind.value}")


def next_state_word(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    """The value a flip-flop captures at the next clock edge."""
    if gate.kind is GateKind.DFF:
        return values[gate.fanins[0]] & mask
    if gate.kind is GateKind.SDFF:
        d, scan_in, scan_enable = (values[f] for f in gate.fanins)
        return ((d & ~scan_enable) | (scan_in & scan_enable)) & mask
    raise SimulationError(f"{gate.name!r} is not a state element")
