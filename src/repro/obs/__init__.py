"""Observability for the SOCET pipeline: tracing, metrics, profiling.

Zero-dependency subsystem with three cooperating parts:

* :mod:`repro.obs.tracer` -- a span tracer (Chrome ``trace_event`` JSON
  + JSONL export) that is a shared no-op until enabled;
* :mod:`repro.obs.metrics` -- an always-on registry of counters, gauges,
  and percentile histograms the hot paths feed through cached
  instruments (PODEM backtracks, fault-sim events, BFS expansions,
  scheduler reservation waits, optimizer moves, ...);
* :mod:`repro.obs.profiler` -- :func:`profile_section`, which feeds a
  ``<name>.time`` histogram (and a span when tracing) and powers the
  per-stage breakdown of ``repro profile``.

Typical instrumentation, cached at module scope::

    from repro.obs import METRICS, profile_section
    _WAITS = METRICS.counter("schedule.reservation.waits")

    def place(...):
        with profile_section("schedule.pack"):
            ...
            _WAITS.inc()

See DESIGN.md ("Observability") for the instrument naming contract.
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.obs.attrib import (
    ATTRIB,
    AttribCollector,
    artifact_json,
    build_artifact,
    resolve_attrib_mode,
    validate_artifact,
)
from repro.obs.ledger import (
    RunLedger,
    environment_fingerprint,
    make_record,
    pooled_samples,
)
from repro.obs.expo import parse_exposition, render_exposition
from repro.obs.metrics import (
    Counter,
    DEFAULT_REGISTRY,
    EMPTY_SUMMARY,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import (
    PIPELINE_STAGES,
    Timer,
    profile_section,
    stage_rows,
)
from repro.obs.regress import (
    GatePolicy,
    HistogramComparison,
    RegressionReport,
    compare_ledgers,
    compare_records,
)
from repro.obs.report import RunReport, build_run_report
from repro.obs.tracer import (
    DEFAULT_TRACER,
    NOOP_SPAN,
    Span,
    Tracer,
    new_span_id,
    span_tree_problems,
)

#: process-wide singletons every instrumented module shares
METRICS = DEFAULT_REGISTRY
TRACER = DEFAULT_TRACER

__all__ = [
    "ATTRIB",
    "AttribCollector",
    "artifact_json",
    "build_artifact",
    "resolve_attrib_mode",
    "validate_artifact",
    "Counter",
    "Gauge",
    "Histogram",
    "EMPTY_SUMMARY",
    "MetricsRegistry",
    "METRICS",
    "Span",
    "Tracer",
    "TRACER",
    "NOOP_SPAN",
    "new_span_id",
    "span_tree_problems",
    "render_exposition",
    "parse_exposition",
    "Timer",
    "PIPELINE_STAGES",
    "profile_section",
    "stage_rows",
    "RunLedger",
    "make_record",
    "environment_fingerprint",
    "pooled_samples",
    "GatePolicy",
    "HistogramComparison",
    "RegressionReport",
    "compare_ledgers",
    "compare_records",
    "RunReport",
    "build_run_report",
    "span",
    "enable_tracing",
    "disable_tracing",
    "configure_logging",
]


def span(name: str, **args):
    """Shorthand for ``TRACER.span`` (no-op while tracing is disabled)."""
    return TRACER.span(name, **args)


def enable_tracing(clear: bool = True) -> Tracer:
    if clear:
        TRACER.clear()
    TRACER.enable()
    return TRACER


def disable_tracing() -> Tracer:
    TRACER.disable()
    return TRACER


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree from a ``-v`` count.

    0 leaves the library silent (WARNING), 1 enables INFO, 2+ DEBUG.
    Handlers are installed once on the ``repro`` root logger so repeated
    CLI invocations in one process do not duplicate output lines.
    """
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter("%(levelname).1s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
        logger.propagate = False
    return logger
