"""Append-only JSONL run ledger: the pipeline's performance history.

Every measured run -- a benchmark round set or a ``repro profile``
execution -- appends one JSON object (one line) to a ledger file, so
the performance trajectory is a queryable series instead of a single
overwritten ``BENCH_*.json`` point.  Records are self-describing and
versioned::

    {
      "schema": "repro-ledger",
      "schema_version": 3,
      "bench": "schedule",              # series key (bench or profile name)
      "kind": "bench",                  # "bench" | "profile" | "serve"
      "timestamp": "2026-08-06T12:00:00Z",
      "git_sha": "b9c0110...",          # null outside a git checkout
      "samples": [0.0041, 0.0043],      # per-round raw wall times (seconds)
      "counters": {"atpg.podem.backtracks": 7010, ...},  # zeros included
      "env": {"python": "3.12.1", "platform": "linux",
              "cpus": 8, "repro_jobs": null},
      "histograms": {"serve.queue_wait": {"count": 12, "sum": 0.8,
                     "p50": 0.05, ...}, ...},  # optional (v3), summaries
      "results": {...}                  # optional free-form payload
    }

Counters record *every* touched instrument (including zero values):
the regression gate in :mod:`repro.obs.regress` needs "counter is
zero" and "counter never existed" to be distinguishable facts.

Appends are atomic: each record is serialized to one line and written
with a single ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
writers (parallel bench shards, CI matrix jobs sharing a volume)
interleave whole records, never partial lines.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import LedgerSchemaError
from repro.obs.metrics import DEFAULT_REGISTRY, MetricsRegistry

# module scope so the instrument exists (as zero) in any snapshot taken
# after this module is imported -- lazy creation would make the counter
# universe depend on whether an append already happened in the process
_APPENDS = DEFAULT_REGISTRY.counter("ledger.appends")

LEDGER_SCHEMA = "repro-ledger"
#: version history: 1 -- initial (kinds "bench"/"profile");
#: 2 -- adds kind "serve" (a planning-daemon session: ``samples`` are
#: per-job wall seconds, ``results`` the job summaries and tenants);
#: 3 -- adds the optional ``histograms`` field ({name: summary dict},
#: the well-defined empty-summary shape included) feeding the
#: histogram-percentile SLO gate in :mod:`repro.obs.regress`;
#: 4 -- adds kind "explain" and the optional ``attrib`` field (a full
#: ``repro-attrib`` search-effort artifact, validated against
#: :mod:`repro.obs.attrib` on append)
LEDGER_SCHEMA_VERSION = 4

#: record kinds the schema admits
RECORD_KINDS = ("bench", "profile", "serve", "explain")

_REQUIRED_FIELDS = {
    "schema": str,
    "schema_version": int,
    "bench": str,
    "kind": str,
    "timestamp": str,
    "samples": list,
    "counters": dict,
    "env": dict,
}

_ENV_FIELDS = ("python", "platform", "cpus", "repro_jobs")


# ----------------------------------------------------------------------
# record construction
# ----------------------------------------------------------------------
def environment_fingerprint() -> Dict:
    """The run environment facts a comparison must hold constant.

    Python version and CPU count move the wall-time distribution;
    ``REPRO_JOBS`` moves which execution path ran.  The regression gate
    downgrades the wall-time comparison to advisory when fingerprints
    differ (cross-machine baselines) while keeping the counter gate
    exact -- counters are pure functions of the seed and job plan.
    """
    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpus": os.cpu_count() or 1,
        "repro_jobs": os.environ.get("REPRO_JOBS"),
    }


def current_git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The checkout's HEAD SHA, or ``None`` outside a usable git repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def utc_timestamp(epoch_s: Optional[float] = None) -> str:
    """ISO-8601 UTC timestamp (``2026-08-06T12:00:00Z``)."""
    if epoch_s is None:
        epoch_s = time.time()
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(epoch_s))


def make_record(
    bench: str,
    samples: Sequence[float],
    counters: Optional[Dict] = None,
    registry: Optional[MetricsRegistry] = None,
    results=None,
    kind: str = "bench",
    env: Optional[Dict] = None,
    git_sha: Optional[str] = "auto",
    timestamp: Optional[str] = None,
    histograms: Optional[Dict] = None,
    attrib: Optional[Dict] = None,
) -> Dict:
    """Build a schema-valid ledger record.

    ``counters`` defaults to every counter in ``registry`` (the shared
    registry when neither is given), zeros included.  ``git_sha="auto"``
    resolves HEAD; pass ``None`` to record an unversioned run.
    ``histograms`` (optional, schema v3) carries summary dicts keyed by
    instrument name -- :meth:`MetricsRegistry.histograms` output -- for
    the percentile SLO gate; omitted entirely when not given.
    ``attrib`` (optional, schema v4) embeds a ``repro-attrib``
    search-effort artifact, schema-checked on its own terms.
    """
    if counters is None:
        registry = registry if registry is not None else DEFAULT_REGISTRY
        counters = dict(registry.counters())
    record = {
        "schema": LEDGER_SCHEMA,
        "schema_version": LEDGER_SCHEMA_VERSION,
        "bench": bench,
        "kind": kind,
        "timestamp": timestamp if timestamp is not None else utc_timestamp(),
        "git_sha": current_git_sha() if git_sha == "auto" else git_sha,
        "samples": [float(value) for value in samples],
        "counters": dict(counters),
        "env": dict(env) if env is not None else environment_fingerprint(),
    }
    if results is not None:
        record["results"] = results
    if histograms is not None:
        record["histograms"] = {
            name: dict(summary) for name, summary in histograms.items()
        }
    if attrib is not None:
        record["attrib"] = dict(attrib)
    validate_record(record)
    return record


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def validate_record(record: Dict) -> None:
    """Raise :class:`LedgerSchemaError` listing every schema violation."""
    if not isinstance(record, dict):
        raise LedgerSchemaError(
            f"ledger record must be an object, got {type(record).__name__}"
        )
    problems: List[str] = []
    for field, kinds in _REQUIRED_FIELDS.items():
        if field not in record:
            problems.append(f"missing field {field!r}")
        elif not isinstance(record[field], kinds):
            problems.append(f"field {field!r} has type {type(record[field]).__name__}")
    if not problems:
        if record["schema"] != LEDGER_SCHEMA:
            problems.append(
                f"schema is {record['schema']!r}, expected {LEDGER_SCHEMA!r}"
            )
        if record["schema_version"] > LEDGER_SCHEMA_VERSION:
            problems.append(
                f"schema_version {record['schema_version']} is newer than "
                f"{LEDGER_SCHEMA_VERSION}"
            )
        if not record["bench"]:
            problems.append("bench name is empty")
        if record["kind"] not in RECORD_KINDS:
            problems.append(f"kind {record['kind']!r} not in {RECORD_KINDS}")
        if "git_sha" not in record:
            problems.append("missing field 'git_sha' (null is fine)")
        elif not isinstance(record["git_sha"], (str, type(None))):
            problems.append("field 'git_sha' must be a string or null")
        if not record["samples"]:
            problems.append("samples list is empty")
        for index, value in enumerate(record["samples"]):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"sample {index} is not a number")
            elif value < 0:
                problems.append(f"sample {index} is negative")
        for key, value in record["counters"].items():
            if not isinstance(key, str) or not isinstance(value, (int, float)):
                problems.append(f"counter {key!r} is not a string->number entry")
        for field in _ENV_FIELDS:
            if field not in record["env"]:
                problems.append(f"env misses {field!r}")
        if "histograms" in record:
            problems.extend(_histogram_problems(record["histograms"]))
        if "attrib" in record:
            problems.extend(_attrib_problems(record["attrib"]))
    if problems:
        raise LedgerSchemaError("; ".join(problems))


def _histogram_problems(histograms) -> List[str]:
    """Schema checks for the optional v3 ``histograms`` field.

    Each entry is a summary dict; ``count``/``sum`` are required and
    numeric, order statistics may be ``None`` (the empty-histogram
    shape) but never anything non-numeric.
    """
    if not isinstance(histograms, dict):
        return ["field 'histograms' must be an object"]
    problems: List[str] = []
    for name, summary in histograms.items():
        if not isinstance(name, str) or not isinstance(summary, dict):
            problems.append(f"histogram {name!r} is not a string->object entry")
            continue
        for field in ("count", "sum"):
            value = summary.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"histogram {name!r} misses numeric {field!r}")
        for field, value in summary.items():
            if field in ("count", "sum"):
                continue
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                problems.append(
                    f"histogram {name!r} stat {field!r} is neither a number nor null"
                )
    return problems


def _attrib_problems(attrib) -> List[str]:
    """Schema checks for the optional v4 ``attrib`` field.

    The embedded artifact is checked by its own schema validator, so a
    ledger cannot carry an attribution payload the standalone
    ``python -m repro.obs.attrib`` checker would reject.
    """
    from repro.obs.attrib import validate_artifact

    return [f"attrib: {problem}" for problem in validate_artifact(attrib)]


def validate_ledger_file(path: str) -> int:
    """Validate every line of a JSONL ledger; returns the record count."""
    count = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise LedgerSchemaError(f"line {lineno}: not JSON ({error})")
            try:
                validate_record(record)
            except LedgerSchemaError as error:
                raise LedgerSchemaError(f"line {lineno}: {error}")
            count += 1
    return count


# ----------------------------------------------------------------------
# the ledger
# ----------------------------------------------------------------------
class RunLedger:
    """One JSONL ledger file: append records, read series back.

    Reading tolerates nothing: a malformed line raises
    :class:`LedgerSchemaError` with its line number, because a ledger
    that silently skips records cannot be trusted as a baseline.
    """

    def __init__(self, path) -> None:
        self.path = str(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLedger({self.path!r})"

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # ------------------------------------------------------------------
    def append(self, record: Dict) -> Dict:
        """Validate and atomically append one record (one line)."""
        validate_record(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        _APPENDS.inc()
        return record

    def append_from_registry(
        self,
        bench: str,
        samples: Sequence[float],
        registry: Optional[MetricsRegistry] = None,
        **kwargs,
    ) -> Dict:
        """Shorthand: build a record from a registry snapshot and append."""
        return self.append(
            make_record(bench, samples, registry=registry, **kwargs)
        )

    # ------------------------------------------------------------------
    def records(self, bench: Optional[str] = None) -> List[Dict]:
        """Every record (oldest first), optionally for one series."""
        if not self.exists():
            return []
        loaded: List[Dict] = []
        with open(self.path) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    validate_record(record)
                except (ValueError, LedgerSchemaError) as error:
                    raise LedgerSchemaError(f"{self.path}:{lineno}: {error}")
                if bench is None or record["bench"] == bench:
                    loaded.append(record)
        return loaded

    def benches(self) -> List[str]:
        """The distinct series keys, sorted."""
        return sorted({record["bench"] for record in self.records()})

    def latest(self, bench: str) -> Optional[Dict]:
        """The newest record of one series (file order, not timestamps)."""
        series = self.records(bench)
        return series[-1] if series else None

    def window(self, bench: str, size: int, before: Optional[int] = None) -> List[Dict]:
        """The last ``size`` records of a series (optionally ending at
        index ``before``, exclusive) -- the regression baseline window."""
        series = self.records(bench)
        if before is not None:
            series = series[:before]
        if size <= 0:
            return series
        return series[-size:]


def pooled_samples(records: Iterable[Dict]) -> List[float]:
    """Every raw wall-time sample across records, in record order."""
    samples: List[float] = []
    for record in records:
        samples.extend(float(value) for value in record["samples"])
    return samples
