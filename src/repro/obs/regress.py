"""Statistical regression gates over the run ledger.

Compares a fresh run (the newest ledger record of each series) against
a baseline window of earlier records and answers one question per
series: *did this get slower, or did the work itself change?*  Two
independent gates:

* **Wall-time gate** -- a one-sided Mann-Whitney rank test of the
  candidate's raw per-round samples against the pooled baseline
  samples, cross-checked by a seeded-bootstrap confidence interval on
  the median ratio.  A regression needs *both* a practically large
  ratio (``min_ratio``) and statistical significance (``alpha``), so
  timing noise on an unchanged pipeline does not trip the gate.  When
  the candidate has too few samples for significance to be reachable
  (e.g. a single ``repro profile`` run), a stricter pure-threshold
  fallback (``small_sample_ratio``) applies instead.
* **Counter gate** -- deterministic counters (PODEM backtracks,
  reservation waits, plans evaluated, ...) are pure functions of the
  seed, so they are compared *exactly*: any added, removed, or changed
  counter is flagged as a correctness alarm, never as noise.
  Zero-valued counters are recorded by the ledger precisely so this
  gate can tell "zero" from "absent".  ``kind="serve"`` records are
  exempt: a daemon session's counters sum whatever load the clients
  happened to send, so there is no exact expectation to hold them to.
* **Histogram-percentile (SLO) gate** -- latency distributions recorded
  in the v3 ``histograms`` field (``serve.queue_wait``,
  ``serve.job_latency``) are gated on a tail percentile: the
  candidate's p99 must stay under ``hist_min_ratio`` times the median
  baseline p99.  Tail latency is wall-clock circumstance like the
  wall gate, so environment mismatches downgrade it to advisory too.

Environment fingerprints guard the wall-time gate: when the candidate
and baseline ran on different pythons/CPU counts/job settings the
wall-time verdict is downgraded to *advisory* (reported, not failing)
while the counter gate stays exact -- that is what makes a committed
cross-machine baseline usable in CI.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from math import comb, erfc, sqrt
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RegressionError
from repro.obs.ledger import RunLedger, pooled_samples
from repro.obs.metrics import DEFAULT_REGISTRY

_COMPARISONS = DEFAULT_REGISTRY.counter("regress.comparisons")
_REGRESSIONS = DEFAULT_REGISTRY.counter("regress.wall.regressions")
_DRIFTS = DEFAULT_REGISTRY.counter("regress.counter.drifts")
_SLO_BREACHES = DEFAULT_REGISTRY.counter("regress.hist.breaches")

#: wall-gate modes: apply always, only on matching environments, or never
WALL_GATE_MODES = ("auto", "always", "off")


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
def rank_sum_u(candidate: Sequence[float], baseline: Sequence[float]) -> Tuple[float, bool]:
    """Mann-Whitney U of the candidate sample (midranks) and a tie flag."""
    tagged = sorted(
        [(value, 0) for value in candidate] + [(value, 1) for value in baseline]
    )
    ranks: List[float] = [0.0] * len(tagged)
    index = 0
    ties = False
    while index < len(tagged):
        stop = index
        while stop + 1 < len(tagged) and tagged[stop + 1][0] == tagged[index][0]:
            stop += 1
        midrank = (index + stop) / 2.0 + 1.0
        if stop > index:
            ties = True
        for position in range(index, stop + 1):
            ranks[position] = midrank
        index = stop + 1
    rank_total = sum(
        rank for rank, (_, group) in zip(ranks, tagged) if group == 0
    )
    n1 = len(candidate)
    u = rank_total - n1 * (n1 + 1) / 2.0
    return u, ties


def _exact_u_tail(u_observed: float, n1: int, n2: int) -> float:
    """Exact ``P(U >= u_observed)`` under H0 (no ties).

    The U distribution's counts are the coefficients of the Gaussian
    binomial ``C_q(n1+n2, n1)``, built up as the exact polynomial
    product of ``(1 - q^(n2+i)) / (1 - q^i)`` for ``i = 1..n1``.
    """
    degree = n1 * n2
    coeffs = [1] + [0] * degree
    for i in range(1, n1 + 1):
        shift = n2 + i
        # multiply by (1 - q^shift): descending so old values are read
        for j in range(degree, shift - 1, -1):
            coeffs[j] -= coeffs[j - shift]
        # divide by (1 - q^i): ascending cumulative sum with stride i
        for j in range(i, degree + 1):
            coeffs[j] += coeffs[j - i]
    total = comb(n1 + n2, n1)
    threshold = int(u_observed) if u_observed == int(u_observed) else int(u_observed) + 1
    tail = sum(coeffs[max(0, threshold):])
    return tail / total


def mann_whitney_p(candidate: Sequence[float], baseline: Sequence[float]) -> float:
    """One-sided p-value that the candidate is stochastically *greater*
    (slower) than the baseline.  Exact for small tie-free samples, a
    tie-corrected normal approximation otherwise."""
    n1, n2 = len(candidate), len(baseline)
    if not n1 or not n2:
        raise RegressionError("Mann-Whitney needs non-empty samples on both sides")
    u, ties = rank_sum_u(candidate, baseline)
    if not ties and n1 * n2 <= 10_000:
        return _exact_u_tail(u, n1, n2)
    # normal approximation with tie correction
    total = n1 + n2
    values = sorted(list(candidate) + list(baseline))
    tie_term = 0.0
    index = 0
    while index < len(values):
        stop = index
        while stop + 1 < len(values) and values[stop + 1] == values[index]:
            stop += 1
        size = stop - index + 1
        tie_term += size**3 - size
        index = stop + 1
    mean = n1 * n2 / 2.0
    variance = n1 * n2 / 12.0 * ((total + 1) - tie_term / (total * (total - 1)))
    if variance <= 0:
        return 1.0  # every observation identical: indistinguishable
    z = (u - mean - 0.5) / sqrt(variance)  # continuity-corrected
    return 0.5 * erfc(z / sqrt(2.0))


def min_reachable_p(n1: int, n2: int) -> float:
    """The smallest one-sided p these sample sizes can ever produce."""
    return 1.0 / comb(n1 + n2, n1)


def bootstrap_ratio_ci(
    candidate: Sequence[float],
    baseline: Sequence[float],
    resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Seeded percentile-bootstrap CI on ``median(candidate)/median(baseline)``."""
    if not candidate or not baseline:
        raise RegressionError("bootstrap needs non-empty samples on both sides")
    rng = random.Random(seed)
    ratios: List[float] = []
    for _ in range(resamples):
        cand = [rng.choice(candidate) for _ in candidate]
        base = [rng.choice(baseline) for _ in baseline]
        ratios.append(median(cand) / max(median(base), 1e-12))
    ratios.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, min(len(ratios) - 1, int(alpha * len(ratios))))
    high_index = max(0, min(len(ratios) - 1, int((1.0 - alpha) * len(ratios)) - 1))
    return ratios[low_index], ratios[high_index]


# ----------------------------------------------------------------------
# policy and verdicts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GatePolicy:
    """Thresholds for the wall-time and counter gates."""

    #: baseline window: how many most-recent records to pool per series
    window: int = 5
    #: median ratio below which a slowdown is never flagged
    min_ratio: float = 1.25
    #: one-sided significance level for the rank test
    alpha: float = 0.05
    #: minimum pooled baseline samples before the wall gate applies
    min_samples: int = 3
    #: pure-threshold fallback when significance is unreachable
    small_sample_ratio: float = 2.0
    #: bootstrap resamples / confidence for the ratio CI
    resamples: int = 1000
    confidence: float = 0.95
    #: counter prefixes excluded from the exact gate.  The ``exec.``
    #: layer is execution-strategy bookkeeping -- pool sizing, task
    #: chunking, cache warmth -- that varies with the job count and
    #: prior runs, while the *work* counters merged back from workers
    #: stay bit-identical at any job count.  ``serve.`` counters track
    #: daemon load (batching, queue depth, result-cache warmth) and
    #: depend on request arrival timing, not on the planned work.
    #: ``attrib.``/``explain.`` are the same execution-bookkeeping
    #: class: how many attribution records/explain runs happened depends
    #: on whether ``REPRO_ATTRIB`` was on, not on the planned work --
    #: the attributed *totals* are gated through the counters they
    #: reconcile against (``atpg.*``, ``faultsim.*``).
    counter_ignore: Tuple[str, ...] = ("exec.", "serve.", "attrib.", "explain.")
    #: "auto" (downgrade on env mismatch), "always", or "off"
    wall_gate: str = "auto"
    #: exact counter comparison on/off
    counter_gate: bool = True
    #: histogram-percentile SLO gate on/off
    hist_gate: bool = True
    #: histogram name prefixes the SLO gate applies to (stage ``.time``
    #: histograms are covered by the wall gate already; the serve
    #: latency distributions are what needs a tail guard)
    hist_prefixes: Tuple[str, ...] = ("serve.",)
    #: which summary percentile the SLO gate compares
    hist_percentile: str = "p99"
    #: candidate percentile / median baseline percentile that trips
    hist_min_ratio: float = 1.5
    #: minimum candidate observations before the tail is trusted
    hist_min_count: int = 5

    def __post_init__(self) -> None:
        if self.wall_gate not in WALL_GATE_MODES:
            raise RegressionError(
                f"wall_gate must be one of {WALL_GATE_MODES}, got {self.wall_gate!r}"
            )
        if self.hist_percentile not in ("p50", "p90", "p99"):
            raise RegressionError(
                "hist_percentile must be one of ('p50', 'p90', 'p99'), "
                f"got {self.hist_percentile!r}"
            )


def env_compatible(a: Dict, b: Dict) -> bool:
    """Same python minor version, platform, CPU count, and job setting."""

    def minor(version: str) -> str:
        return ".".join(str(version).split(".")[:2])

    return (
        minor(a.get("python", "")) == minor(b.get("python", ""))
        and a.get("platform") == b.get("platform")
        and a.get("cpus") == b.get("cpus")
        and a.get("repro_jobs") == b.get("repro_jobs")
    )


@dataclass
class WallComparison:
    """Outcome of the wall-time gate for one series."""

    candidate_median: float
    baseline_median: float
    ratio: float
    p_value: Optional[float] = None
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    tripped: bool = False
    advisory: bool = False
    note: str = ""


@dataclass
class CounterDrift:
    """One counter whose value changed against the baseline."""

    counter: str
    baseline: Optional[float]
    candidate: Optional[float]

    def describe(self) -> str:
        def show(value):
            return "absent" if value is None else value

        return f"{self.counter}: {show(self.baseline)} -> {show(self.candidate)}"


@dataclass
class HistogramComparison:
    """The SLO gate's outcome for one gated histogram."""

    name: str
    percentile: str
    candidate: float
    baseline: float
    ratio: float
    count: int
    tripped: bool = False
    advisory: bool = False
    note: str = ""

    def describe(self) -> str:
        return (
            f"{self.name} {self.percentile} {self.ratio:.2f}x "
            f"({self.candidate * 1000:.2f}ms vs {self.baseline * 1000:.2f}ms)"
        )


@dataclass
class BenchVerdict:
    """Every gate's outcome for one ledger series."""

    bench: str
    candidate_samples: int = 0
    baseline_samples: int = 0
    baseline_records: int = 0
    wall: Optional[WallComparison] = None
    drifts: List[CounterDrift] = field(default_factory=list)
    hist: List[HistogramComparison] = field(default_factory=list)
    skipped: Optional[str] = None  # reason, when no comparison was possible

    @property
    def slo_breaches(self) -> List[HistogramComparison]:
        return [h for h in self.hist if h.tripped and not h.advisory]

    @property
    def failed(self) -> bool:
        if self.drifts or self.slo_breaches:
            return True
        return bool(self.wall and self.wall.tripped and not self.wall.advisory)

    @property
    def status(self) -> str:
        if self.skipped:
            return "skipped"
        labels = []
        if self.drifts:
            labels.append("drift")
        if self.wall and self.wall.tripped and not self.wall.advisory:
            labels.append("slower")
        if self.slo_breaches:
            labels.append("slo")
        if labels:
            return "+".join(labels)
        if self.wall and self.wall.tripped and self.wall.advisory:
            return "advisory"
        if any(h.tripped for h in self.hist):
            return "advisory"
        return "ok"

    def to_dict(self) -> Dict:
        payload: Dict = {
            "bench": self.bench,
            "status": self.status,
            "failed": self.failed,
            "candidate_samples": self.candidate_samples,
            "baseline_samples": self.baseline_samples,
            "baseline_records": self.baseline_records,
        }
        if self.skipped:
            payload["skipped"] = self.skipped
        if self.wall:
            payload["wall"] = {
                "candidate_median_s": self.wall.candidate_median,
                "baseline_median_s": self.wall.baseline_median,
                "ratio": self.wall.ratio,
                "p_value": self.wall.p_value,
                "ci": [self.wall.ci_low, self.wall.ci_high],
                "tripped": self.wall.tripped,
                "advisory": self.wall.advisory,
                "note": self.wall.note,
            }
        payload["counter_drifts"] = [
            {"counter": d.counter, "baseline": d.baseline, "candidate": d.candidate}
            for d in self.drifts
        ]
        payload["histograms"] = [
            {
                "name": h.name,
                "percentile": h.percentile,
                "candidate": h.candidate,
                "baseline": h.baseline,
                "ratio": h.ratio,
                "count": h.count,
                "tripped": h.tripped,
                "advisory": h.advisory,
                "note": h.note,
            }
            for h in self.hist
        ]
        return payload


# ----------------------------------------------------------------------
# the gates
# ----------------------------------------------------------------------
def compare_wall(
    candidate: Sequence[float],
    baseline: Sequence[float],
    policy: GatePolicy,
    advisory: bool = False,
) -> WallComparison:
    """Run the wall-time gate on raw samples (already pooled)."""
    candidate_median = median(candidate)
    baseline_median = median(baseline)
    ratio = candidate_median / max(baseline_median, 1e-12)
    result = WallComparison(
        candidate_median=candidate_median,
        baseline_median=baseline_median,
        ratio=ratio,
        advisory=advisory,
    )
    if ratio < policy.min_ratio:
        result.note = f"ratio {ratio:.3f} below min_ratio {policy.min_ratio}"
        return result
    if min_reachable_p(len(candidate), len(baseline)) > policy.alpha:
        # too few samples for the rank test to ever reach significance:
        # fall back to a stricter pure threshold
        result.tripped = ratio >= policy.small_sample_ratio
        result.note = (
            f"small-sample fallback (threshold {policy.small_sample_ratio}x)"
        )
        return result
    result.p_value = mann_whitney_p(candidate, baseline)
    result.ci_low, result.ci_high = bootstrap_ratio_ci(
        candidate,
        baseline,
        resamples=policy.resamples,
        confidence=policy.confidence,
    )
    result.tripped = result.p_value <= policy.alpha and result.ci_low > 1.0
    result.note = (
        f"p={result.p_value:.4f}, "
        f"ratio CI [{result.ci_low:.3f}, {result.ci_high:.3f}]"
    )
    return result


def compare_counters(
    candidate: Dict, baseline: Dict, ignore: Sequence[str] = ()
) -> List[CounterDrift]:
    """Exact counter comparison; every mismatch is a drift entry."""

    def keep(name: str) -> bool:
        return not any(name.startswith(prefix) for prefix in ignore)

    drifts: List[CounterDrift] = []
    for name in sorted(set(candidate) | set(baseline)):
        if not keep(name):
            continue
        base = baseline.get(name)
        cand = candidate.get(name)
        if base != cand:
            drifts.append(CounterDrift(name, base, cand))
    return drifts


def compare_histograms(
    candidate: Dict,
    baseline_records: Sequence[Dict],
    policy: GatePolicy,
    advisory: bool = False,
) -> List[HistogramComparison]:
    """The percentile SLO gate over the v3 ``histograms`` field.

    Every gated histogram (``hist_prefixes``) present in both the
    candidate and at least one baseline record is compared: candidate
    percentile against the *median* of the baseline records' same
    percentile.  Histograms with fewer than ``hist_min_count``
    candidate observations are reported but never tripped (a p99 of
    three samples is the max of three samples).
    """
    results: List[HistogramComparison] = []
    candidate_hists = candidate.get("histograms") or {}
    percentile = policy.hist_percentile
    for name in sorted(candidate_hists):
        if not any(name.startswith(prefix) for prefix in policy.hist_prefixes):
            continue
        summary = candidate_hists[name]
        value = summary.get(percentile)
        if value is None:
            continue  # empty candidate histogram: nothing to gate
        baseline_values = [
            record["histograms"][name][percentile]
            for record in baseline_records
            if record.get("histograms", {}).get(name, {}).get(percentile)
            is not None
        ]
        if not baseline_values:
            continue
        baseline_value = median(baseline_values)
        ratio = value / max(baseline_value, 1e-12)
        comparison = HistogramComparison(
            name=name,
            percentile=percentile,
            candidate=value,
            baseline=baseline_value,
            ratio=ratio,
            count=int(summary.get("count", 0)),
            advisory=advisory,
        )
        if comparison.count < policy.hist_min_count:
            comparison.note = (
                f"only {comparison.count} observations "
                f"(< hist_min_count {policy.hist_min_count}); gate not applied"
            )
        elif ratio >= policy.hist_min_ratio:
            comparison.tripped = True
            comparison.note = (
                f"{percentile} ratio {ratio:.3f} >= "
                f"hist_min_ratio {policy.hist_min_ratio}"
            )
            if advisory:
                comparison.note += "; environment mismatch: advisory only"
        else:
            comparison.note = (
                f"{percentile} ratio {ratio:.3f} below "
                f"hist_min_ratio {policy.hist_min_ratio}"
            )
        results.append(comparison)
    return results


def compare_records(
    candidate: Dict,
    baseline_records: Sequence[Dict],
    policy: Optional[GatePolicy] = None,
) -> BenchVerdict:
    """Every gate for one candidate record against its baseline window."""
    policy = policy or GatePolicy()
    verdict = BenchVerdict(
        bench=candidate["bench"],
        candidate_samples=len(candidate["samples"]),
        baseline_records=len(baseline_records),
    )
    if not baseline_records:
        verdict.skipped = "no baseline records"
        return verdict
    _COMPARISONS.inc()

    baseline = pooled_samples(baseline_records)
    verdict.baseline_samples = len(baseline)

    mismatched = any(
        not env_compatible(candidate["env"], record["env"])
        for record in baseline_records
    )

    # counter gate: exact match against the newest baseline record.
    # serve sessions carry whatever counters their load produced, so
    # there is no seed-determined expectation to compare exactly.
    if policy.counter_gate and candidate.get("kind") != "serve":
        verdict.drifts = compare_counters(
            candidate["counters"],
            baseline_records[-1]["counters"],
            ignore=policy.counter_ignore,
        )
        if verdict.drifts:
            _DRIFTS.inc(len(verdict.drifts))

    # histogram-percentile SLO gate (tail latency is wall-clock
    # circumstance: env mismatches downgrade it like the wall gate)
    if policy.hist_gate:
        verdict.hist = compare_histograms(
            candidate, baseline_records, policy, advisory=mismatched
        )
        breaches = [h for h in verdict.hist if h.tripped and not h.advisory]
        if breaches:
            _SLO_BREACHES.inc(len(breaches))

    # wall gate
    if policy.wall_gate != "off":
        advisory = policy.wall_gate == "auto" and mismatched
        if len(baseline) < policy.min_samples:
            verdict.wall = WallComparison(
                candidate_median=median(candidate["samples"]),
                baseline_median=median(baseline),
                ratio=median(candidate["samples"]) / max(median(baseline), 1e-12),
                advisory=advisory,
                note=(
                    f"baseline has {len(baseline)} samples "
                    f"(< min_samples {policy.min_samples}); gate not applied"
                ),
            )
        else:
            verdict.wall = compare_wall(
                candidate["samples"], baseline, policy, advisory=advisory
            )
            if advisory and verdict.wall.tripped:
                verdict.wall.note += "; environment mismatch: advisory only"
        if verdict.wall.tripped and not verdict.wall.advisory:
            _REGRESSIONS.inc()
    return verdict


# ----------------------------------------------------------------------
# ledger-level comparison + report object
# ----------------------------------------------------------------------
@dataclass
class RegressionReport:
    """Per-series verdicts plus the ledger paths that produced them."""

    candidate_path: str
    baseline_path: Optional[str]
    verdicts: List[BenchVerdict] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return any(verdict.failed for verdict in self.verdicts)

    @property
    def compared(self) -> int:
        return sum(1 for verdict in self.verdicts if not verdict.skipped)

    def exit_code(self) -> int:
        """0 clean, 1 regression/drift, 3 nothing could be compared."""
        if self.failed:
            return 1
        if not self.compared:
            return 3
        return 0

    def to_dict(self) -> Dict:
        return {
            "candidate_ledger": self.candidate_path,
            "baseline_ledger": self.baseline_path,
            "failed": self.failed,
            "compared": self.compared,
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        from repro.util import render_table

        rows = []
        for verdict in self.verdicts:
            if verdict.skipped:
                rows.append([verdict.bench, "skipped", "-", "-", "-",
                             verdict.skipped])
                continue
            wall = verdict.wall
            detail = wall.note if wall else "wall gate off"
            breaches = [h for h in verdict.hist if h.tripped]
            if breaches:
                detail = ", ".join(h.describe() for h in breaches[:2])
                if breaches[0].advisory:
                    detail += " (advisory: env mismatch)"
            if verdict.drifts:
                shown = ", ".join(d.describe() for d in verdict.drifts[:3])
                more = len(verdict.drifts) - 3
                detail = shown + (f" (+{more} more)" if more > 0 else "")
            rows.append(
                [
                    verdict.bench,
                    verdict.status,
                    f"{wall.ratio:.3f}x" if wall else "-",
                    f"{wall.candidate_median * 1000:.2f}ms" if wall else "-",
                    f"{wall.baseline_median * 1000:.2f}ms" if wall else "-",
                    detail,
                ]
            )
        table = render_table(
            ["series", "verdict", "ratio", "candidate", "baseline", "detail"],
            rows,
            title="Regression gates (wall-time + exact counters + latency SLOs)",
        )
        summary = (
            f"\n{self.compared} series compared, "
            f"{sum(1 for v in self.verdicts if v.failed)} failed "
            f"(candidate {self.candidate_path}, "
            f"baseline {self.baseline_path or 'same ledger'})"
        )
        return table + summary


def compare_ledgers(
    candidate: RunLedger,
    baseline: Optional[RunLedger] = None,
    benches: Optional[Sequence[str]] = None,
    policy: Optional[GatePolicy] = None,
) -> RegressionReport:
    """Gate every series in ``candidate`` against ``baseline``.

    The candidate record is each series' newest entry.  With no
    separate baseline ledger, the same ledger's *earlier* records form
    the window -- the self-history mode the bench harness uses locally.
    """
    policy = policy or GatePolicy()
    report = RegressionReport(
        candidate_path=candidate.path,
        baseline_path=baseline.path if baseline is not None else None,
    )
    series = list(benches) if benches else candidate.benches()
    if benches:
        unknown = [name for name in series if not candidate.records(name)]
        if unknown:
            raise RegressionError(
                f"series {unknown} not present in {candidate.path}"
            )
    for bench in series:
        records = candidate.records(bench)
        latest = records[-1]
        if baseline is not None:
            window = baseline.window(bench, policy.window)
        else:
            window = candidate.window(bench, policy.window, before=len(records) - 1)
        report.verdicts.append(compare_records(latest, window, policy))
    return report
