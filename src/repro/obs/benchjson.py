"""The machine-readable benchmark format (``BENCH_<name>.json``).

Every benchmark writes one JSON document so the performance trajectory
is diffable across PRs: wall time plus the key pipeline counters from
the metrics registry.  The schema is deliberately small and validated
by hand (no external JSON-schema dependency)::

    {
      "schema": "repro-bench",
      "schema_version": 2,
      "bench": "schedule",          # short name, file is BENCH_<bench>.json
      "wall_time_s": 0.0042,        # mean wall time of the measured call
      "rounds": 3,                  # timing rounds the mean is over
      "samples": [0.0041, ...],     # v2: per-round raw wall times (seconds)
      "counters": {"schedule.reservation.waits": 7, ...},
      "results": {...}              # bench-specific payload (free-form)
    }

Version history:

* **v1** -- mean wall time only, and only non-zero counters.
* **v2** -- adds per-round raw ``samples`` (the mean alone makes
  statistics impossible) and records *every* touched counter, zeros
  included, so a counter diff can distinguish "zero" from "absent".
  v1 files still validate (the ``samples`` requirement is gated on the
  declared ``schema_version``).
* **v3** -- adds the optional ``histograms`` field (summary dicts from
  :meth:`MetricsRegistry.histograms`; the well-defined empty-summary
  shape -- count 0, null order statistics -- validates too), matching
  run-ledger schema v3.

Run ``python -m repro.obs.benchjson FILE...`` to validate bench files,
exported Chrome traces, and ``*.jsonl`` run ledgers (CI fails the job
on any schema error).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.errors import BenchSchemaError
from repro.obs.metrics import DEFAULT_REGISTRY, MetricsRegistry

SCHEMA = "repro-bench"
SCHEMA_VERSION = 3

_REQUIRED_FIELDS = {
    "schema": str,
    "schema_version": int,
    "bench": str,
    "wall_time_s": (int, float),
    "rounds": int,
    "counters": dict,
    "results": (dict, list),
}


def bench_payload(
    bench: str,
    wall_time_s: float,
    results,
    rounds: int = 1,
    registry: Optional[MetricsRegistry] = None,
    samples: Optional[Sequence[float]] = None,
    histograms: Optional[Dict] = None,
) -> Dict:
    """Build a schema-valid bench document (counters from the registry).

    With ``samples`` (the per-round raw wall times) the payload is
    schema v2; without, it stays a v1 document for callers that only
    have a mean.  ``histograms`` (summary dicts, requires ``samples``)
    makes it v3.  Counters record every touched instrument, zeros
    included -- the regression gate needs "zero" and "absent" to be
    different facts.
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    if samples is not None:
        version = SCHEMA_VERSION if histograms is not None else 2
    else:
        version = 1
    payload = {
        "schema": SCHEMA,
        "schema_version": version,
        "bench": bench,
        "wall_time_s": float(wall_time_s),
        "rounds": int(rounds),
        "counters": dict(registry.counters()),
        "results": results,
    }
    if samples is not None:
        payload["samples"] = [float(value) for value in samples]
        payload["rounds"] = len(payload["samples"])
    if histograms is not None:
        payload["histograms"] = {
            name: dict(summary) for name, summary in histograms.items()
        }
    validate_bench(payload)
    return payload


def validate_bench(payload: Dict) -> None:
    """Raise :class:`BenchSchemaError` listing every schema violation."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        raise BenchSchemaError(f"bench payload must be an object, got {type(payload).__name__}")
    for field, kinds in _REQUIRED_FIELDS.items():
        if field not in payload:
            problems.append(f"missing field {field!r}")
        elif not isinstance(payload[field], kinds):
            problems.append(
                f"field {field!r} has type {type(payload[field]).__name__}"
            )
    if not problems:
        if payload["schema"] != SCHEMA:
            problems.append(f"schema is {payload['schema']!r}, expected {SCHEMA!r}")
        if payload["schema_version"] > SCHEMA_VERSION:
            problems.append(
                f"schema_version {payload['schema_version']} is newer than {SCHEMA_VERSION}"
            )
        if payload["wall_time_s"] < 0:
            problems.append("wall_time_s is negative")
        for key, value in payload["counters"].items():
            if not isinstance(key, str) or not isinstance(value, (int, float)):
                problems.append(f"counter {key!r} is not a string->number entry")
        if payload["schema_version"] >= 2:
            problems.extend(_sample_problems(payload))
        elif "samples" in payload:
            problems.append("v1 payload carries a 'samples' field; declare v2")
        if payload["schema_version"] >= 3:
            if "histograms" in payload:
                from repro.obs.ledger import _histogram_problems

                problems.extend(_histogram_problems(payload["histograms"]))
        elif "histograms" in payload:
            problems.append("pre-v3 payload carries a 'histograms' field; declare v3")
    if problems:
        raise BenchSchemaError("; ".join(problems))


def _sample_problems(payload: Dict) -> List[str]:
    """The v2 ``samples`` constraints (shared with the run ledger)."""
    samples = payload.get("samples")
    if not isinstance(samples, list) or not samples:
        return ["v2 payload requires a non-empty 'samples' list"]
    problems = []
    for index, value in enumerate(samples):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"sample {index} is not a number")
        elif value < 0:
            problems.append(f"sample {index} is negative")
    if not problems and payload.get("rounds") != len(samples):
        problems.append(
            f"rounds is {payload.get('rounds')} but {len(samples)} samples recorded"
        )
    return problems


def validate_chrome_trace(payload) -> None:
    """Check a document is a loadable Chrome ``trace_event`` export.

    Beyond per-event field checks, the span graph itself is validated:
    duplicate span ids or a parent link pointing outside the trace
    (an orphan span -- a stitching bug) fail validation.
    """
    from repro.obs.tracer import span_tree_problems

    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise BenchSchemaError("trace object has no traceEvents list")
    elif isinstance(payload, list):
        events = payload
    else:
        raise BenchSchemaError("trace must be an object or an event array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise BenchSchemaError(f"trace event {index} is not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                raise BenchSchemaError(f"trace event {index} misses {field!r}")
    problems = span_tree_problems(events)
    if problems:
        raise BenchSchemaError("; ".join(problems))


def write_bench(path: str, payload: Dict) -> str:
    validate_bench(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return str(path)


def validate_file(path: str) -> str:
    """Validate one artifact (bench JSON, Chrome trace, or run ledger)."""
    from repro.obs.ledger import LEDGER_SCHEMA, validate_ledger_file, validate_record

    if str(path).endswith(".jsonl"):
        validate_ledger_file(path)
        return "ledger"
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and payload.get("schema") == SCHEMA:
        validate_bench(payload)
        return "bench"
    if isinstance(payload, dict) and payload.get("schema") == LEDGER_SCHEMA:
        validate_record(payload)
        return "ledger-record"
    validate_chrome_trace(payload)
    return "trace"


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.errors import ObservabilityError

    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.benchjson FILE [FILE...]", file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            kind = validate_file(path)
        except (OSError, ValueError, ObservabilityError) as error:
            print(f"FAIL {path}: {error}")
            failures += 1
        else:
            print(f"ok   {path} ({kind})")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
