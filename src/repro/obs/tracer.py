"""Span-based tracer exporting Chrome ``trace_event`` JSON and JSONL.

A :class:`Tracer` records *complete* spans (``ph: "X"``): each span has
a name, wall-clock start, duration, thread id, nesting depth, a stable
span id, a parent link, and free ``args``.  The output of
:meth:`Tracer.export_chrome` loads directly in ``chrome://tracing`` and
https://ui.perfetto.dev; :meth:`export_jsonl` writes one event per line
for ad-hoc ``jq``/pandas analysis.

Disabled is the default and the fast path: ``span()`` then returns a
shared no-op context manager without touching the clock, so leaving
``with TRACER.span("atpg.run"):`` in library code costs one attribute
check per call.  Spans nest naturally through the ``with`` statement;
a thread-local stack tracks depth and parent for the JSONL export
(Chrome infers nesting from timestamps on the same thread).

Cross-process stitching: :meth:`Tracer.context` serializes the current
position in the trace (trace id, innermost span id, epoch, depth) into
a plain dict that survives pickling into a pool worker.  The worker
calls :meth:`Tracer.adopt` on its own process-local tracer, which
enables recording, re-bases depth under the shipped parent, and adopts
the parent's perf-counter epoch so timestamps share one timebase
(``CLOCK_MONOTONIC`` is system-wide on Linux).  Worker spans travel
back as plain event dicts and are merged with :meth:`Tracer.absorb`;
span ids are ``"<pid hex>-<seq hex>"`` so ids from different worker
processes never collide.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

#: process-wide span-id sequence; combined with the pid so ids minted in
#: forked workers (which inherit the counter position) stay unique
_SPAN_IDS = itertools.count(1)


def new_span_id() -> str:
    """Mint a span id (``"<pid hex>-<seq hex>"``) outside any tracer.

    Used by synthesized span trees (serve jobs) so their ids share the
    allocator with live tracer spans and never collide with them.
    """
    return f"{os.getpid():x}-{next(_SPAN_IDS):x}"


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One live span; records itself on the tracer when the block exits."""

    __slots__ = (
        "tracer",
        "name",
        "args",
        "span_id",
        "_start_ns",
        "_depth",
        "_parent",
        "_parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, args: Dict) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args
        self.span_id: Optional[str] = None
        self._start_ns = 0
        self._depth = 0
        self._parent: Optional[str] = None
        self._parent_id: Optional[str] = None

    def set(self, **args) -> None:
        """Attach extra args (counters measured inside the block)."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        tracer = self.tracer
        stack = tracer._stack()
        self._depth = tracer._depth_base + len(stack)
        if stack:
            self._parent, self._parent_id = stack[-1]
        else:
            self._parent, self._parent_id = tracer._context_parent
        self.span_id = f"{tracer.pid:x}-{next(_SPAN_IDS):x}"
        stack.append((self.name, self.span_id))
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end_ns = time.perf_counter_ns()
        stack = self.tracer._stack()
        if stack and stack[-1] == (self.name, self.span_id):
            stack.pop()
        self.tracer._record(
            {
                "name": self.name,
                "ph": "X",
                "ts": (self._start_ns - self.tracer.epoch_ns) / 1000.0,
                "dur": (end_ns - self._start_ns) / 1000.0,
                "pid": self.tracer.pid,
                "tid": threading.get_ident(),
                "cat": self.name.split(".", 1)[0],
                "args": dict(
                    self.args,
                    depth=self._depth,
                    parent=self._parent,
                    span_id=self.span_id,
                    parent_id=self._parent_id,
                ),
            }
        )
        return False


class Tracer:
    """Thread-safe span recorder; disabled (and near-free) by default."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.epoch_ns = time.perf_counter_ns()
        self.pid = os.getpid()
        self.trace_id = f"{self.pid:x}.{self.epoch_ns:x}"
        self._events: List[Dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        #: (name, span_id) adopted from a shipped context; parents any
        #: span opened while the thread-local stack is empty
        self._context_parent: Tuple[Optional[str], Optional[str]] = (None, None)
        self._depth_base = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **args):
        """Context manager timing one section (no-op when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, args)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
        self.epoch_ns = time.perf_counter_ns()
        self.trace_id = f"{self.pid:x}.{self.epoch_ns:x}"
        self._context_parent = (None, None)
        self._depth_base = 0

    # ------------------------------------------------------------------
    # cross-process propagation
    # ------------------------------------------------------------------
    def context(self, parent: Optional[Span] = None) -> Optional[Dict]:
        """Serialize the current trace position for shipping to a worker.

        Returns ``None`` while tracing is disabled (the no-overhead
        signal for the worker side).  ``parent`` pins the span that
        shipped work should nest under; without it the innermost open
        span on the calling thread is used.
        """
        if not self.enabled:
            return None
        if parent is not None and parent.span_id is not None:
            parent_name: Optional[str] = parent.name
            parent_id: Optional[str] = parent.span_id
            depth = parent._depth + 1
        else:
            stack = self._stack()
            if stack:
                parent_name, parent_id = stack[-1]
                depth = self._depth_base + len(stack)
            else:
                parent_name, parent_id = self._context_parent
                depth = self._depth_base
        return {
            "trace": self.trace_id,
            "parent": parent_name,
            "parent_id": parent_id,
            "depth": depth,
            "epoch_ns": self.epoch_ns,
        }

    def adopt(self, context: Optional[Dict]) -> None:
        """Follow a shipped trace context (worker side).

        ``None`` disables recording — worker enablement always mirrors
        the parent's, so a worker never buffers spans nobody collects
        and never silently drops spans the parent wanted.
        """
        # a forked worker inherits the forking thread's span stack (the
        # parent's open spans, which the worker will never exit); a task
        # starts from a clean stack with the shipped context as parent
        self._stack().clear()
        if context is None:
            self.enabled = False
            self._context_parent = (None, None)
            self._depth_base = 0
            return
        self.pid = os.getpid()  # cached pid is stale after fork
        self.enabled = True
        self.trace_id = context["trace"]
        self.epoch_ns = context["epoch_ns"]
        self._context_parent = (context.get("parent"), context.get("parent_id"))
        self._depth_base = context.get("depth", 0)

    def mark(self) -> int:
        """Current event count; pair with :meth:`events_since`."""
        with self._lock:
            return len(self._events)

    def events_since(self, mark: int) -> List[Dict]:
        """Events recorded after ``mark`` (for shipping back to a parent)."""
        with self._lock:
            return list(self._events[mark:])

    def absorb(self, events: List[Dict]) -> int:
        """Merge events shipped back from a worker; returns the count."""
        if not events:
            return 0
        with self._lock:
            self._events.extend(events)
        return len(events)

    # ------------------------------------------------------------------
    def _stack(self) -> List[Tuple[str, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, event: Dict) -> None:
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    def events(self) -> List[Dict]:
        with self._lock:
            return list(self._events)

    def chrome_trace(self) -> Dict:
        """The ``trace_event`` document Perfetto/chrome://tracing load."""
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "metadata": {"trace_id": self.trace_id},
        }

    def export_chrome(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")
        return path

    def export_jsonl(self, path: str) -> str:
        with open(path, "w") as handle:
            for event in self.events():
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    def iter_spans(self, prefix: str = "") -> Iterator[Dict]:
        for event in self.events():
            if event["name"].startswith(prefix):
                yield event


def span_tree_problems(events: List[Dict]) -> List[str]:
    """Structural checks on a stitched span set: ids and parent links.

    Returns human-readable problems; empty means every span id is
    unique and every non-root parent link resolves — i.e. zero orphan
    spans.  Events without ``args.span_id`` (foreign trace events) are
    ignored.
    """
    problems: List[str] = []
    ids: Dict[str, str] = {}
    for event in events:
        span_id = (event.get("args") or {}).get("span_id")
        if span_id is None:
            continue
        if span_id in ids:
            problems.append(
                f"duplicate span id {span_id!r} "
                f"({ids[span_id]!r} and {event['name']!r})"
            )
        ids[span_id] = event["name"]
    for event in events:
        args = event.get("args") or {}
        if args.get("span_id") is None:
            continue
        parent_id = args.get("parent_id")
        if parent_id is not None and parent_id not in ids:
            problems.append(
                f"orphan span {event['name']!r} "
                f"(parent id {parent_id!r} not in trace)"
            )
    return problems


#: the process-wide tracer shared by every instrumented module
DEFAULT_TRACER = Tracer()
