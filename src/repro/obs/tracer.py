"""Span-based tracer exporting Chrome ``trace_event`` JSON and JSONL.

A :class:`Tracer` records *complete* spans (``ph: "X"``): each span has
a name, wall-clock start, duration, thread id, nesting depth, and free
``args``.  The output of :meth:`Tracer.export_chrome` loads directly in
``chrome://tracing`` and https://ui.perfetto.dev; :meth:`export_jsonl`
writes one event per line for ad-hoc ``jq``/pandas analysis.

Disabled is the default and the fast path: ``span()`` then returns a
shared no-op context manager without touching the clock, so leaving
``with TRACER.span("atpg.run"):`` in library code costs one attribute
check per call.  Spans nest naturally through the ``with`` statement;
a thread-local stack tracks depth and parent for the JSONL export
(Chrome infers nesting from timestamps on the same thread).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One live span; records itself on the tracer when the block exits."""

    __slots__ = ("tracer", "name", "args", "_start_ns", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str, args: Dict) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0
        self._depth = 0
        self._parent: Optional[str] = None

    def set(self, **args) -> None:
        """Attach extra args (counters measured inside the block)."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end_ns = time.perf_counter_ns()
        stack = self.tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self.tracer._record(
            {
                "name": self.name,
                "ph": "X",
                "ts": (self._start_ns - self.tracer.epoch_ns) / 1000.0,
                "dur": (end_ns - self._start_ns) / 1000.0,
                "pid": self.tracer.pid,
                "tid": threading.get_ident(),
                "cat": self.name.split(".", 1)[0],
                "args": dict(self.args, depth=self._depth, parent=self._parent),
            }
        )
        return False


class Tracer:
    """Thread-safe span recorder; disabled (and near-free) by default."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.epoch_ns = time.perf_counter_ns()
        self.pid = os.getpid()
        self._events: List[Dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def span(self, name: str, **args):
        """Context manager timing one section (no-op when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, args)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
        self.epoch_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, event: Dict) -> None:
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    def events(self) -> List[Dict]:
        with self._lock:
            return list(self._events)

    def chrome_trace(self) -> Dict:
        """The ``trace_event`` document Perfetto/chrome://tracing load."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")
        return path

    def export_jsonl(self, path: str) -> str:
        with open(path, "w") as handle:
            for event in self.events():
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    def iter_spans(self, prefix: str = "") -> Iterator[Dict]:
        for event in self.events():
            if event["name"].startswith(prefix):
                yield event


#: the process-wide tracer shared by every instrumented module
DEFAULT_TRACER = Tracer()
