"""Prometheus-style text exposition for the metrics registry.

:func:`render_exposition` turns a :meth:`MetricsRegistry.snapshot`
into the Prometheus text format (version 0.0.4): counters and gauges
as single samples, histograms as *summary* metrics with ``quantile``
labels plus ``_sum``/``_count`` series.  No client library is
involved -- the format is line-oriented text, and generating it
directly keeps the daemon dependency-free.

Dotted instrument names are mapped to the Prometheus grammar by
prefixing ``repro_`` and replacing every non-alphanumeric character
with ``_`` (``serve.queue.depth`` → ``repro_serve_queue_depth``); the
original dotted name is preserved in the ``# HELP`` line so the
mapping is reversible by eye.

An empty histogram renders as its well-defined empty summary: a
``_count 0`` and ``_sum 0.0`` sample with no quantile lines (a
quantile of nothing is not a number, so it is not a sample).

:func:`parse_exposition` is the matching validator/reader: it checks
the text parses line-by-line and returns the samples, which is what
``repro top`` and the CI scrape check consume.  ``python -m
repro.obs.expo FILE`` validates a scraped exposition from the shell.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

#: every exposed series name starts with this
PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')

#: summary quantiles exposed per histogram (label value, summary key)
QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50"),
    ("0.9", "p90"),
    ("0.99", "p99"),
)


class ExpositionError(ValueError):
    """Raised by :func:`parse_exposition` on text that does not parse."""


def metric_name(name: str) -> str:
    """Map a dotted instrument name to a Prometheus series name."""
    return PREFIX + _NAME_RE.sub("_", name)


def _format_value(value) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_exposition(snapshot: Dict) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    ``snapshot`` is :meth:`repro.obs.MetricsRegistry.snapshot` output
    (or any dict with the same ``counters``/``gauges``/``histograms``
    shape, e.g. one reconstructed from a ledger record).
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        series = metric_name(name)
        lines.append(f"# HELP {series} counter {name}")
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        if value is None:
            continue
        series = metric_name(name)
        lines.append(f"# HELP {series} gauge {name}")
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {_format_value(value)}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        series = metric_name(name)
        lines.append(f"# HELP {series} histogram {name}")
        lines.append(f"# TYPE {series} summary")
        for quantile, key in QUANTILES:
            value = summary.get(key)
            if value is None:  # empty histogram: no quantile samples
                continue
            lines.append(f'{series}{{quantile="{quantile}"}} {_format_value(value)}')
        lines.append(f"{series}_sum {_format_value(summary.get('sum', 0.0))}")
        lines.append(f"{series}_count {_format_value(summary.get('count', 0))}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, Dict]:
    """Parse exposition text back into series.

    Returns ``{series_name: {"type": str|None, "help": str|None,
    "samples": [(labels, value), ...]}}``; raises
    :class:`ExpositionError` on any line that does not fit the format.
    ``_sum``/``_count`` samples of a summary fold into the base series.
    """
    series: Dict[str, Dict] = {}

    def entry(name: str) -> Dict:
        return series.setdefault(
            name, {"type": None, "help": None, "samples": []}
        )

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ExpositionError(f"line {lineno}: malformed HELP: {line!r}")
            entry(parts[2])["help"] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[3].split()[0] not in (
                "counter",
                "gauge",
                "summary",
                "histogram",
                "untyped",
            ):
                raise ExpositionError(f"line {lineno}: malformed TYPE: {line!r}")
            entry(parts[2])["type"] = parts[3].split()[0]
            continue
        if line.startswith("#"):
            continue  # comment
        match = _LINE_RE.match(line)
        if not match:
            raise ExpositionError(f"line {lineno}: malformed sample: {line!r}")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                label = _LABEL_RE.match(pair.strip())
                if not label:
                    raise ExpositionError(
                        f"line {lineno}: malformed label {pair!r}"
                    )
                labels[label.group("key")] = label.group("value")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ExpositionError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            ) from None
        name = match.group("name")
        base = name
        for suffix in ("_sum", "_count"):
            trimmed = name[: -len(suffix)]
            if name.endswith(suffix) and trimmed in series:
                base = trimmed
                labels = dict(labels, __series__=suffix.lstrip("_"))
                break
        entry(base)["samples"].append((labels, value))
    return series


def summary_from_series(parsed: Dict[str, Dict], dotted_name: str) -> Optional[Dict]:
    """Reconstruct a histogram summary from parsed exposition series.

    Returns ``{"count", "sum", "p50", "p90", "p99"}`` (quantiles
    ``None`` when absent) or ``None`` when the series is not exposed.
    """
    series = parsed.get(metric_name(dotted_name))
    if series is None:
        return None
    summary: Dict = {"count": 0, "sum": 0.0, "p50": None, "p90": None, "p99": None}
    for labels, value in series["samples"]:
        if labels.get("__series__") == "count":
            summary["count"] = int(value)
        elif labels.get("__series__") == "sum":
            summary["sum"] = value
        else:
            for quantile, key in QUANTILES:
                if labels.get("quantile") == quantile:
                    summary[key] = value
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    """Validate exposition files: ``python -m repro.obs.expo FILE...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.expo FILE [FILE...]", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        try:
            with open(path) as handle:
                parsed = parse_exposition(handle.read())
        except (OSError, ExpositionError) as error:
            print(f"{path}: INVALID: {error}")
            status = 1
            continue
        samples = sum(len(entry["samples"]) for entry in parsed.values())
        print(f"{path}: OK ({len(parsed)} series, {samples} samples)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
