"""Deterministic search-effort attribution (the *why* behind the cost).

The metrics registry answers "how much work happened" (counters) and the
profiler answers "where did the wall time go" (stage waterfall).  This
module answers the question between the two: *which faults, which gate
populations, and which optimizer moves consumed the search effort?*
Three attribution planes feed one collector:

* **ATPG plane** -- :func:`repro.atpg.podem.podem` records one effort
  ledger entry per targeted fault: decisions, backtracks, implication
  passes, backtrace restarts, and the abort cause (backtrack budget vs
  untestable proof).  Effort is a wall-free unit
  (``decisions + 2*backtracks + implications``) so the ledger is a pure
  function of the seed.
* **Simulation plane** -- the scalar fault simulator and the compiled
  numpy kernels attribute good-value batches, survivor-sweep
  candidates, and detection cone walks to ``level:kind`` gate buckets.
  Both backends hook the *same* oracle-semantic events (the ones behind
  ``faultsim.batches`` / ``faultsim.events`` / ``faultsim.cone.*``), so
  the artifact is bit-identical across ``REPRO_SIM_BACKEND`` settings;
  backend-mechanical work (``kernel.words_evaluated``) is deliberately
  excluded.
* **Optimizer plane** -- every candidate move evaluated by
  :class:`repro.soc.optimizer.SocetOptimizer` appends an
  :class:`AttribEvent`-shaped dict (move kind, subject, version delta,
  objective before/after, accept/reject, revisit classification) to an
  append-only stream, summarized into wasted-move ratio, plateau
  length, and per-move-kind yield.

The collector mirrors the metrics registry's cross-process discipline:
:meth:`AttribCollector.mark` / :meth:`AttribCollector.delta_since` /
:meth:`AttribCollector.merge_delta` ship plain picklable deltas through
the ``ParallelExecutor`` result tuples, merged in submission order so
any job count folds to the same state.  Collection is off by default;
``REPRO_ATTRIB`` (``off``/``on``/``deep``) or
:meth:`AttribCollector.configure` turns it on.  Every hook early-returns
on one attribute check when off.

Artifacts are byte-stable sorted JSON under the ``repro-attrib`` schema
(version |ATTRIB_SCHEMA_VERSION|), validated by the dependency-free
checker in :func:`validate_artifact`, also exposed as
``python -m repro.obs.attrib FILE...``.  Attribution counters are
advisory: they never feed gating except through explicitly-declared
regress gates.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import AttribSchemaError, UsageError
from repro.obs.metrics import DEFAULT_REGISTRY

_PODEM_RECORDS = DEFAULT_REGISTRY.counter("attrib.podem.records")
_MOVE_EVENTS = DEFAULT_REGISTRY.counter("attrib.optimizer.events")

#: JSON schema marker / version of the attribution artifact.
ATTRIB_SCHEMA = "repro-attrib"
ATTRIB_SCHEMA_VERSION = 1

#: collection modes: disabled, aggregate planes, aggregate + per-site detail
ATTRIB_MODES = ("off", "on", "deep")

#: environment toggle honored by :func:`resolve_attrib_mode`
ATTRIB_ENV = "REPRO_ATTRIB"

_PODEM_STATUSES = ("detected", "aborted", "redundant")

#: abort-cause label per terminal PODEM status
ABORT_CAUSES = {
    "detected": None,
    "aborted": "backtrack-budget",
    "redundant": "untestable-proof",
}


def resolve_attrib_mode(value: Optional[str] = None) -> str:
    """Resolve the attribution mode from ``REPRO_ATTRIB`` (or ``value``).

    Unset/empty/``0``/``off`` disable collection, ``1``/``on`` enable the
    cheap aggregate planes, ``deep`` additionally keeps per-site cone
    detail.  Anything else is a :class:`UsageError`, mirroring the other
    ``REPRO_*`` switches.
    """
    raw = os.environ.get(ATTRIB_ENV, "") if value is None else value
    text = raw.strip().lower()
    if text in ("", "0", "off", "false", "no"):
        return "off"
    if text in ("1", "on", "true", "yes"):
        return "on"
    if text == "deep":
        return "deep"
    raise UsageError(
        f"{ATTRIB_ENV} must be one of off/on/deep (got {raw!r})"
    )


def effort_units(decisions: int, backtracks: int, implications: int) -> int:
    """Wall-free effort of one PODEM call.

    Backtracks weigh double: each one both undoes a decision and forces
    a re-implication of the flipped assignment.
    """
    return decisions + 2 * backtracks + implications


def _band(value: int) -> str:
    """Power-of-two bucket label (exclusive upper bound) for histograms."""
    if value <= 0:
        return "0"
    return str(1 << value.bit_length())


class AttribCollector:
    """Append-only effort ledgers for the three attribution planes.

    State is plain ints/lists/dicts so deltas pickle across worker
    processes; merge order (submission order in the executor) is the
    only order, which makes the folded state independent of job count.
    """

    __slots__ = ("mode", "_podem", "_sim", "_scalars", "_cones", "_moves",
                 "_seen_points")

    def __init__(self) -> None:
        self.mode = "off"
        self._podem: List[Dict[str, Any]] = []
        #: ``level:kind`` bucket -> [good_words, sweep_words]
        self._sim: Dict[str, List[int]] = {}
        self._scalars: Dict[str, int] = {
            "cone_walks": 0, "good_batches": 0, "sweep_candidates": 0,
        }
        #: deep mode only: fault-site key -> cone walks
        self._cones: Dict[str, int] = {}
        self._moves: List[Dict[str, Any]] = []
        #: optimizer design points already evaluated this run (revisits)
        self._seen_points: Set[Tuple] = set()

    # -- lifecycle -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def deep(self) -> bool:
        return self.mode == "deep"

    def configure(self, mode: str) -> None:
        """Set the collection mode (``off``/``on``/``deep``)."""
        if mode not in ATTRIB_MODES:
            raise UsageError(
                f"attribution mode must be one of {'/'.join(ATTRIB_MODES)} "
                f"(got {mode!r})"
            )
        self.mode = mode

    def reset(self) -> None:
        """Drop all collected state (the mode survives)."""
        del self._podem[:]
        self._sim.clear()
        for name in sorted(self._scalars):
            self._scalars[name] = 0
        self._cones.clear()
        del self._moves[:]
        self._seen_points.clear()

    # -- plane 1: ATPG -------------------------------------------------
    def podem_record(self, record: Dict[str, Any]) -> None:
        """Append one per-fault PODEM effort record (see ``podem()``)."""
        self._podem.append(record)
        _PODEM_RECORDS.inc()

    # -- plane 2: simulation -------------------------------------------
    def sim_good(self, profile: Mapping[str, int], words: int = 1) -> None:
        """Attribute ``words`` good-value batches over a netlist profile."""
        self._scalars["good_batches"] += words
        sim = self._sim
        for bucket, gates in sorted(profile.items()):
            row = sim.get(bucket)
            if row is None:
                row = sim[bucket] = [0, 0]
            row[0] += gates * words

    def sim_sweep(self, candidates: int) -> None:
        """Attribute survivor-sweep work (fault x word candidates)."""
        self._scalars["sweep_candidates"] += candidates

    def sim_cone(self, profile: Mapping[str, int], site: str) -> None:
        """Attribute one detection cone walk over the cone's profile."""
        self._scalars["cone_walks"] += 1
        sim = self._sim
        for bucket, gates in sorted(profile.items()):
            row = sim.get(bucket)
            if row is None:
                row = sim[bucket] = [0, 0]
            row[1] += gates
        if self.mode == "deep":
            self._cones[site] = self._cones.get(site, 0) + 1

    # -- plane 3: optimizer --------------------------------------------
    def move_event(
        self,
        *,
        kind: str,
        subject: str,
        version_from: int,
        version_to: int,
        tat_before: int,
        tat_after: Optional[int],
        outcome: str,
        point: Optional[Tuple] = None,
    ) -> None:
        """Append one candidate-move event to the trajectory stream.

        ``point`` is a hashable design-point key; a point seen earlier in
        the same run classifies the event as a revisit (``cache: hit``),
        the baseline wasted-work signal the metaheuristic PR must beat.
        """
        cache = "none"
        if point is not None:
            if point in self._seen_points:
                cache = "hit"
            else:
                self._seen_points.add(point)
                cache = "miss"
        self._moves.append({
            "cache": cache,
            "kind": kind,
            "outcome": outcome,
            "seq": len(self._moves),
            "subject": subject,
            "tat_after": tat_after,
            "tat_before": tat_before,
            "version_from": version_from,
            "version_to": version_to,
        })
        _MOVE_EVENTS.inc()

    # -- cross-process deltas ------------------------------------------
    def mark(self) -> Dict[str, Any]:
        """Snapshot for a later :meth:`delta_since` (cheap, by-value)."""
        return {
            "cones": dict(sorted(self._cones.items())),
            "moves": len(self._moves),
            "podem": len(self._podem),
            "scalars": dict(sorted(self._scalars.items())),
            "sim": {
                bucket: (row[0], row[1])
                for bucket, row in sorted(self._sim.items())
            },
        }

    def delta_since(self, mark: Mapping[str, Any]) -> Dict[str, Any]:
        """Picklable increment of the collector state since ``mark``.

        Zero increments are dropped so an idle worker ships an empty
        delta; list planes ship the appended suffix.
        """
        sim: Dict[str, List[int]] = {}
        base_sim = mark["sim"]
        for bucket, row in sorted(self._sim.items()):
            base = base_sim.get(bucket, (0, 0))
            good, sweep = row[0] - base[0], row[1] - base[1]
            if good or sweep:
                sim[bucket] = [good, sweep]
        scalars: Dict[str, int] = {}
        base_scalars = mark["scalars"]
        for name, value in sorted(self._scalars.items()):
            grown = value - base_scalars.get(name, 0)
            if grown:
                scalars[name] = grown
        cones: Dict[str, int] = {}
        base_cones = mark["cones"]
        for site, walks in sorted(self._cones.items()):
            grown = walks - base_cones.get(site, 0)
            if grown:
                cones[site] = grown
        delta: Dict[str, Any] = {}
        podem = self._podem[mark["podem"]:]
        if podem:
            delta["podem"] = podem
        moves = self._moves[mark["moves"]:]
        if moves:
            delta["moves"] = moves
        if sim:
            delta["sim"] = sim
        if scalars:
            delta["scalars"] = scalars
        if cones:
            delta["cones"] = cones
        return delta

    def merge_delta(self, delta: Mapping[str, Any]) -> None:
        """Fold a worker's delta in (idempotence is the caller's job).

        The companion metric counters are *not* re-incremented here --
        they ship through the metrics registry's own delta machinery.
        """
        self._podem.extend(delta.get("podem", ()))
        self._moves.extend(delta.get("moves", ()))
        sim = self._sim
        for bucket, grown in sorted(delta.get("sim", {}).items()):
            row = sim.get(bucket)
            if row is None:
                row = sim[bucket] = [0, 0]
            row[0] += grown[0]
            row[1] += grown[1]
        for name, grown in sorted(delta.get("scalars", {}).items()):
            self._scalars[name] = self._scalars.get(name, 0) + grown
        for site, grown in sorted(delta.get("cones", {}).items()):
            self._cones[site] = self._cones.get(site, 0) + grown


#: process-wide collector; worker processes inherit its state at fork
#: and ship increments back through the executor's result tuples.
ATTRIB = AttribCollector()


# ----------------------------------------------------------------------
# artifact construction
# ----------------------------------------------------------------------
def _fault_id(record: Mapping[str, Any]) -> str:
    location = record["gate"]
    if record["pin"] is not None:
        location = f"{location}.pin{record['pin']}"
    return f"{record['netlist']}::{location}/sa{record['stuck']}"


def _atpg_plane(records: Sequence[Mapping[str, Any]], top_k: int) -> Dict[str, Any]:
    totals = {
        "aborted": 0, "backtracks": 0, "calls": 0, "decisions": 0,
        "detected": 0, "effort": 0, "implications": 0, "redundant": 0,
        "restarts": 0,
    }
    difficulty: Dict[str, int] = {}
    by_fault: Dict[str, Dict[str, Any]] = {}
    classes: Dict[str, Dict[str, Dict[str, int]]] = {
        "cone_depth": {}, "gate_kind": {}, "site": {},
    }
    for record in records:
        effort = effort_units(
            record["decisions"], record["backtracks"], record["implications"]
        )
        totals["calls"] += 1
        totals["decisions"] += record["decisions"]
        totals["backtracks"] += record["backtracks"]
        totals["implications"] += record["implications"]
        totals["restarts"] += record["restarts"]
        totals["effort"] += effort
        totals[record["status"]] += 1
        bucket = _band(effort)
        difficulty[bucket] = difficulty.get(bucket, 0) + 1

        fault = _fault_id(record)
        entry = by_fault.get(fault)
        if entry is None:
            entry = by_fault[fault] = {
                "abort_cause": None, "backtracks": 0, "calls": 0,
                "cone_depth": record["cone_depth"], "decisions": 0,
                "effort": 0, "fault": fault, "gate_kind": record["gate_kind"],
                "implications": 0, "restarts": 0, "site": record["site"],
                "status": record["status"],
            }
        entry["calls"] += 1
        entry["decisions"] += record["decisions"]
        entry["backtracks"] += record["backtracks"]
        entry["implications"] += record["implications"]
        entry["restarts"] += record["restarts"]
        entry["effort"] += effort
        entry["status"] = record["status"]
        entry["abort_cause"] = ABORT_CAUSES[record["status"]]

        for plane, key in (
            ("cone_depth", _band(record["cone_depth"])),
            ("gate_kind", record["gate_kind"]),
            ("site", record["site"]),
        ):
            rollup = classes[plane].get(key)
            if rollup is None:
                rollup = classes[plane][key] = {
                    "aborted": 0, "calls": 0, "effort": 0, "redundant": 0,
                }
            rollup["calls"] += 1
            rollup["effort"] += effort
            if record["status"] != "detected":
                rollup[record["status"]] += 1

    ranked = sorted(
        by_fault.values(), key=lambda entry: (-entry["effort"], entry["fault"])
    )
    return {
        "classes": classes,
        "difficulty": difficulty,
        "faults": len(by_fault),
        "hard_faults": ranked[:top_k],
        "totals": totals,
    }


def _optimizer_plane(moves: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    accepted = sum(1 for event in moves if event["outcome"] == "accept")
    rejected = len(moves) - accepted
    revisits = sum(1 for event in moves if event["cache"] == "hit")
    plateau = 0
    for event in reversed(moves):
        if event["outcome"] == "accept":
            break
        plateau += 1
    move_yield: Dict[str, Dict[str, int]] = {}
    for event in moves:
        row = move_yield.get(event["kind"])
        if row is None:
            row = move_yield[event["kind"]] = {"accepted": 0, "candidates": 0}
        row["candidates"] += 1
        if event["outcome"] == "accept":
            row["accepted"] += 1
    candidates = len(moves)
    summary = {
        "accepted": accepted,
        "candidates": candidates,
        "plateau": plateau,
        "rejected": rejected,
        "revisits": revisits,
        "wasted_ratio": round(rejected / candidates, 6) if candidates else 0.0,
        "yield": move_yield,
    }
    return {"events": [dict(sorted(event.items())) for event in moves],
            "summary": summary}


def build_artifact(
    collector: AttribCollector,
    counters: Mapping[str, int],
    *,
    system: str,
    seed: int,
    quick: bool,
    top_k: int,
) -> Dict[str, Any]:
    """Assemble the byte-stable ``repro-attrib`` artifact.

    ``counters`` must be the metrics-registry counter values accumulated
    over exactly the attributed run (reset to run end), so the
    reconciliation section can hold the attribution planes to the
    existing ``atpg.*`` / ``faultsim.*`` counters *exactly*.
    """
    atpg = _atpg_plane(collector._podem, top_k)
    scalars = collector._scalars
    buckets = {
        bucket: {"good_words": row[0], "sweep_words": row[1]}
        for bucket, row in sorted(collector._sim.items())
    }
    sim: Dict[str, Any] = {
        "buckets": buckets,
        "cone_walks": scalars["cone_walks"],
        "good_batches": scalars["good_batches"],
        "sweep_candidates": scalars["sweep_candidates"],
    }
    if collector.deep:
        sim["cones"] = dict(sorted(collector._cones.items()))

    totals = atpg["totals"]
    cone_touches = (
        counters.get("faultsim.cone.builds", 0)
        + counters.get("faultsim.cone.reuses", 0)
    )
    checks = (
        ("atpg.podem.calls", totals["calls"], counters.get("atpg.podem.calls", 0)),
        ("atpg.podem.decisions", totals["decisions"],
         counters.get("atpg.podem.decisions", 0)),
        ("atpg.podem.backtracks", totals["backtracks"],
         counters.get("atpg.podem.backtracks", 0)),
        ("atpg.podem.aborts", totals["aborted"],
         counters.get("atpg.podem.aborts", 0)),
        ("atpg.podem.redundant", totals["redundant"],
         counters.get("atpg.podem.redundant", 0)),
        ("faultsim.batches", scalars["good_batches"],
         counters.get("faultsim.batches", 0)),
        ("faultsim.events", scalars["sweep_candidates"],
         counters.get("faultsim.events", 0)),
        ("faultsim.cone.builds+reuses", scalars["cone_walks"], cone_touches),
    )
    reconciliation = {
        name: {"attrib": attributed, "counter": counted,
               "ok": attributed == counted}
        for name, attributed, counted in checks
    }
    return {
        "deep": collector.deep,
        "planes": {
            "atpg": atpg,
            "optimizer": _optimizer_plane(collector._moves),
            "sim": sim,
        },
        "quick": quick,
        "reconciliation": reconciliation,
        "schema": ATTRIB_SCHEMA,
        "schema_version": ATTRIB_SCHEMA_VERSION,
        "seed": seed,
        "system": system,
        "top_k": top_k,
    }


def artifact_json(artifact: Mapping[str, Any]) -> str:
    """Canonical byte-stable serialization of an attribution artifact."""
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# schema validation (dependency-free; also ``python -m repro.obs.attrib``)
# ----------------------------------------------------------------------
_HARD_FAULT_FIELDS = (
    "abort_cause", "backtracks", "calls", "cone_depth", "decisions",
    "effort", "fault", "gate_kind", "implications", "restarts", "site",
    "status",
)
_EVENT_FIELDS = (
    "cache", "kind", "outcome", "seq", "subject", "tat_after",
    "tat_before", "version_from", "version_to",
)


def _count_problems(mapping: Any, fields: Sequence[str], label: str,
                    problems: List[str]) -> None:
    if not isinstance(mapping, dict):
        problems.append(f"{label} must be an object")
        return
    for name in fields:
        value = mapping.get(name)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{label}.{name} must be a non-negative integer")


def validate_artifact(payload: Any) -> List[str]:
    """Return all schema problems of one artifact (empty when valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["artifact must be a JSON object"]
    if payload.get("schema") != ATTRIB_SCHEMA:
        problems.append(f"schema must be {ATTRIB_SCHEMA!r}")
    version = payload.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append("schema_version must be an integer")
    elif version > ATTRIB_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than this checker "
            f"({ATTRIB_SCHEMA_VERSION})"
        )
    elif version < 1:
        problems.append("schema_version must be >= 1")
    if not isinstance(payload.get("system"), str) or not payload.get("system"):
        problems.append("system must be a non-empty string")
    if not isinstance(payload.get("seed"), int) or isinstance(payload.get("seed"), bool):
        problems.append("seed must be an integer")
    for flag in ("deep", "quick"):
        if not isinstance(payload.get(flag), bool):
            problems.append(f"{flag} must be a boolean")
    top_k = payload.get("top_k")
    if not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1:
        problems.append("top_k must be a positive integer")

    planes = payload.get("planes")
    if not isinstance(planes, dict):
        problems.append("planes must be an object")
        planes = {}
    for name in ("atpg", "optimizer", "sim"):
        if not isinstance(planes.get(name), dict):
            problems.append(f"planes.{name} must be an object")

    atpg = planes.get("atpg")
    if isinstance(atpg, dict):
        _count_problems(
            atpg.get("totals"),
            ("aborted", "backtracks", "calls", "decisions", "detected",
             "effort", "implications", "redundant", "restarts"),
            "planes.atpg.totals", problems,
        )
        hard = atpg.get("hard_faults")
        if not isinstance(hard, list):
            problems.append("planes.atpg.hard_faults must be a list")
        else:
            for index, entry in enumerate(hard):
                if not isinstance(entry, dict):
                    problems.append(
                        f"planes.atpg.hard_faults[{index}] must be an object")
                    continue
                missing = [f for f in _HARD_FAULT_FIELDS if f not in entry]
                if missing:
                    problems.append(
                        f"planes.atpg.hard_faults[{index}] missing "
                        f"{', '.join(missing)}"
                    )
                elif entry.get("status") not in _PODEM_STATUSES:
                    problems.append(
                        f"planes.atpg.hard_faults[{index}].status must be "
                        f"one of {', '.join(_PODEM_STATUSES)}"
                    )

    sim = planes.get("sim")
    if isinstance(sim, dict):
        _count_problems(
            sim, ("cone_walks", "good_batches", "sweep_candidates"),
            "planes.sim", problems,
        )
        buckets = sim.get("buckets")
        if not isinstance(buckets, dict):
            problems.append("planes.sim.buckets must be an object")
        else:
            for bucket, row in sorted(buckets.items()):
                level, _, kind = bucket.partition(":")
                if not level.isdigit() or not kind:
                    problems.append(
                        f"planes.sim.buckets key {bucket!r} must look like "
                        f"'<level>:<kind>'"
                    )
                _count_problems(
                    row, ("good_words", "sweep_words"),
                    f"planes.sim.buckets[{bucket!r}]", problems,
                )

    optimizer = planes.get("optimizer")
    if isinstance(optimizer, dict):
        events = optimizer.get("events")
        if not isinstance(events, list):
            problems.append("planes.optimizer.events must be a list")
        else:
            for index, event in enumerate(events):
                if not isinstance(event, dict):
                    problems.append(
                        f"planes.optimizer.events[{index}] must be an object")
                    continue
                missing = [f for f in _EVENT_FIELDS if f not in event]
                if missing:
                    problems.append(
                        f"planes.optimizer.events[{index}] missing "
                        f"{', '.join(missing)}"
                    )
                elif event.get("seq") != index:
                    problems.append(
                        f"planes.optimizer.events[{index}].seq must be {index}"
                    )
        if not isinstance(optimizer.get("summary"), dict):
            problems.append("planes.optimizer.summary must be an object")

    reconciliation = payload.get("reconciliation")
    if not isinstance(reconciliation, dict):
        problems.append("reconciliation must be an object")
    else:
        for name, entry in sorted(reconciliation.items()):
            if not isinstance(entry, dict):
                problems.append(f"reconciliation[{name!r}] must be an object")
                continue
            _count_problems(entry, ("attrib", "counter"),
                            f"reconciliation[{name!r}]", problems)
            if isinstance(entry.get("attrib"), int) and isinstance(entry.get("counter"), int):
                expected = entry["attrib"] == entry["counter"]
                if entry.get("ok") is not expected:
                    problems.append(
                        f"reconciliation[{name!r}].ok disagrees with its "
                        f"attrib/counter values"
                    )
    return problems


def require_valid_artifact(payload: Any) -> Dict[str, Any]:
    """Validate an artifact, raising :class:`AttribSchemaError` on problems."""
    problems = validate_artifact(payload)
    if problems:
        raise AttribSchemaError("; ".join(problems))
    return payload


def validate_file(path: str) -> Tuple[bool, str]:
    """Validate one artifact file; returns ``(ok, message)``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        return False, f"cannot read: {error}"
    except ValueError as error:
        return False, f"not JSON: {error}"
    problems = validate_artifact(payload)
    if problems:
        return False, "; ".join(problems)
    return True, f"{payload['system']} seed={payload['seed']}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: validate attribution artifacts; exit 1 on any failure."""
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.attrib FILE [FILE...]",
              file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        ok, message = validate_file(path)
        if ok:
            print(f"ok   {path} ({message})")
        else:
            failures += 1
            print(f"FAIL {path}: {message}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
