"""Timers and the per-stage aggregation behind ``repro profile``.

:func:`profile_section` is the one helper instrumented code uses: it
always feeds a duration histogram named ``<name>.time`` (seconds) in the
shared registry, and additionally records a tracer span when tracing is
enabled.  Aggregating those histograms by their first dotted component
gives the pipeline's stage breakdown -- ``atpg.run.time`` and
``atpg.podem.time`` both roll up into the ``atpg`` stage.

Stage times are *inclusive*: fault simulation runs inside ATPG, and the
optimizer re-plans through the chip-level planner, so nested stages
overlap and the rows do not sum to the wall-clock total.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_REGISTRY, MetricsRegistry
from repro.obs.tracer import DEFAULT_TRACER, NOOP_SPAN

#: (display name, metric prefix) for every pipeline stage, in flow order
PIPELINE_STAGES: List[Tuple[str, str]] = [
    ("core-level", "corelevel"),
    ("transparency", "transparency"),
    ("chip-level", "chiplevel"),
    ("ATPG", "atpg"),
    ("fault-sim", "faultsim"),
    ("kernel", "kernel"),
    ("optimizer", "optimizer"),
    ("schedule", "schedule"),
]


class Timer:
    """Plain elapsed-seconds context manager (``timer.elapsed``)."""

    __slots__ = ("elapsed", "_start")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._start
        return False


#: per-section duration histograms, cached so ``__exit__`` skips the
#: registry lookup (safe: ``reset()`` zeroes instruments in place)
_TIME_HISTOGRAMS: Dict[str, "object"] = {}


def _time_histogram(name: str):
    histogram = _TIME_HISTOGRAMS.get(name)
    if histogram is None:
        histogram = _TIME_HISTOGRAMS[name] = DEFAULT_REGISTRY.histogram(name + ".time")
    return histogram


class _Section:
    """Span + duration-histogram recorder for one named section."""

    __slots__ = ("name", "_span", "_start")

    def __init__(self, name: str, args: Dict) -> None:
        self.name = name
        self._span = DEFAULT_TRACER.span(name, **args) if DEFAULT_TRACER.enabled else NOOP_SPAN
        self._start = 0.0

    def set(self, **args) -> None:
        self._span.set(**args)

    def __enter__(self) -> "_Section":
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._start
        _time_histogram(self.name).observe(elapsed)
        self._span.__exit__(*exc)
        return False


def profile_section(name: str, **args) -> _Section:
    """Time a named section into the metrics registry (and trace)."""
    return _Section(name, args)


# ----------------------------------------------------------------------
def stage_rows(
    registry: Optional[MetricsRegistry] = None,
    stages: Sequence[Tuple[str, str]] = tuple(PIPELINE_STAGES),
) -> List[Dict]:
    """Per-stage totals: time, section calls, and that stage's counters.

    A stage's time is the sum of every ``<prefix>.*.time`` histogram;
    its counters are every counter under the same dotted prefix.
    """
    registry = registry or DEFAULT_REGISTRY
    rows: List[Dict] = []
    for display, prefix in stages:
        seconds = 0.0
        calls = 0
        for name, summary in registry.histograms(prefix + ".").items():
            if name.endswith(".time"):
                seconds += summary.get("sum", 0.0)
                calls += int(summary.get("count", 0))
        counters = {
            name[len(prefix) + 1 :]: value
            for name, value in registry.counters(prefix + ".").items()
            if value
        }
        rows.append(
            {
                "stage": display,
                "prefix": prefix,
                "seconds": seconds,
                "calls": calls,
                "counters": counters,
            }
        )
    return rows
