"""Process-local metrics: counters, gauges, and percentile histograms.

The registry is the always-on half of the observability layer: counting
is cheap enough (one integer add through a cached instrument object) to
leave enabled permanently, so every PODEM call, fault-sim batch, BFS
expansion, and scheduler reservation attempt is accounted for whether or
not a trace is being recorded.  Instruments are created once and cached
at module scope by the instrumented code::

    _BACKTRACKS = METRICS.counter("atpg.podem.backtracks")
    ...
    _BACKTRACKS.inc(result.backtracks)

``reset()`` zeroes instruments *in place* so those cached references
stay valid across benchmark iterations and ``repro profile`` runs.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Union

Number = Union[int, float]

#: the well-defined shape of an empty histogram summary: all keys
#: present, order statistics ``None`` (JSON ``null``)
EMPTY_SUMMARY: Dict[str, Optional[float]] = {
    "count": 0,
    "sum": 0.0,
    "min": None,
    "max": None,
    "mean": None,
    "p50": None,
    "p90": None,
    "p99": None,
}


class Counter:
    """A monotonically increasing count (events, items, cycles)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: Number = 1) -> None:
        self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        self._value = 0


class Gauge:
    """A point-in-time value (last cadence, current budget headroom)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self._value = value

    @property
    def value(self) -> Optional[Number]:
        return self._value

    def reset(self) -> None:
        self._value = None


class Histogram:
    """A distribution of observations with nearest-rank percentiles."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: Number) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return sum(self._values)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile of the observations (p in 0..100).

        An empty histogram has no ranks: the percentile is ``None``
        (never an exception), matching the ``None``-valued percentile
        fields of :meth:`summary` so callers and renderers share one
        well-defined empty shape.
        """
        if not self._values:
            return None
        ordered = sorted(self._values)
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, Optional[float]]:
        """count / sum / min / max / mean / p50 / p90 / p99.

        Every key is always present; on an empty histogram the count is
        0, the sum 0.0, and the order statistics ``None``.
        """
        if not self._values:
            return dict(EMPTY_SUMMARY)
        return {
            "count": len(self._values),
            "sum": self.sum,
            "min": min(self._values),
            "max": max(self._values),
            "mean": self.sum / len(self._values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        self._values.clear()


class MetricsRegistry:
    """Create-or-get registry for named instruments (one flat namespace).

    Thread-safe for instrument creation; increments themselves rely on
    the GIL's atomicity for plain adds, which is all the hot paths need.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get(self._counters, Counter, name)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, Gauge, name)

    def histogram(self, name: str) -> Histogram:
        return self._get(self._histograms, Histogram, name)

    def _get(self, table, factory, name: str):
        instrument = table.get(name)
        if instrument is None:
            with self._lock:
                instrument = table.get(name)
                if instrument is None:
                    for other in (self._counters, self._gauges, self._histograms):
                        if other is not table and name in other:
                            raise ValueError(
                                f"instrument {name!r} already registered with a different kind"
                            )
                    instrument = table[name] = factory(name)
        return instrument

    # ------------------------------------------------------------------
    def counters(self, prefix: str = "") -> Dict[str, Number]:
        """Counter values, optionally restricted to a dotted prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        return {
            name: h.summary()
            for name, h in sorted(self._histograms.items())
            if name.startswith(prefix) and h.count
        }

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready view of every instrument with data.

        Unlike :meth:`histograms` (ledger records, where an empty
        histogram is dead weight), the snapshot keeps empty histograms
        as their well-defined empty summary -- a scraper should see
        ``serve.job_latency`` exist with count 0 before the first job
        finishes, not have the series pop into existence later.
        """
        return {
            "counters": {k: v for k, v in self.counters().items() if v},
            "gauges": {
                name: g.value
                for name, g in sorted(self._gauges.items())
                if g.value is not None
            },
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument in place (cached references stay live)."""
        for table in (self._counters, self._gauges, self._histograms):
            for instrument in table.values():
                instrument.reset()

    # ------------------------------------------------------------------
    # cross-process accounting (worker pools)
    # ------------------------------------------------------------------
    def mark(self) -> Dict[str, Dict[str, Number]]:
        """A cheap position marker for :meth:`delta_since`.

        Worker processes inherit the parent registry's state at fork, so
        a (mark, delta) pair brackets exactly the work one task did.
        """
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "histograms": {name: h.count for name, h in self._histograms.items()},
        }

    def delta_since(self, mark: Dict[str, Dict[str, Number]]) -> Dict[str, Dict]:
        """Everything recorded since ``mark`` (picklable, mergeable).

        Counters come back as increments, histograms as the list of new
        observations; gauges are point-in-time values and are excluded.
        """
        counter_base = mark["counters"]
        histogram_base = mark["histograms"]
        counters = {}
        for name, c in self._counters.items():
            increment = c.value - counter_base.get(name, 0)
            if increment:
                counters[name] = increment
        histograms = {}
        for name, h in self._histograms.items():
            base = int(histogram_base.get(name, 0))
            if h.count > base:
                histograms[name] = list(h._values[base:])
        return {"counters": counters, "histograms": histograms}

    def merge_delta(self, delta: Dict[str, Dict]) -> None:
        """Fold a worker's :meth:`delta_since` result into this registry."""
        for name, increment in delta.get("counters", {}).items():
            self.counter(name).inc(increment)
        for name, values in delta.get("histograms", {}).items():
            histogram = self.histogram(name)
            for value in values:
                histogram.observe(value)


#: the process-wide registry every instrumented module shares
DEFAULT_REGISTRY = MetricsRegistry()
