"""Run reports: waterfall, hotspots, and counter diff as markdown/HTML.

A :class:`RunReport` combines the three views the observatory produces
for one measured run:

* a **stage waterfall** derived from trace spans -- when each pipeline
  stage first started, when it last finished, and how much span time it
  accumulated, drawn as horizontal bars on the run's timeline;
* **top-k hotspots** from the profiler's ``<section>.time`` histograms
  (total seconds, calls, mean, max per instrumented section);
* a **counter diff** against a baseline ledger record -- every counter
  that changed, appeared, or disappeared, plus how many matched.

Reports render to GitHub-flavoured markdown (:meth:`RunReport.to_markdown`)
or a dependency-free standalone HTML page (:meth:`RunReport.to_html`);
``repro report`` writes either and CI uploads them as artifacts.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PIPELINE_STAGES
from repro.obs.regress import compare_counters

#: width (characters) of the markdown waterfall bars
_BAR_COLUMNS = 48


# ----------------------------------------------------------------------
# view extraction
# ----------------------------------------------------------------------
def stage_waterfall(
    trace_events: Sequence[Dict],
    stages: Sequence[Tuple[str, str]] = tuple(PIPELINE_STAGES),
) -> List[Dict]:
    """Per-stage timeline rows from Chrome trace events.

    ``start``/``end`` are seconds relative to the earliest span in the
    trace; ``busy`` sums the durations of the stage's outermost spans
    (minimum recorded depth), so nested re-entries are not counted
    twice.  Stages with no spans are omitted.
    """
    if not trace_events:
        return []
    origin = min(event["ts"] for event in trace_events)
    rows: List[Dict] = []
    for display, prefix in stages:
        spans = [
            event
            for event in trace_events
            if event["name"] == prefix or event["name"].startswith(prefix + ".")
        ]
        if not spans:
            continue
        min_depth = min(event.get("args", {}).get("depth", 0) for event in spans)
        busy_us = sum(
            event["dur"]
            for event in spans
            if event.get("args", {}).get("depth", 0) == min_depth
        )
        rows.append(
            {
                "stage": display,
                "prefix": prefix,
                "start": (min(event["ts"] for event in spans) - origin) / 1e6,
                "end": (max(event["ts"] + event["dur"] for event in spans) - origin)
                / 1e6,
                "busy": busy_us / 1e6,
                "spans": len(spans),
            }
        )
    return rows


def hotspots(registry: MetricsRegistry, top_k: int = 10) -> List[Dict]:
    """The ``top_k`` instrumented sections by total time."""
    rows = []
    for name, summary in registry.histograms().items():
        if not name.endswith(".time"):
            continue
        rows.append(
            {
                "section": name[: -len(".time")],
                "seconds": summary["sum"],
                "calls": int(summary["count"]),
                "mean": summary["mean"],
                "max": summary["max"],
            }
        )
    rows.sort(key=lambda row: (-row["seconds"], row["section"]))
    return rows[:top_k]


def counter_diff(candidate: Dict, baseline: Optional[Dict]) -> Dict:
    """Changed/added/removed counters vs a baseline record's counters."""
    if baseline is None:
        return {"available": False, "changed": [], "unchanged": len(candidate)}
    drifts = compare_counters(candidate, baseline, ignore=())
    changed = [
        {"counter": d.counter, "baseline": d.baseline, "candidate": d.candidate}
        for d in drifts
    ]
    matched = len(set(candidate) & set(baseline)) - sum(
        1 for d in drifts if d.baseline is not None and d.candidate is not None
    )
    return {"available": True, "changed": changed, "unchanged": matched}


def attrib_views(artifact: Optional[Dict]) -> Optional[Dict]:
    """Renderable rows from a ``repro-attrib`` artifact (or ``None``).

    Three views, one per attribution plane: the hard-fault table as-is
    (already ranked and truncated to top-k by the builder), simulation
    buckets ranked by total words touched, and the optimizer convergence
    summary flattened to label/value pairs.
    """
    if not artifact:
        return None
    planes = artifact.get("planes", {})
    atpg = planes.get("atpg", {})
    sim = planes.get("sim", {})
    optimizer = planes.get("optimizer", {}).get("summary", {})
    buckets = [
        {
            "bucket": bucket,
            "good_words": row["good_words"],
            "sweep_words": row["sweep_words"],
            "total": row["good_words"] + row["sweep_words"],
        }
        for bucket, row in sorted(sim.get("buckets", {}).items())
    ]
    buckets.sort(key=lambda row: (-row["total"], row["bucket"]))
    totals = atpg.get("totals", {})
    convergence = [
        ("candidate moves", optimizer.get("candidates", 0)),
        ("accepted", optimizer.get("accepted", 0)),
        ("rejected", optimizer.get("rejected", 0)),
        ("design-point revisits", optimizer.get("revisits", 0)),
        ("trailing plateau", optimizer.get("plateau", 0)),
        ("wasted-move ratio", optimizer.get("wasted_ratio", 0.0)),
    ]
    return {
        "hard_faults": list(atpg.get("hard_faults", [])),
        "atpg_totals": totals,
        "sim_buckets": buckets,
        "sim_scalars": {
            "cone_walks": sim.get("cone_walks", 0),
            "good_batches": sim.get("good_batches", 0),
            "sweep_candidates": sim.get("sweep_candidates", 0),
        },
        "convergence": convergence,
        "move_yield": [
            {"kind": kind, **row}
            for kind, row in sorted(optimizer.get("yield", {}).items())
        ],
    }


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
@dataclass
class RunReport:
    """One run's observability views, renderable as markdown or HTML."""

    title: str
    record: Dict  # the run's ledger record
    baseline: Optional[Dict] = None  # baseline ledger record, if any
    waterfall: List[Dict] = field(default_factory=list)
    hotspots: List[Dict] = field(default_factory=list)
    summary: Dict = field(default_factory=dict)  # headline plan numbers

    def __post_init__(self) -> None:
        self.diff = counter_diff(
            self.record.get("counters", {}),
            self.baseline.get("counters") if self.baseline else None,
        )
        self.attrib = attrib_views(self.record.get("attrib"))

    # ------------------------------------------------------------------
    def _header_facts(self) -> List[Tuple[str, str]]:
        record = self.record
        env = record.get("env", {})
        wall = sum(record["samples"]) / len(record["samples"])
        facts = [
            ("series", record["bench"]),
            ("timestamp", record["timestamp"]),
            ("git sha", (record.get("git_sha") or "unversioned")[:12]),
            ("wall time", f"{wall:.3f}s over {len(record['samples'])} sample(s)"),
            (
                "environment",
                f"python {env.get('python')}, {env.get('platform')}, "
                f"{env.get('cpus')} CPUs, REPRO_JOBS={env.get('repro_jobs')}",
            ),
        ]
        if self.baseline:
            facts.append(
                (
                    "baseline",
                    f"{self.baseline['timestamp']} "
                    f"({(self.baseline.get('git_sha') or 'unversioned')[:12]})",
                )
            )
        return facts

    def _waterfall_scale(self) -> float:
        return max((row["end"] for row in self.waterfall), default=0.0)

    # ------------------------------------------------------------------
    def to_markdown(self) -> str:
        lines = [f"# Run report — {self.title}", ""]
        for key, value in self._header_facts():
            lines.append(f"- **{key}**: {value}")
        lines.append("")

        if self.summary:
            lines.append("## Plan summary")
            lines.append("")
            lines.append("| metric | value |")
            lines.append("| --- | ---: |")
            for key, value in self.summary.items():
                lines.append(f"| {key} | {value} |")
            lines.append("")

        if self.waterfall:
            lines.append("## Stage waterfall")
            lines.append("")
            total = self._waterfall_scale()
            lines.append("```text")
            width = max(len(row["stage"]) for row in self.waterfall)
            for row in self.waterfall:
                offset = int(_BAR_COLUMNS * row["start"] / total) if total else 0
                extent = max(
                    1, int(_BAR_COLUMNS * (row["end"] - row["start"]) / total)
                ) if total else 1
                bar = " " * offset + "█" * min(extent, _BAR_COLUMNS - offset)
                lines.append(
                    f"{row['stage']:<{width}}  |{bar:<{_BAR_COLUMNS}}| "
                    f"{row['busy'] * 1000:9.1f} ms  ({row['spans']} spans)"
                )
            lines.append("```")
            lines.append(
                "Bars show first-start to last-finish on the run timeline; "
                "times are the stage's outermost span totals (stages nest)."
            )
            lines.append("")

        if self.hotspots:
            lines.append("## Hotspots (top sections by total time)")
            lines.append("")
            lines.append("| section | total (ms) | calls | mean (ms) | max (ms) |")
            lines.append("| --- | ---: | ---: | ---: | ---: |")
            for row in self.hotspots:
                lines.append(
                    f"| `{row['section']}` | {row['seconds'] * 1000:.1f} "
                    f"| {row['calls']} | {row['mean'] * 1000:.2f} "
                    f"| {row['max'] * 1000:.2f} |"
                )
            lines.append("")

        if self.attrib:
            views = self.attrib
            lines.append("## Search-effort attribution")
            lines.append("")
            totals = views["atpg_totals"]
            lines.append(
                f"ATPG: {totals.get('calls', 0)} PODEM calls, "
                f"{totals.get('effort', 0)} effort units "
                f"({totals.get('decisions', 0)} decisions, "
                f"{totals.get('backtracks', 0)} backtracks, "
                f"{totals.get('implications', 0)} implications)."
            )
            lines.append("")
            if views["hard_faults"]:
                lines.append("### Hardest faults")
                lines.append("")
                lines.append(
                    "| fault | site | kind | depth | effort | backtracks "
                    "| status | abort cause |"
                )
                lines.append("| --- | --- | --- | ---: | ---: | ---: | --- | --- |")
                for row in views["hard_faults"]:
                    lines.append(
                        f"| `{row['fault']}` | {row['site']} | {row['gate_kind']} "
                        f"| {row['cone_depth']} | {row['effort']} "
                        f"| {row['backtracks']} | {row['status']} "
                        f"| {row['abort_cause'] or '—'} |"
                    )
                lines.append("")
            if views["sim_buckets"]:
                scalars = views["sim_scalars"]
                lines.append("### Simulation work by (level, gate kind)")
                lines.append("")
                lines.append(
                    f"{scalars['good_batches']} good-value batches, "
                    f"{scalars['sweep_candidates']} survivor-sweep candidates, "
                    f"{scalars['cone_walks']} detection-cone walks."
                )
                lines.append("")
                lines.append("| level:kind | good words | sweep words | total |")
                lines.append("| --- | ---: | ---: | ---: |")
                for row in views["sim_buckets"][:10]:
                    lines.append(
                        f"| `{row['bucket']}` | {row['good_words']} "
                        f"| {row['sweep_words']} | {row['total']} |"
                    )
                lines.append("")
            lines.append("### Optimizer convergence")
            lines.append("")
            lines.append("| metric | value |")
            lines.append("| --- | ---: |")
            for label, value in views["convergence"]:
                lines.append(f"| {label} | {value} |")
            for row in views["move_yield"]:
                lines.append(
                    f"| `{row['kind']}` moves accepted | "
                    f"{row['accepted']}/{row['candidates']} |"
                )
            lines.append("")

        lines.append("## Counters vs baseline")
        lines.append("")
        if not self.diff["available"]:
            lines.append("_No baseline record available; counter diff skipped._")
        elif not self.diff["changed"]:
            lines.append(
                f"All {self.diff['unchanged']} counters match the baseline "
                "exactly (deterministic pipeline, unchanged work)."
            )
        else:
            lines.append("| counter | baseline | current |")
            lines.append("| --- | ---: | ---: |")
            for row in self.diff["changed"]:
                base = "absent" if row["baseline"] is None else row["baseline"]
                cand = "absent" if row["candidate"] is None else row["candidate"]
                lines.append(f"| `{row['counter']}` | {base} | {cand} |")
            lines.append("")
            lines.append(f"{self.diff['unchanged']} counters unchanged.")
        lines.append("")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_html(self) -> str:
        def esc(value) -> str:
            return _html.escape(str(value))

        parts = [
            "<!doctype html>",
            "<html><head><meta charset='utf-8'>",
            f"<title>Run report — {esc(self.title)}</title>",
            "<style>",
            "body{font:14px/1.5 system-ui,sans-serif;margin:2rem;max-width:60rem}",
            "table{border-collapse:collapse;margin:0.5rem 0}",
            "td,th{border:1px solid #ccc;padding:0.25rem 0.6rem;text-align:right}",
            "td:first-child,th:first-child{text-align:left}",
            ".lane{position:relative;height:1.2rem;background:#f2f2f2;"
            "width:32rem;display:inline-block;vertical-align:middle}",
            ".bar{position:absolute;top:0.15rem;height:0.9rem;background:#4a7fb5}",
            "code{background:#f5f5f5;padding:0 0.2rem}",
            "</style></head><body>",
            f"<h1>Run report — {esc(self.title)}</h1>",
            "<ul>",
        ]
        for key, value in self._header_facts():
            parts.append(f"<li><b>{esc(key)}</b>: {esc(value)}</li>")
        parts.append("</ul>")

        if self.summary:
            parts.append("<h2>Plan summary</h2><table>")
            parts.append("<tr><th>metric</th><th>value</th></tr>")
            for key, value in self.summary.items():
                parts.append(f"<tr><td>{esc(key)}</td><td>{esc(value)}</td></tr>")
            parts.append("</table>")

        if self.waterfall:
            parts.append("<h2>Stage waterfall</h2><table>")
            parts.append(
                "<tr><th>stage</th><th>timeline</th><th>busy (ms)</th>"
                "<th>spans</th></tr>"
            )
            total = self._waterfall_scale() or 1.0
            for row in self.waterfall:
                left = 100.0 * row["start"] / total
                width = max(0.5, 100.0 * (row["end"] - row["start"]) / total)
                parts.append(
                    f"<tr><td>{esc(row['stage'])}</td>"
                    f"<td><span class='lane'><span class='bar' "
                    f"style='left:{left:.2f}%;width:{width:.2f}%'></span></span></td>"
                    f"<td>{row['busy'] * 1000:.1f}</td>"
                    f"<td>{row['spans']}</td></tr>"
                )
            parts.append("</table>")

        if self.hotspots:
            parts.append("<h2>Hotspots</h2><table>")
            parts.append(
                "<tr><th>section</th><th>total (ms)</th><th>calls</th>"
                "<th>mean (ms)</th><th>max (ms)</th></tr>"
            )
            for row in self.hotspots:
                parts.append(
                    f"<tr><td><code>{esc(row['section'])}</code></td>"
                    f"<td>{row['seconds'] * 1000:.1f}</td><td>{row['calls']}</td>"
                    f"<td>{row['mean'] * 1000:.2f}</td>"
                    f"<td>{row['max'] * 1000:.2f}</td></tr>"
                )
            parts.append("</table>")

        if self.attrib:
            views = self.attrib
            totals = views["atpg_totals"]
            parts.append("<h2>Search-effort attribution</h2>")
            parts.append(
                f"<p>ATPG: {totals.get('calls', 0)} PODEM calls, "
                f"{totals.get('effort', 0)} effort units "
                f"({totals.get('decisions', 0)} decisions, "
                f"{totals.get('backtracks', 0)} backtracks, "
                f"{totals.get('implications', 0)} implications).</p>"
            )
            if views["hard_faults"]:
                parts.append("<h3>Hardest faults</h3><table>")
                parts.append(
                    "<tr><th>fault</th><th>site</th><th>kind</th><th>depth</th>"
                    "<th>effort</th><th>backtracks</th><th>status</th>"
                    "<th>abort cause</th></tr>"
                )
                for row in views["hard_faults"]:
                    parts.append(
                        f"<tr><td><code>{esc(row['fault'])}</code></td>"
                        f"<td>{esc(row['site'])}</td><td>{esc(row['gate_kind'])}</td>"
                        f"<td>{row['cone_depth']}</td><td>{row['effort']}</td>"
                        f"<td>{row['backtracks']}</td><td>{esc(row['status'])}</td>"
                        f"<td>{esc(row['abort_cause'] or '—')}</td></tr>"
                    )
                parts.append("</table>")
            if views["sim_buckets"]:
                scalars = views["sim_scalars"]
                parts.append("<h3>Simulation work by (level, gate kind)</h3>")
                parts.append(
                    f"<p>{scalars['good_batches']} good-value batches, "
                    f"{scalars['sweep_candidates']} survivor-sweep candidates, "
                    f"{scalars['cone_walks']} detection-cone walks.</p>"
                )
                parts.append(
                    "<table><tr><th>level:kind</th><th>good words</th>"
                    "<th>sweep words</th><th>total</th></tr>"
                )
                for row in views["sim_buckets"][:10]:
                    parts.append(
                        f"<tr><td><code>{esc(row['bucket'])}</code></td>"
                        f"<td>{row['good_words']}</td><td>{row['sweep_words']}</td>"
                        f"<td>{row['total']}</td></tr>"
                    )
                parts.append("</table>")
            parts.append("<h3>Optimizer convergence</h3><table>")
            parts.append("<tr><th>metric</th><th>value</th></tr>")
            for label, value in views["convergence"]:
                parts.append(f"<tr><td>{esc(label)}</td><td>{esc(value)}</td></tr>")
            for row in views["move_yield"]:
                parts.append(
                    f"<tr><td><code>{esc(row['kind'])}</code> moves accepted</td>"
                    f"<td>{row['accepted']}/{row['candidates']}</td></tr>"
                )
            parts.append("</table>")

        parts.append("<h2>Counters vs baseline</h2>")
        if not self.diff["available"]:
            parts.append("<p><i>No baseline record available.</i></p>")
        elif not self.diff["changed"]:
            parts.append(
                f"<p>All {self.diff['unchanged']} counters match the baseline "
                "exactly.</p>"
            )
        else:
            parts.append("<table><tr><th>counter</th><th>baseline</th>"
                         "<th>current</th></tr>")
            for row in self.diff["changed"]:
                base = "absent" if row["baseline"] is None else row["baseline"]
                cand = "absent" if row["candidate"] is None else row["candidate"]
                parts.append(
                    f"<tr><td><code>{esc(row['counter'])}</code></td>"
                    f"<td>{esc(base)}</td><td>{esc(cand)}</td></tr>"
                )
            parts.append(f"</table><p>{self.diff['unchanged']} counters "
                         "unchanged.</p>")
        parts.append("</body></html>")
        return "\n".join(parts)

    def to_json(self) -> str:
        return json.dumps(
            {
                "title": self.title,
                "record": self.record,
                "baseline": self.baseline,
                "waterfall": self.waterfall,
                "hotspots": self.hotspots,
                "summary": self.summary,
                "counter_diff": self.diff,
            },
            indent=2,
            sort_keys=True,
        )


def build_run_report(
    title: str,
    record: Dict,
    baseline: Optional[Dict] = None,
    trace_events: Sequence[Dict] = (),
    registry: Optional[MetricsRegistry] = None,
    summary: Optional[Dict] = None,
    top_k: int = 10,
) -> RunReport:
    """Assemble a :class:`RunReport` from the run's raw observability data."""
    return RunReport(
        title=title,
        record=record,
        baseline=baseline,
        waterfall=stage_waterfall(trace_events),
        hotspots=hotspots(registry, top_k) if registry is not None else [],
        summary=dict(summary or {}),
    )
