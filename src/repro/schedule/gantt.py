"""Text Gantt rendering of a test schedule (cycle occupancy per core)."""

from __future__ import annotations

from typing import List

from repro.schedule.timeline import TestSchedule

#: drawing width of the cycle axis, in characters
_AXIS_COLS = 60


def render_gantt(schedule: TestSchedule, width: int = _AXIS_COLS) -> str:
    """One bar per scheduled test, scaled to ``width`` columns.

    Example::

        GRAPHICS |######________________| 0..547
        GCD      |______########________| 547..1196
    """
    makespan = max(schedule.makespan, 1)
    name_width = max((len(e.core) for e in schedule.entries), default=4)
    lines: List[str] = [
        f"{schedule.soc_name}: {schedule.algorithm} schedule, "
        f"makespan {schedule.makespan} cycles "
        f"(serial {schedule.serial_tat}, {schedule.speedup:.2f}x)"
    ]
    for entry in sorted(schedule.entries, key=lambda e: (e.start, e.end, e.core)):
        lo = round(entry.start * width / makespan)
        hi = max(lo + 1, round(entry.end * width / makespan))
        bar = "_" * lo + "#" * (hi - lo) + "_" * (width - hi)
        tag = " bist" if entry.item.kind == "bist" else ""
        lines.append(
            f"{entry.core:<{name_width}} |{bar}| {entry.start}..{entry.end}{tag}"
        )
    scale = f"0{'cycles':^{width - 1}}{makespan}"
    lines.append(f"{' ' * name_width}  {scale}")
    for session in schedule.sessions():
        cores = ", ".join(sorted(e.core for e in session.entries))
        lines.append(
            f"session {session.index}: [{session.start}, {session.end}) "
            f"util {session.utilization:.2f} -- {cores}"
        )
    return "\n".join(lines)
