"""Shared-resource conflict model for concurrent test sessions.

The paper tests one core at a time; real SOC test integration overlaps
core tests whenever they occupy disjoint test resources (Wu's DSC
scheduling, Sehgal et al.'s session planning for wrapped cores).  For
each core under test we derive the complete set of resources its test
occupies while it runs:

* the core under test itself (its scan chain and gated clock),
* every *conduit* core whose transparency carries its stimuli or
  responses (a core in transparency mode cannot be scan-tested),
* every transparency transfer (``UsageKey``) those paths reserve,
* the chip pins that source its stimuli and sink its responses
  (one ATE channel cannot drive two different cores' data at once),
* the system-level test muxes giving it direct pin access, and
* the shared memory-BIST controller, for memory-core sessions.

Two tests may overlap in time iff their resource sets are disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.soc.plan import CoreTestPlan, SocTestPlan

#: a schedulable resource; the first element names its kind:
#: ("core", name) | ("xfer", core, kind, key) | ("pin", dir, name)
#: | ("tmux", kind, core, port, lo, width) | ("bist", "controller")
Resource = Tuple


@dataclass(frozen=True)
class TestItem:
    """One schedulable unit of the chip test (a core's full test)."""

    __test__ = False  # not a pytest class, despite the name

    core: str
    duration: int
    resources: FrozenSet[Resource]
    #: concurrent scan activity (flip-flops toggling while this runs)
    activity: int = 0
    kind: str = "logic"  # "logic" | "bist"

    def conflicts_with(self, other: "TestItem") -> bool:
        return bool(self.resources & other.resources)


# ----------------------------------------------------------------------
# chip-pin cone traversal
# ----------------------------------------------------------------------
class _PinTracer:
    """Walk the interconnect to find the chip pins a core's test uses.

    The walk mirrors the planner's traversal but only needs names: it
    follows nets backward from the core-under-test inputs through the
    conduit cores' justify paths to chip PIs, and forward from observed
    output slices through propagate paths to chip POs.
    """

    def __init__(self, plan: SocTestPlan) -> None:
        self.plan = plan
        self.soc = plan.soc

    def _version_of(self, core_name: str):
        core = self.soc.cores[core_name]
        return core.version(self.plan.selection.get(core_name, 0))

    def input_pins(self, core_name: str, port: str, visited: FrozenSet) -> Set[str]:
        """Chip PIs reachable backward from ``core_name.port``."""
        key = (core_name, port)
        if key in visited:
            return set()
        visited = visited | {key}
        pins: Set[str] = set()
        for net in self.soc.drivers_of(core_name, port):
            if net.source.core is None:
                pins.add(net.source.port)
                continue
            upstream = self.soc.cores.get(net.source.core)
            if upstream is None or upstream.is_memory:
                continue
            pins |= self._justify_pins(
                net.source.core, net.source.port, net.source.lo, net.source.width, visited
            )
        return pins

    def _justify_pins(
        self, core_name: str, port: str, lo: int, width: int, visited: FrozenSet
    ) -> Set[str]:
        version = self._version_of(core_name)
        keys = [
            k
            for k in version.justify_paths
            if k[0] == port and k[1] < lo + width and lo < k[1] + k[2]
        ]
        pins: Set[str] = set()
        for k in keys:
            for terminal_port in version.justify_paths[k].terminal_ports:
                pins |= self.input_pins(core_name, terminal_port, visited)
        return pins

    def output_pins(
        self, core_name: str, port: str, lo: int, width: int, visited: FrozenSet
    ) -> Set[str]:
        """Chip POs reachable forward from ``core_name.port[lo+width]``."""
        key = (core_name, port, lo, width)
        if key in visited:
            return set()
        visited = visited | {key}
        pins: Set[str] = set()
        for net in self.soc.readers_of(core_name, port):
            if net.source.lo >= lo + width or lo >= net.source.hi:
                continue
            if net.dest.core is None:
                pins.add(net.dest.port)
                continue
            downstream = self.soc.cores.get(net.dest.core)
            if downstream is None or downstream.is_memory:
                continue
            version = self._version_of(net.dest.core)
            path = version.propagate_paths.get(net.dest.port)
            if path is None:
                continue
            for terminal in path.terminals:
                pins |= self.output_pins(
                    net.dest.core, terminal.comp, terminal.lo, terminal.width, visited
                )
        return pins


# ----------------------------------------------------------------------
def resource_set(plan: SocTestPlan, core_plan: CoreTestPlan) -> FrozenSet[Resource]:
    """Every resource ``core_plan``'s test occupies while it runs."""
    resources: Set[Resource] = {("core", core_plan.core)}
    for (conduit, kind, key) in core_plan.all_usages():
        resources.add(("core", conduit))
        resources.add(("xfer", conduit, kind, key))
    tracer = _PinTracer(plan)
    for delivery in core_plan.deliveries:
        if delivery.via_test_mux:
            width = plan.soc.cores[core_plan.core].port_width(delivery.port)
            resources.add(("tmux", "input", core_plan.core, delivery.port, 0, width))
            continue
        for pin in tracer.input_pins(core_plan.core, delivery.port, frozenset()):
            resources.add(("pin", "in", pin))
    for observation in core_plan.observations:
        if observation.via_test_mux:
            resources.add(
                ("tmux", "output", core_plan.core, observation.port,
                 observation.lo, observation.width)
            )
            continue
        for pin in tracer.output_pins(
            core_plan.core, observation.port, observation.lo, observation.width, frozenset()
        ):
            resources.add(("pin", "out", pin))
    return frozenset(resources)


def build_test_items(plan: SocTestPlan, include_bist: bool = False) -> List[TestItem]:
    """Schedulable items for a finished plan (optionally + memory BIST).

    Memory-core BIST sessions share one BIST controller, so they
    serialize against each other but overlap freely with any logic-core
    test whose resources they don't touch.
    """
    items = [
        TestItem(
            core=core_plan.core,
            duration=core_plan.tat,
            resources=resource_set(plan, core_plan),
            activity=plan.soc.cores[core_plan.core].flip_flops,
        )
        for core_plan in plan.core_plans.values()
    ]
    if include_bist:
        from repro.bist.controller import plan_memory_bist

        bist = plan_memory_bist(plan.soc)
        for row in bist.rows:
            items.append(
                TestItem(
                    core=row.core,
                    duration=row.cycles,
                    resources=frozenset(
                        {("core", row.core), ("bist", "controller")}
                    ),
                    activity=row.width,
                    kind="bist",
                )
            )
    return items


def conflict_pairs(items: List[TestItem]) -> List[Tuple[str, str]]:
    """All pairs of items that may never overlap (sorted, deduped)."""
    pairs = []
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            if a.conflicts_with(b):
                pairs.append(tuple(sorted((a.core, b.core))))
    return sorted(set(pairs))
