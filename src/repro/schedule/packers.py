"""The schedulers: greedy list scheduling and session graph coloring.

Both consume the same :class:`TestItem` list and produce a validated
:class:`TestSchedule`:

* :class:`GreedyListScheduler` places the longest tests first at the
  earliest cycle where no conflicting test overlaps and the scan-power
  budget holds -- starts are staggered freely, like Wu's DSC scheduler.
* :class:`SessionPacker` colors the conflict graph (largest-degree
  first) so each color class becomes one test *session* whose members
  all start together, matching controllers that only sequence whole
  sessions; sessions run back to back.

The greedy scheduler's makespan is never worse than the packer's on the
same items, but the packer's schedule needs a simpler controller.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional

from repro.errors import ScheduleError
from repro.obs import METRICS, profile_section
from repro.schedule.conflicts import TestItem
from repro.schedule.timeline import ScheduledTest, TestSchedule

logger = logging.getLogger("repro.schedule")

#: a start candidate rejected because a reserved resource was busy
_WAITS = METRICS.counter("schedule.reservation.waits")
#: alternate start candidates probed after the first choice failed
_RETRIES = METRICS.counter("schedule.reservation.retries")
_POWER_REJECTS = METRICS.counter("schedule.power.rejects")
_ITEMS = METRICS.counter("schedule.items")
_SESSIONS = METRICS.counter("schedule.sessions.packed")


class Scheduler:
    """Common interface: pack test items onto one chip-test timeline."""

    name = "abstract"

    def __init__(self, power_budget: Optional[int] = None) -> None:
        self.power_budget = power_budget

    def schedule(self, soc_name: str, items: List[TestItem]) -> TestSchedule:
        with profile_section("schedule.pack", soc=soc_name, algorithm=self.name):
            _ITEMS.inc(len(items))
            entries = self._place(self._check(items))
            schedule = TestSchedule(
                soc_name=soc_name,
                algorithm=self.name,
                entries=entries,
                power_budget=self.power_budget,
            ).validate()
        _SESSIONS.inc(len(schedule.sessions()))
        logger.debug(
            "%s/%s: %d items -> %d sessions, makespan %d",
            soc_name, self.name, len(items), len(schedule.sessions()), schedule.makespan,
        )
        return schedule

    def _place(self, items: List[TestItem]) -> List[ScheduledTest]:
        raise NotImplementedError

    def _check(self, items: List[TestItem]) -> List[TestItem]:
        if self.power_budget is not None:
            worst = max(items, key=lambda i: i.activity, default=None)
            if worst is not None and worst.activity > self.power_budget:
                raise ScheduleError(
                    f"{worst.core} alone has scan activity {worst.activity} "
                    f"> power budget {self.power_budget}"
                )
        return items


class GreedyListScheduler(Scheduler):
    """Longest-test-first list scheduling with free start staggering."""

    name = "greedy"

    def _place(self, items: List[TestItem]) -> List[ScheduledTest]:
        placed: List[ScheduledTest] = []
        for item in sorted(items, key=lambda i: (-i.duration, i.core)):
            placed.append(ScheduledTest(item=item, start=self._earliest(placed, item)))
        return placed

    def _earliest(self, placed: List[ScheduledTest], item: TestItem) -> int:
        candidates = sorted({0} | {e.end for e in placed})
        for index, start in enumerate(candidates):
            if self._fits(placed, item, start):
                _RETRIES.inc(index)
                return start
        _RETRIES.inc(len(candidates))
        return max(e.end for e in placed) if placed else 0

    def _fits(self, placed: List[ScheduledTest], item: TestItem, start: int) -> bool:
        end = start + item.duration
        overlapping = [e for e in placed if e.start < end and start < e.end]
        if any(e.item.resources & item.resources for e in overlapping):
            _WAITS.inc()
            return False
        if self.power_budget is None:
            return True
        # peak concurrent activity only changes at interval starts
        for probe in [start] + [e.start for e in overlapping if e.start >= start]:
            active = item.activity + sum(
                e.item.activity for e in placed if e.start <= probe < e.end
            )
            if active > self.power_budget:
                _POWER_REJECTS.inc()
                return False
        return True


class SessionPacker(Scheduler):
    """Conflict-graph coloring into back-to-back whole sessions."""

    name = "sessions"

    def _place(self, items: List[TestItem]) -> List[ScheduledTest]:
        order = sorted(
            items,
            key=lambda i: (-sum(i.conflicts_with(o) for o in items if o is not i),
                           -i.duration, i.core),
        )
        sessions: List[List[TestItem]] = []
        for item in order:
            for members in sessions:
                if any(item.conflicts_with(m) for m in members):
                    _WAITS.inc()
                    continue
                if (
                    self.power_budget is not None
                    and item.activity + sum(m.activity for m in members)
                    > self.power_budget
                ):
                    _POWER_REJECTS.inc()
                    continue
                members.append(item)
                break
            else:
                sessions.append([item])
        # longest sessions first: purely cosmetic, makespan is the sum
        sessions.sort(key=lambda ms: (-max(m.duration for m in ms),
                                      min(m.core for m in ms)))
        entries: List[ScheduledTest] = []
        start = 0
        for members in sessions:
            for member in members:
                entries.append(ScheduledTest(item=member, start=start))
            start += max(m.duration for m in members)
        return entries


#: registry used by the CLI and the plan-level convenience API
SCHEDULERS: Dict[str, type] = {
    GreedyListScheduler.name: GreedyListScheduler,
    SessionPacker.name: SessionPacker,
}


def get_scheduler(name: str, power_budget: Optional[int] = None) -> Scheduler:
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ScheduleError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
    return cls(power_budget=power_budget)
