"""Scheduled test timelines: entries, sessions, validation, utilization.

A :class:`TestSchedule` assigns every test item a start cycle.  Entries
whose cycle windows overlap form *sessions* (maximal groups of
transitively overlapping tests, the unit Wu's methodology configures
the test controller for); the schedule's ``makespan`` replaces the
serial TAT sum whenever scheduling is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.schedule.conflicts import TestItem


@dataclass(frozen=True)
class ScheduleViolation:
    """One resource-sharing or power violation found on a timeline."""

    kind: str  # "resource" | "power"
    cores: Tuple[str, ...]
    message: str


@dataclass(frozen=True)
class ScheduledTest:
    """One test item placed on the chip-test timeline."""

    item: TestItem
    start: int

    @property
    def core(self) -> str:
        return self.item.core

    @property
    def end(self) -> int:
        return self.start + self.item.duration

    def overlaps(self, other: "ScheduledTest") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class Session:
    """A maximal group of time-overlapping tests."""

    index: int
    entries: List[ScheduledTest]

    @property
    def start(self) -> int:
        return min(e.start for e in self.entries)

    @property
    def end(self) -> int:
        return max(e.end for e in self.entries)

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def utilization(self) -> float:
        """Mean concurrency over the session window (1.0 = serial)."""
        if self.length == 0:
            return 0.0
        return sum(e.item.duration for e in self.entries) / self.length


@dataclass
class TestSchedule:
    """A complete concurrent schedule for one SOC test plan."""

    __test__ = False  # not a pytest class, despite the name

    soc_name: str
    algorithm: str
    entries: List[ScheduledTest]
    power_budget: Optional[int] = None

    @property
    def makespan(self) -> int:
        """Scheduled TAT: the last response arrives at this cycle."""
        return max((e.end for e in self.entries), default=0)

    @property
    def serial_tat(self) -> int:
        """What the same tests cost applied one at a time."""
        return sum(e.item.duration for e in self.entries)

    @property
    def speedup(self) -> float:
        return self.serial_tat / self.makespan if self.makespan else 1.0

    @property
    def peak_activity(self) -> int:
        """Largest concurrent scan activity anywhere on the timeline."""
        peak = 0
        for probe in self.entries:
            active = sum(
                e.item.activity for e in self.entries
                if e.start <= probe.start < e.end
            )
            peak = max(peak, active)
        return peak

    def entry(self, core: str) -> ScheduledTest:
        for e in self.entries:
            if e.core == core:
                return e
        raise KeyError(core)

    def sessions(self) -> List[Session]:
        """Maximal groups of transitively overlapping tests, in time order."""
        ordered = sorted(self.entries, key=lambda e: (e.start, e.end, e.core))
        sessions: List[Session] = []
        current: List[ScheduledTest] = []
        current_end = None
        for e in ordered:
            if current_end is None or e.start < current_end:
                current.append(e)
                current_end = e.end if current_end is None else max(current_end, e.end)
            else:
                sessions.append(Session(index=len(sessions) + 1, entries=current))
                current, current_end = [e], e.end
        if current:
            sessions.append(Session(index=len(sessions) + 1, entries=current))
        return sessions

    # ------------------------------------------------------------------
    def iter_violations(self) -> Iterator[ScheduleViolation]:
        """Yield every resource or power violation on the timeline.

        Used both by :meth:`validate` (which raises on the first) and by
        the static design-rule checker (:mod:`repro.lint`), which
        collects them all as diagnostics.
        """
        ordered = sorted(self.entries, key=lambda e: e.start)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                if b.start >= a.end:
                    break
                shared = a.item.resources & b.item.resources
                if shared:
                    example = sorted(shared)[0]
                    yield ScheduleViolation(
                        kind="resource",
                        cores=(a.core, b.core),
                        message=(
                            f"{a.core} [{a.start},{a.end}) and {b.core} "
                            f"[{b.start},{b.end}) overlap but share {example}"
                        ),
                    )
        if self.power_budget is not None:
            for probe in ordered:
                active = [e for e in ordered if e.start <= probe.start < e.end]
                total = sum(e.item.activity for e in active)
                if total > self.power_budget:
                    names = ", ".join(e.core for e in active)
                    yield ScheduleViolation(
                        kind="power",
                        cores=tuple(e.core for e in active),
                        message=(
                            f"cycle {probe.start}: activity {total} of ({names}) "
                            f"exceeds power budget {self.power_budget}"
                        ),
                    )

    def validate(self) -> "TestSchedule":
        """Assert no overlapping tests share a resource or break power.

        Raises :class:`ScheduleError` on the first violation; returns
        ``self`` so callers can chain.
        """
        for violation in self.iter_violations():
            raise ScheduleError(violation.message)
        return self
