"""Concurrent test-session scheduling (beyond the paper's serial TAT).

The paper applies core tests one at a time; this package overlaps them
under a shared-resource conflict model (see :mod:`repro.schedule.conflicts`):

* :func:`build_test_items` derives each core test's resource set from a
  finished :class:`~repro.soc.plan.SocTestPlan`,
* two schedulers behind a common interface -- a greedy list scheduler
  and a session graph-coloring packer -- place the items on one chip
  timeline (:mod:`repro.schedule.packers`),
* the resulting :class:`~repro.schedule.timeline.TestSchedule` carries
  per-core start cycles, session makeup, a validator, and a ``makespan``
  that replaces the serial TAT sum,
* an optional scan-power budget caps concurrent activity from day one.

Chained topologies (System1/System2) serialize -- every core's test
borrows its neighbours' transparency -- while SOCs with independent
subsystems (System3/System4) overlap and the makespan drops.
"""

from repro.schedule.conflicts import (
    Resource,
    TestItem,
    build_test_items,
    conflict_pairs,
    resource_set,
)
from repro.schedule.gantt import render_gantt
from repro.schedule.packers import (
    SCHEDULERS,
    GreedyListScheduler,
    Scheduler,
    SessionPacker,
    get_scheduler,
)
from repro.schedule.timeline import (
    ScheduledTest,
    ScheduleViolation,
    Session,
    TestSchedule,
)

__all__ = [
    "Resource",
    "TestItem",
    "build_test_items",
    "conflict_pairs",
    "resource_set",
    "render_gantt",
    "SCHEDULERS",
    "GreedyListScheduler",
    "Scheduler",
    "SessionPacker",
    "get_scheduler",
    "ScheduledTest",
    "ScheduleViolation",
    "Session",
    "TestSchedule",
    "schedule_plan",
]


def schedule_plan(
    plan,
    algorithm: str = "greedy",
    power_budget=None,
    include_bist: bool = False,
    strict: bool = False,
) -> TestSchedule:
    """Schedule a finished SOC test plan into concurrent sessions.

    ``strict=True`` runs the plan-scope design rules (:mod:`repro.lint`)
    first and raises :class:`~repro.errors.LintError` if the plan's
    internal invariants -- reservation windows, mux bookkeeping, TAT
    accounting -- do not hold, so a corrupted plan never reaches the
    packers.
    """
    if strict:
        from repro.lint import strict_gate_plan

        strict_gate_plan(plan)
    items = build_test_items(plan, include_bist=include_bist)
    scheduler = get_scheduler(algorithm, power_budget=power_budget)
    return scheduler.schedule(plan.soc.name, items)
