"""PODEM (Path-Oriented DEcision Making) combinational test generation.

Implements the classic algorithm: pick an objective (activate the fault,
then propagate a D to an observation point), backtrace the objective to a
primary-input assignment, imply, and backtrack on conflicts.  The engine
works on the *combinational view* of a gate netlist -- flip-flop outputs
are assignable pseudo-primary inputs and flip-flop D pins are observed,
which is exactly the situation full-scan/HSCAN cores present.

A fault proven untestable by exhausting the decision tree is *redundant*;
hitting the backtrack limit *aborts*.  Both outcomes feed the paper's
test-efficiency metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import AtpgError
from repro.obs import METRICS
from repro.obs.attrib import ATTRIB
from repro.atpg.values import CONTROLLING, ONE, X, ZERO, eval_gate3, v_not
from repro.faults.model import Fault
from repro.gates.cells import STATE_KINDS, GateKind
from repro.gates.levelize import depth_levels, levelize
from repro.gates.netlist import Gate, GateNetlist

#: PODEM's assignable sources exclude constants (they cannot be set)
_SOURCE_KINDS = (GateKind.INPUT,) + STATE_KINDS

_CALLS = METRICS.counter("atpg.podem.calls")
_BACKTRACKS = METRICS.counter("atpg.podem.backtracks")
_DECISIONS = METRICS.counter("atpg.podem.decisions")
_ABORTS = METRICS.counter("atpg.podem.aborts")
_REDUNDANT = METRICS.counter("atpg.podem.redundant")


class PodemStatus(enum.Enum):
    DETECTED = "detected"
    REDUNDANT = "redundant"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    status: PodemStatus
    #: source assignment achieving detection (only for DETECTED);
    #: unassigned sources are free and may take any value
    assignment: Dict[str, int] = field(default_factory=dict)
    backtracks: int = 0
    #: total decision-tree assignments tried (first choices + flips)
    decisions: int = 0
    #: implication passes (three-valued simulations) run by the search
    implications: int = 0
    #: objectives whose backtrace dead-ended, forcing a backtrack restart
    restarts: int = 0


def podem(
    netlist: GateNetlist,
    fault: Fault,
    assignable: Optional[Set[str]] = None,
    backtrack_limit: int = 200,
    extra_sites: Optional[Sequence[Fault]] = None,
) -> PodemResult:
    """Generate a test for ``fault`` or prove it redundant.

    ``assignable`` restricts which source gates PODEM may control
    (defaults to all inputs and flip-flops); non-assignable sources stay
    X, which is how time-frame expansion models the unknown initial
    state.  ``extra_sites`` injects the same physical fault at additional
    netlist locations (the frame copies produced by unrolling).
    """
    engine = _PodemEngine(netlist, fault, assignable, backtrack_limit, extra_sites or ())
    result = engine.search()
    _CALLS.inc()
    _BACKTRACKS.inc(result.backtracks)
    _DECISIONS.inc(result.decisions)
    if result.status is PodemStatus.ABORTED:
        _ABORTS.inc()
    elif result.status is PodemStatus.REDUNDANT:
        _REDUNDANT.inc()
    if ATTRIB.enabled:
        gate = engine.gates[fault.gate]
        if fault.pin is None:
            site = "stem"
        elif gate.kind in STATE_KINDS:
            site = "flop-pin"
        else:
            site = "pin"
        ATTRIB.podem_record({
            "backtracks": result.backtracks,
            "cone_depth": depth_levels(netlist).get(fault.gate, 0),
            "decisions": result.decisions,
            "gate": fault.gate,
            "gate_kind": gate.kind.value,
            "implications": result.implications,
            "netlist": netlist.name,
            "pin": fault.pin,
            "restarts": result.restarts,
            "site": site,
            "status": result.status.value,
            "stuck": fault.stuck,
        })
    return result


class _PodemEngine:
    def __init__(
        self,
        netlist: GateNetlist,
        fault: Fault,
        assignable: Optional[Set[str]],
        backtrack_limit: int,
        extra_sites: Sequence[Fault] = (),
    ) -> None:
        self.netlist = netlist
        self.fault = fault
        self.extra_sites = list(extra_sites)
        self.backtrack_limit = backtrack_limit
        self.gates: Dict[str, Gate] = {name: netlist.gate(name) for name in netlist.names()}
        self.order = [
            name for name in levelize(netlist)
            if self.gates[name].kind not in _SOURCE_KINDS
            and self.gates[name].kind not in (GateKind.CONST0, GateKind.CONST1)
        ]
        self.level = {name: i for i, name in enumerate(self.order)}
        self.sources = [g.name for g in netlist.gates() if g.kind in _SOURCE_KINDS]
        if assignable is None:
            self.assignable = set(self.sources)
        else:
            self.assignable = set(assignable)
        self.observe: Set[str] = {g.name for g in netlist.outputs}
        for flop in netlist.flops:
            self.observe.add(flop.fanins[0])

        self.fanout = netlist.fanout_map()
        self.assignment: Dict[str, int] = {}
        self.good: Dict[str, int] = {}
        self.faulty: Dict[str, int] = {}

        # a fault on a flop input pin is observed directly at capture: the
        # engine then only needs to *justify* the pin net to the non-stuck value
        gate = self.gates[fault.gate]
        self.justify_only: Optional[Tuple[str, int]] = None
        if fault.pin is not None and gate.kind in STATE_KINDS:
            self.justify_only = (gate.fanins[fault.pin], v_not(fault.stuck))

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def simulate(self) -> None:
        good, faulty = {}, {}
        gates = self.gates
        all_sites = [self.fault] + self.extra_sites
        stem_sites = {f.gate: f.stuck for f in all_sites if f.pin is None}
        pin_sites = {(f.gate, f.pin): f.stuck for f in all_sites if f.pin is not None}
        for name, gate in gates.items():
            kind = gate.kind
            if kind in _SOURCE_KINDS:
                value = self.assignment.get(name, X)
                good[name] = value
                faulty[name] = value
            elif kind is GateKind.CONST0:
                good[name] = ZERO
                faulty[name] = ZERO
            elif kind is GateKind.CONST1:
                good[name] = ONE
                faulty[name] = ONE
        for site_name, stuck in stem_sites.items():
            if site_name in faulty:
                faulty[site_name] = stuck

        for name in self.order:
            gate = gates[name]
            good[name] = eval_gate3(gate.kind, [good[s] for s in gate.fanins])
            if name in stem_sites:
                faulty[name] = stem_sites[name]
                continue
            operands = [faulty[s] for s in gate.fanins]
            if pin_sites and gate.kind not in STATE_KINDS:
                for pin in range(len(operands)):
                    stuck = pin_sites.get((name, pin))
                    if stuck is not None:
                        operands[pin] = stuck
            faulty[name] = eval_gate3(gate.kind, operands)
        self.good, self.faulty = good, faulty

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def _has_d(self, net: str) -> bool:
        g, f = self.good[net], self.faulty[net]
        return g != X and f != X and g != f

    def _unknown(self, net: str) -> bool:
        return self.good[net] == X or self.faulty[net] == X

    def detected(self) -> bool:
        if self.justify_only is not None:
            net, value = self.justify_only
            return self.good[net] == value
        return any(self._has_d(net) for net in self.observe)

    def _activation_net(self) -> str:
        """The net whose good value must differ from the stuck value."""
        if self.fault.pin is None:
            return self.fault.gate
        return self.gates[self.fault.gate].fanins[self.fault.pin]

    def _d_frontier(self) -> List[Gate]:
        frontier = []
        for name in self.order:
            gate = self.gates[name]
            if gate.kind is GateKind.OUTPUT:
                continue
            if self._unknown(name) and any(self._has_d(s) for s in gate.fanins):
                frontier.append(gate)
        return frontier

    def _xpath_exists(self, frontier: Sequence[Gate]) -> bool:
        """Can a D still reach an observation point through X nets?"""
        stack = [g.name for g in frontier]
        visited = set(stack)
        while stack:
            name = stack.pop()
            if name in self.observe:
                return True
            for reader in self.fanout[name]:
                if reader in visited:
                    continue
                reader_gate = self.gates[reader]
                if reader_gate.kind in STATE_KINDS:
                    continue
                if reader_gate.kind is GateKind.OUTPUT or self._unknown(reader):
                    visited.add(reader)
                    stack.append(reader)
        return False

    # ------------------------------------------------------------------
    # objective and backtrace
    # ------------------------------------------------------------------
    def objective(self) -> Optional[Tuple[str, int]]:
        """Next (net, value) goal, or None if the fault is blocked."""
        if self.justify_only is not None:
            net, value = self.justify_only
            if self.good[net] == X:
                return (net, value)
            return None  # justified or conflicting; detected() decides

        activation = self._activation_net()
        desired = v_not(self.fault.stuck)
        if self.good[activation] == X:
            return (activation, desired)
        if self.good[activation] == self.fault.stuck:
            return None  # activation impossible under current assignment

        # a pin fault also needs the faulty gate's *other* pins sensitized
        # before a D appears at its output
        if self.fault.pin is not None and not self._has_d(self.fault.gate):
            goal = self._expose_pin_fault()
            if goal is not None:
                return goal
            if not self._unknown(self.fault.gate):
                return None  # output fully known and equal: fault masked here

        frontier = self._d_frontier()
        if not frontier:
            return None
        if not self._xpath_exists(frontier):
            return None
        # try frontier gates closest to an output first; the objective must
        # target an input that is X in the *good* machine (backtrace steers
        # good values -- faulty-only X inputs resolve via implication)
        for gate in sorted(frontier, key=lambda g: -self.level.get(g.name, 0)):
            controlling = CONTROLLING.get(gate.kind)
            for source in gate.fanins:
                if self.good[source] == X:
                    if controlling is not None:
                        return (source, v_not(controlling))
                    return (source, ZERO)
        return None

    def _expose_pin_fault(self) -> Optional[Tuple[str, int]]:
        """Objective making the faulty gate's output show the pin difference."""
        gate = self.gates[self.fault.gate]
        pin = self.fault.pin
        assert pin is not None
        if gate.kind is GateKind.MUX2:
            d0, d1, select = gate.fanins
            if pin in (0, 1):
                # route the faulty data pin: select must equal the pin index
                if self.good[select] == X:
                    return (select, ONE if pin == 1 else ZERO)
                return None
            # select-pin fault: the two data legs must differ
            if self.good[d0] == X and self.good[d1] != X:
                return (d0, v_not(self.good[d1]))
            if self.good[d1] == X and self.good[d0] != X:
                return (d1, v_not(self.good[d0]))
            if self.good[d0] == X:
                return (d0, ZERO)
            return None
        controlling = CONTROLLING.get(gate.kind)
        for index, source in enumerate(gate.fanins):
            if index == pin:
                continue
            if self.good[source] == X:
                if controlling is not None:
                    return (source, v_not(controlling))
                return (source, ZERO)
        return None

    def backtrace(self, net: str, value: int) -> Optional[Tuple[str, int]]:
        """Walk the objective back to an unassigned assignable source."""
        current, target = net, value
        for _ in range(len(self.gates) + 1):
            gate = self.gates[current]
            kind = gate.kind
            if kind in _SOURCE_KINDS:
                if current in self.assignable and current not in self.assignment:
                    return (current, target)
                return None
            if kind in (GateKind.CONST0, GateKind.CONST1):
                return None
            if kind in (GateKind.BUF, GateKind.OUTPUT):
                current = gate.fanins[0]
                continue
            if kind is GateKind.NOT:
                current, target = gate.fanins[0], v_not(target)
                continue
            if kind in (GateKind.AND, GateKind.NAND, GateKind.OR, GateKind.NOR):
                if kind in (GateKind.NAND, GateKind.NOR):
                    target = v_not(target)
                controlling = CONTROLLING[GateKind.AND if kind in (GateKind.AND, GateKind.NAND) else GateKind.OR]
                unknowns = [s for s in gate.fanins if self.good[s] == X]
                if not unknowns:
                    return None
                if target == controlling:
                    current = unknowns[0]  # one controlling input suffices
                    target = controlling
                else:
                    current = unknowns[0]  # all inputs must be non-controlling
                    target = v_not(controlling)
                continue
            if kind in (GateKind.XOR, GateKind.XNOR):
                a, b = gate.fanins
                if kind is GateKind.XNOR:
                    target = v_not(target)
                if self.good[a] == X:
                    other = self.good[b]
                    current, target = a, (target if other in (ZERO, X) else v_not(target))
                elif self.good[b] == X:
                    other = self.good[a]
                    current, target = b, (target if other in (ZERO, X) else v_not(target))
                else:
                    return None
                continue
            if kind is GateKind.MUX2:
                d0, d1, select = gate.fanins
                select_value = self.good[select]
                if select_value == ZERO:
                    current = d0
                elif select_value == ONE:
                    current = d1
                elif self.good[d0] == target and self.good[d0] != X:
                    current, target = select, ZERO
                elif self.good[d1] == target and self.good[d1] != X:
                    current, target = select, ONE
                elif self.good[d0] == X:
                    current = d0
                elif self.good[d1] == X:
                    current, target = select, ONE
                else:
                    current, target = select, ZERO
                continue
            raise AtpgError(f"backtrace cannot handle gate kind {kind}")
        raise AtpgError("backtrace did not terminate (cyclic netlist?)")

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def search(self) -> PodemResult:
        backtracks = 0
        tried = 0
        implications = 0
        restarts = 0
        decisions: List[Tuple[str, int, bool]] = []  # (source, value, both_tried)
        self.simulate()
        implications += 1
        while True:
            if self.detected():
                return PodemResult(
                    PodemStatus.DETECTED, dict(self.assignment), backtracks,
                    tried, implications, restarts,
                )

            step: Optional[Tuple[str, int]] = None
            goal = self.objective()
            if goal is not None:
                step = self.backtrace(*goal)
                if step is None:
                    restarts += 1

            if step is not None:
                source, value = step
                decisions.append((source, value, False))
                self.assignment[source] = value
                tried += 1
                self.simulate()
                implications += 1
                continue

            # conflict: backtrack
            flipped = False
            while decisions:
                source, value, both_tried = decisions.pop()
                del self.assignment[source]
                if not both_tried:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemResult(
                            PodemStatus.ABORTED, {}, backtracks, tried,
                            implications, restarts,
                        )
                    decisions.append((source, v_not(value), True))
                    self.assignment[source] = v_not(value)
                    tried += 1
                    flipped = True
                    break
            if not flipped:
                return PodemResult(
                    PodemStatus.REDUNDANT, {}, backtracks, tried,
                    implications, restarts,
                )
            self.simulate()
            implications += 1
