"""Three-valued (0/1/X) logic used by PODEM's implication engine.

The fault machine is simulated as a *pair* of three-valued machines
(good, faulty); a net carries a D when good=1/faulty=0 and a D-bar when
good=0/faulty=1.  Values are small ints: 0, 1, and 2 for X.
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.cells import GateKind

ZERO, ONE, X = 0, 1, 2


def v_not(a: int) -> int:
    if a == X:
        return X
    return 1 - a


def v_and(operands: Sequence[int]) -> int:
    result = ONE
    for a in operands:
        if a == ZERO:
            return ZERO
        if a == X:
            result = X
    return result


def v_or(operands: Sequence[int]) -> int:
    result = ZERO
    for a in operands:
        if a == ONE:
            return ONE
        if a == X:
            result = X
    return result


def v_xor(a: int, b: int) -> int:
    if a == X or b == X:
        return X
    return a ^ b


def v_mux(d0: int, d1: int, select: int) -> int:
    if select == ZERO:
        return d0
    if select == ONE:
        return d1
    if d0 == d1:
        return d0
    return X


def eval_gate3(kind: GateKind, operands: Sequence[int]) -> int:
    """Three-valued evaluation of one gate."""
    if kind in (GateKind.BUF, GateKind.OUTPUT):
        return operands[0]
    if kind is GateKind.NOT:
        return v_not(operands[0])
    if kind is GateKind.AND:
        return v_and(operands)
    if kind is GateKind.NAND:
        return v_not(v_and(operands))
    if kind is GateKind.OR:
        return v_or(operands)
    if kind is GateKind.NOR:
        return v_not(v_or(operands))
    if kind is GateKind.XOR:
        return v_xor(operands[0], operands[1])
    if kind is GateKind.XNOR:
        return v_not(v_xor(operands[0], operands[1]))
    if kind is GateKind.MUX2:
        return v_mux(operands[0], operands[1], operands[2])
    if kind is GateKind.CONST0:
        return ZERO
    if kind is GateKind.CONST1:
        return ONE
    raise ValueError(f"cannot evaluate kind {kind} in three-valued logic")


#: controlling input value per gate kind (None if the kind has none)
CONTROLLING = {
    GateKind.AND: ZERO,
    GateKind.NAND: ZERO,
    GateKind.OR: ONE,
    GateKind.NOR: ONE,
}

#: whether the gate inverts on the controlled/non-controlled path
INVERTS = {
    GateKind.NAND: True,
    GateKind.NOR: True,
    GateKind.NOT: True,
    GateKind.XNOR: True,
}
