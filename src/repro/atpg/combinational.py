"""Two-phase combinational ATPG: random patterns, then PODEM.

The random phase detects the easy majority of faults cheaply (with fault
dropping); PODEM targets each survivor, proving redundancies along the
way.  Every deterministic pattern is immediately fault-simulated against
the remaining fault list so fortuitous detections drop too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.atpg.compaction import compact_patterns
from repro.atpg.podem import PodemStatus, podem
from repro.faults.collapse import collapse_faults
from repro.faults.coverage import CoverageReport
from repro.faults.model import Fault, full_fault_universe
from repro.faults.simulator import FaultSimulator
from repro.gates.cells import GateKind
from repro.gates.netlist import GateNetlist
from repro.obs import METRICS, profile_section

Pattern = Dict[str, int]

_RUNS = METRICS.counter("atpg.runs")
_RANDOM_DETECTED = METRICS.counter("atpg.random.detected")
_PODEM_DETECTED = METRICS.counter("atpg.podem.detected")
_PATTERNS = METRICS.counter("atpg.patterns")


@dataclass
class AtpgOutcome:
    """The products of one ATPG run."""

    patterns: List[Pattern]
    report: CoverageReport
    redundant: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)
    random_detected: int = 0
    podem_detected: int = 0


class CombinationalAtpg:
    """ATPG driver for one (full-scan view) netlist."""

    def __init__(
        self,
        netlist: GateNetlist,
        seed: int = 0,
        backtrack_limit: int = 150,
        random_batches: int = 8,
        random_batch_size: int = 32,
        compact: bool = True,
    ) -> None:
        self.netlist = netlist
        self.seed = seed
        self.backtrack_limit = backtrack_limit
        self.random_batches = random_batches
        self.random_batch_size = random_batch_size
        self.compact = compact
        self._sources = [
            g.name
            for g in netlist.gates()
            if g.kind in (GateKind.INPUT, GateKind.DFF, GateKind.SDFF)
        ]

    # ------------------------------------------------------------------
    def run(self, faults: Optional[Sequence[Fault]] = None) -> AtpgOutcome:
        """Generate a compacted pattern set covering the fault list."""
        with profile_section("atpg.run", gates=len(list(self.netlist.names()))):
            outcome = self._run(faults)
        _RUNS.inc()
        _RANDOM_DETECTED.inc(outcome.random_detected)
        _PODEM_DETECTED.inc(outcome.podem_detected)
        _PATTERNS.inc(len(outcome.patterns))
        return outcome

    def _run(self, faults: Optional[Sequence[Fault]] = None) -> AtpgOutcome:
        if faults is None:
            faults = collapse_faults(self.netlist, full_fault_universe(self.netlist))
        faults = list(faults)
        total = len(faults)
        rng = random.Random(self.seed)
        simulator = FaultSimulator(self.netlist)

        patterns: List[Pattern] = []
        alive = faults
        random_detected = 0

        # ---------------- random phase with early stopping ----------------
        useless_batches = 0
        for _ in range(self.random_batches):
            if not alive or useless_batches >= 2:
                break
            batch = [self._random_pattern(rng) for _ in range(self.random_batch_size)]
            result = simulator.run(batch, alive)
            if result.detected:
                useless_batches = 0
                random_detected += len(result.detected)
                kept_indices = sorted({result.first_detection[f] for f in result.detected})
                patterns.extend(batch[i] for i in kept_indices)
                alive = result.undetected
            else:
                useless_batches += 1

        # ---------------- deterministic phase ----------------
        redundant: List[Fault] = []
        aborted: List[Fault] = []
        podem_detected = 0
        index = 0
        while index < len(alive):
            fault = alive[index]
            outcome = podem(self.netlist, fault, backtrack_limit=self.backtrack_limit)
            if outcome.status is PodemStatus.DETECTED:
                pattern = self._complete(outcome.assignment, rng)
                patterns.append(pattern)
                # the new pattern detects the target and often others too
                survivors = simulator.run([pattern], alive[index + 1 :]).undetected
                podem_detected += 1 + (len(alive) - index - 1 - len(survivors))
                alive = alive[:index] + survivors
            elif outcome.status is PodemStatus.REDUNDANT:
                redundant.append(fault)
                alive.pop(index)
            else:
                aborted.append(fault)
                alive.pop(index)

        detected_count = random_detected + podem_detected
        if self.compact and patterns:
            detected_faults = [f for f in faults if f not in set(redundant) | set(aborted)]
            patterns = compact_patterns(self.netlist, patterns, detected_faults)

        report = CoverageReport(
            total=total,
            detected=detected_count,
            redundant=len(redundant),
            aborted=len(aborted),
            undetected_faults=list(redundant) + list(aborted),
        )
        return AtpgOutcome(
            patterns=patterns,
            report=report,
            redundant=redundant,
            aborted=aborted,
            random_detected=random_detected,
            podem_detected=podem_detected,
        )

    # ------------------------------------------------------------------
    def _random_pattern(self, rng: random.Random) -> Pattern:
        return {name: rng.getrandbits(1) for name in self._sources}

    def _complete(self, assignment: Dict[str, int], rng: random.Random) -> Pattern:
        pattern = dict(assignment)
        for name in self._sources:
            if name not in pattern:
                pattern[name] = rng.getrandbits(1)
        return pattern
