"""Bounded sequential ATPG via time-frame expansion.

The paper's Table 3 grades the *original* (no DFT) circuits with an
in-house sequential ATPG and finds very low coverage.  We reproduce that
measurement with two cooperating pieces:

1. random functional sequences graded by the sequential fault simulator
   (:func:`repro.faults.simulator.sequential_fault_grade`), and
2. a K-frame unrolling of the netlist on which the combinational PODEM
   runs with the fault injected into *every* frame copy and the frame-0
   state held at X (non-assignable sources).

The PODEM activation objective targets the last frame copy; tests that
require activating only earlier frames may be missed, so the result is a
slight under-approximation -- conservative in the direction the paper's
point needs (sequential coverage without DFT is poor).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.podem import PodemStatus, podem
from repro.faults.collapse import collapse_faults
from repro.faults.coverage import CoverageReport
from repro.faults.model import Fault, full_fault_universe
from repro.faults.simulator import sequential_fault_grade
from repro.gates.cells import STATE_KINDS, GateKind
from repro.gates.netlist import GateNetlist


@dataclass
class Unrolled:
    """A K-frame combinational expansion of a sequential netlist."""

    netlist: GateNetlist
    frames: int
    #: frame-0 pseudo-inputs modelling the unknown initial state
    initial_state_inputs: Set[str] = field(default_factory=set)

    def frame_gate(self, frame: int, original: str) -> str:
        return f"f{frame}::{original}"

    def frame_fault(self, frame: int, fault: Fault) -> Fault:
        return Fault(self.frame_gate(frame, fault.gate), fault.pin, fault.stuck)


def unroll(netlist: GateNetlist, frames: int) -> Unrolled:
    """Expand ``netlist`` into ``frames`` combinational time frames.

    Frame-0 flip-flop outputs become fresh INPUT gates (returned in
    ``initial_state_inputs`` so ATPG can treat them as uncontrollable);
    frame ``k`` flip-flop outputs are buffers of the frame ``k-1`` D
    nets.  Primary outputs are replicated per frame, so a fault effect is
    observable in whichever frame it first reaches a PO.
    """
    if frames < 1:
        raise ValueError("frames must be >= 1")
    result = GateNetlist(f"{netlist.name}@x{frames}")
    initial_state: Set[str] = set()

    def gate_name(frame: int, original: str) -> str:
        return f"f{frame}::{original}"

    for frame in range(frames):
        for gate in netlist.gates():
            name = gate_name(frame, gate.name)
            if gate.kind in STATE_KINDS:
                if frame == 0:
                    result.add_gate(name, GateKind.INPUT)
                    initial_state.add(name)
                else:
                    # Q(k) = D-net(k-1); for SDFF the functional D pin is used
                    previous_d = gate_name(frame - 1, gate.fanins[0])
                    result.add_gate(name, GateKind.BUF, [previous_d])
            elif gate.kind is GateKind.INPUT:
                result.add_gate(name, GateKind.INPUT)
            else:
                result.add_gate(name, gate.kind, [gate_name(frame, s) for s in gate.fanins])
    result.validate()
    return Unrolled(netlist=result, frames=frames, initial_state_inputs=initial_state)


@dataclass
class SequentialAtpgOutcome:
    """Products of a sequential ATPG run."""

    report: CoverageReport
    sequences: List[List[Dict[str, int]]] = field(default_factory=list)
    random_detected: int = 0
    deterministic_detected: int = 0


class SequentialAtpg:
    """Random sequences + bounded time-frame-expansion PODEM."""

    def __init__(
        self,
        netlist: GateNetlist,
        seed: int = 0,
        random_sequences: int = 64,
        sequence_length: int = 16,
        frames: int = 3,
        backtrack_limit: int = 50,
        fault_sample: Optional[int] = None,
        deterministic_budget: int = 100,
    ) -> None:
        self.netlist = netlist
        self.seed = seed
        self.random_sequences = random_sequences
        self.sequence_length = sequence_length
        self.frames = frames
        self.backtrack_limit = backtrack_limit
        self.fault_sample = fault_sample
        self.deterministic_budget = deterministic_budget

    def run(self, faults: Optional[Sequence[Fault]] = None) -> SequentialAtpgOutcome:
        if faults is None:
            faults = collapse_faults(self.netlist, full_fault_universe(self.netlist))
        rng = random.Random(self.seed)
        input_names = [g.name for g in self.netlist.inputs]

        sequences = [
            [
                {name: rng.getrandbits(1) for name in input_names}
                for _ in range(self.sequence_length)
            ]
            for _ in range(self.random_sequences)
        ]
        graded = sequential_fault_grade(
            self.netlist, sequences, faults, sample=self.fault_sample, seed=self.seed
        )
        alive = graded.undetected
        random_detected = len(graded.detected)

        deterministic_detected = 0
        expansion = unroll(self.netlist, self.frames)
        assignable = {
            g.name
            for g in expansion.netlist.inputs
            if g.name not in expansion.initial_state_inputs
        }
        budget = min(self.deterministic_budget, len(alive))
        still_alive: List[Fault] = list(alive[budget:])
        for fault in alive[:budget]:
            frame_faults = [expansion.frame_fault(k, fault) for k in range(expansion.frames)]
            target = frame_faults[-1]
            extra = frame_faults[:-1]
            outcome = podem(
                expansion.netlist,
                target,
                assignable=assignable,
                backtrack_limit=self.backtrack_limit,
                extra_sites=extra,
            )
            if outcome.status is PodemStatus.DETECTED:
                deterministic_detected += 1
            else:
                still_alive.append(fault)

        report = CoverageReport(
            total=graded.total,
            detected=random_detected + deterministic_detected,
            undetected_faults=still_alive,
        )
        return SequentialAtpgOutcome(
            report=report,
            sequences=sequences,
            random_detected=random_detected,
            deterministic_detected=deterministic_detected,
        )
