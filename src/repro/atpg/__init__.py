"""Automatic test pattern generation.

Full-scan cores reduce to combinational ATPG (exactly the property the
paper's HSCAN-based flow relies on): a random-pattern phase with fault
dropping detects the easy faults, PODEM handles the hard ones and proves
redundancies, and static compaction trims the pattern set.  A bounded
time-frame-expansion wrapper provides the sequential ATPG used for the
"original circuit" rows of Table 3.
"""

from repro.atpg.podem import PodemResult, PodemStatus, podem
from repro.atpg.combinational import CombinationalAtpg, AtpgOutcome
from repro.atpg.compaction import compact_patterns
from repro.atpg.sequential import SequentialAtpg, unroll

__all__ = [
    "PodemResult",
    "PodemStatus",
    "podem",
    "CombinationalAtpg",
    "AtpgOutcome",
    "compact_patterns",
    "SequentialAtpg",
    "unroll",
]
