"""Static test-set compaction.

Reverse-order greedy pass: fault-simulate the patterns in reverse and
keep only the ones credited with a first detection.  Patterns generated
late (by PODEM, highly specific) tend to cover the easy faults of early
random patterns, so reverse order discards many of the early ones --
the classic "reverse order fault simulation" compaction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.faults.model import Fault
from repro.faults.simulator import FaultSimulator
from repro.gates.netlist import GateNetlist

Pattern = Dict[str, int]


def compact_patterns(
    netlist: GateNetlist,
    patterns: Sequence[Pattern],
    faults: Sequence[Fault],
) -> List[Pattern]:
    """Drop patterns that detect nothing first in reverse simulation order.

    The returned list preserves the original relative order of the kept
    patterns.
    """
    if not patterns:
        return []
    simulator = FaultSimulator(netlist)
    reversed_patterns = list(reversed(patterns))
    result = simulator.run(reversed_patterns, faults)
    credited = {result.first_detection[f] for f in result.detected}
    keep_original_indices = sorted(len(patterns) - 1 - i for i in credited)
    return [patterns[i] for i in keep_original_indices]
