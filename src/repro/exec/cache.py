"""Incremental planning cache: reuse per-core test plans across selections.

``plan_soc_test`` plans each core under test by searching justification
and propagation paths through the *transparency versions of the cores it
routes through*.  Most of the design space shares that work: when the
optimizer (or the exhaustive sweep) changes one core's version, every
core whose paths never touch the changed core re-plans to exactly the
same result.  The cache makes that observation explicit:

* while a core is planned, the planner records every ``(core, version)``
  it consulted -- the plan's *dependency footprint*;
* the finished :class:`~repro.soc.plan.CoreTestPlan` is stored under
  that footprint (plus the test-mux state the planner entered with, and
  the forced-mux sets, which also shape the search);
* a later ``plan_soc_test`` call reuses the entry whenever the current
  selection agrees with the footprint -- turning the O(cores x versions)
  inner loop of iterative improvement into mostly cache hits.

Correctness contract (see DESIGN.md, "Plan cache"):

* cache entries are keyed under a SHA-1 **fingerprint** of everything
  the planner reads -- interconnect nets, chip pins, per-version path
  latencies/resources/terminals, scan depths, vector counts -- computed
  when the cache is attached to the SOC;
* every lookup re-checks a cheap structural **signature** (core names,
  version counts, net count); if the SOC gained a core, a net, or a
  version since the cache was built, the stale cache is dropped and
  rebuilt automatically;
* in-place mutation of an existing version's paths (same counts, new
  latencies) is not detected per call -- code that does that must call
  :func:`invalidate_plan_cache` (or build a fresh ``Soc``);
* cached ``CoreTestPlan`` objects are shared across plans and must be
  treated as immutable -- nothing in the planner, optimizer, scheduler,
  or reports mutates one after creation.

Set ``REPRO_PLAN_CACHE=0`` to disable caching globally; callers can
force it per call via ``plan_soc_test(..., use_cache=...)``.  Cached and
uncached runs are bit-identical (a regression test sweeps every system
both ways).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import UsageError
from repro.obs import METRICS

CACHE_ENV = "REPRO_PLAN_CACHE"

_HITS = METRICS.counter("exec.cache.hits")
_MISSES = METRICS.counter("exec.cache.misses")
_INVALIDATIONS = METRICS.counter("exec.cache.invalidations")

_TRUTHY = ("", "1", "true", "on", "yes")
_FALSY = ("0", "false", "off", "no")


def cache_enabled() -> bool:
    """The global default (on unless ``REPRO_PLAN_CACHE`` disables it).

    Accepts the usual boolean spellings (case-insensitive); anything
    else raises :class:`UsageError` naming the offending value -- a
    typo like ``REPRO_PLAN_CACHE=fales`` must not silently flip the
    caching behaviour.
    """
    raw = os.environ.get(CACHE_ENV)
    if raw is None:
        return True
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise UsageError(
        f"{CACHE_ENV}={raw!r} is not a boolean "
        f"(use one of {_TRUTHY[1:] + _FALSY})"
    )


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def soc_signature(soc) -> Tuple:
    """Cheap structural signature checked on every cache lookup."""
    return (
        soc.name,
        len(soc.nets),
        tuple(sorted(soc.cores)),
        tuple(core.version_count for _, core in sorted(soc.cores.items())),
    )


def soc_fingerprint(soc) -> str:
    """SHA-1 over everything the planner reads from the SOC.

    Stable across processes and runs (no ids, no hash randomization):
    two structurally identical SOCs fingerprint identically.
    """
    parts: List = [
        soc.name,
        sorted(soc.chip_inputs.items()),
        sorted(soc.chip_outputs.items()),
        sorted(str(net) for net in soc.nets),
    ]
    for name, core in sorted(soc.cores.items()):
        entry: List = [
            name,
            core.is_memory,
            core.test_vectors,
            core.scan_depth,
            core.hscan_vectors,
        ]
        for version in core.versions:
            vp: List = [version.name, version.extra_cells]
            for key, path in sorted(version.justify_paths.items()):
                vp.append(
                    (
                        key,
                        path.latency,
                        sorted(path.terminal_ports),
                        sorted(map(repr, path.arcs_used)),
                    )
                )
            for port, path in sorted(version.propagate_paths.items()):
                vp.append(
                    (
                        port,
                        path.latency,
                        [(t.comp, t.lo, t.width) for t in path.terminals],
                        sorted(map(repr, path.arcs_used)),
                    )
                )
            if version.rcg is not None:
                for output in sorted(version.rcg.output_names()):
                    vp.append(
                        (
                            output,
                            [
                                (piece.lo, piece.width)
                                for piece in version.rcg.output_slices(output)
                            ],
                        )
                    )
            entry.append(vp)
        parts.append(entry)
    return hashlib.sha1(repr(parts).encode()).hexdigest()


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
@dataclass
class _CacheEntry:
    """One memoized per-core plan with its dependency footprint."""

    deps: Dict[str, int]  # core consulted -> version index it had
    plan: object  # CoreTestPlan (kept untyped to avoid an import cycle)
    added_muxes: List  # TestMux objects created while planning this core
    added_mux_keys: FrozenSet


class PlanCache:
    """Per-SOC memo of core test plans keyed by dependency footprint."""

    def __init__(self, soc) -> None:
        self.signature = soc_signature(soc)
        self.fingerprint = soc_fingerprint(soc)
        #: (core, forced_key, entry mux state) -> entries, probed in insertion order
        self._entries: Dict[Tuple, List[_CacheEntry]] = {}

    # ------------------------------------------------------------------
    def lookup(
        self,
        core: str,
        forced_key: Tuple,
        mux_state: FrozenSet,
        selection: Dict[str, int],
    ) -> Optional[_CacheEntry]:
        for entry in self._entries.get((core, forced_key, mux_state), ()):
            if all(selection.get(c, 0) == v for c, v in entry.deps.items()):
                _HITS.inc()
                return entry
        _MISSES.inc()
        return None

    def store(
        self,
        core: str,
        forced_key: Tuple,
        mux_state: FrozenSet,
        deps: Dict[str, int],
        plan,
        added_muxes: List,
        added_mux_keys: FrozenSet,
    ) -> None:
        self._entries.setdefault((core, forced_key, mux_state), []).append(
            _CacheEntry(
                deps=dict(deps),
                plan=plan,
                added_muxes=list(added_muxes),
                added_mux_keys=frozenset(added_mux_keys),
            )
        )

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())


# ----------------------------------------------------------------------
# per-SOC attachment
# ----------------------------------------------------------------------
_ATTR = "_plan_cache"


def plan_cache_for(soc, create: bool = True) -> Optional[PlanCache]:
    """The cache attached to ``soc`` (built on first use, auto-refreshed).

    Returns ``None`` when ``create`` is false and no valid cache exists.
    A cache whose structural signature no longer matches the SOC is
    discarded and (if ``create``) rebuilt.
    """
    cache = getattr(soc, _ATTR, None)
    if cache is not None:
        if cache.signature == soc_signature(soc):
            return cache
        _INVALIDATIONS.inc()
        setattr(soc, _ATTR, None)
    if not create:
        return None
    cache = PlanCache(soc)
    setattr(soc, _ATTR, cache)
    return cache


def invalidate_plan_cache(soc) -> None:
    """Drop the SOC's plan cache (required after in-place version edits)."""
    if getattr(soc, _ATTR, None) is not None:
        _INVALIDATIONS.inc()
        setattr(soc, _ATTR, None)
