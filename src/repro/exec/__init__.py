"""Parallel evaluation engine: worker-pool fan-out + incremental caching.

Two cooperating parts, both deterministic by construction:

* :mod:`repro.exec.pool` -- :class:`ParallelExecutor`, a process-based
  worker pool with ordered result collection, worker-metrics merging,
  and a serial fallback that is the pre-existing code path (``--jobs 1``
  / ``REPRO_JOBS`` / default);
* :mod:`repro.exec.cache` -- :class:`PlanCache`, the incremental
  planning cache that memoizes per-core test plans under a dependency
  footprint of the ``(core, version)`` pairs each plan consulted, keyed
  by a stable SOC fingerprint.

The three hot paths fan out through the executor: per-core ATPG + fault
grading (:func:`repro.flow.evaluate.evaluate_system`,
:func:`repro.flow.corelevel.prepare_cores`), the design-space sweep
(:func:`repro.soc.optimizer.design_space`), and per-point scheduling
(:func:`repro.flow.chiplevel.schedule_points`).  Parallel and serial
runs are bit-identical under a fixed seed; see README "Parallelism".
"""

from repro.exec.pool import JOBS_ENV, ParallelExecutor, resolve_jobs
from repro.exec.cache import (
    CACHE_ENV,
    PlanCache,
    cache_enabled,
    invalidate_plan_cache,
    plan_cache_for,
    soc_fingerprint,
    soc_signature,
)

__all__ = [
    "JOBS_ENV",
    "ParallelExecutor",
    "resolve_jobs",
    "CACHE_ENV",
    "PlanCache",
    "cache_enabled",
    "invalidate_plan_cache",
    "plan_cache_for",
    "soc_fingerprint",
    "soc_signature",
]
