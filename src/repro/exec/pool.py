"""Process-based worker pool with a deterministic serial fallback.

:class:`ParallelExecutor` fans pure tasks out over worker processes and
collects the results **in submission order**, so a parallel run is
bit-identical to the serial one.  Three rules keep that guarantee:

* tasks must be pure functions of their arguments (module-level, no
  shared mutable state) -- every fan-out site in the flow obeys this;
* results come back via ``ProcessPoolExecutor.map``, which preserves
  input order regardless of completion order;
* worker-side metrics are returned as (mark, delta) pairs and merged
  into the parent registry in submission order, so counter totals and
  stage histograms match the serial run's.

Tracing crosses the process boundary the same way the metrics do: when
the parent tracer is enabled, every ``map()`` runs under an
``exec.pool.dispatch`` span whose serialized context ships with each
task payload.  Workers adopt the context (enablement follows the
parent -- a worker never silently no-ops a span the parent wanted),
record spans locally, and return them alongside the metrics delta; the
parent absorbs them under the dispatch span and counts them on
``exec.pool.spans_shipped``.  With tracing disabled the context is
``None`` and the worker side skips the tracer entirely.

The job count resolves explicit argument > ``REPRO_JOBS`` env var > 1
(serial).  ``jobs=0`` means "one per CPU".  With ``jobs=1`` -- the
default everywhere -- no pool is created and tasks run inline, which is
exactly the pre-existing serial code path.  If the platform refuses to
spawn processes, the executor logs a warning, falls back to the serial
path, and counts the event on ``exec.pool.fallbacks``.
"""

from __future__ import annotations

import logging
import math
import os
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import UsageError
from repro.obs import METRICS, TRACER
from repro.obs.attrib import ATTRIB

logger = logging.getLogger("repro.exec.pool")

#: environment variable consulted when no explicit job count is given
JOBS_ENV = "REPRO_JOBS"

_SUBMITTED = METRICS.counter("exec.tasks.submitted")
_COMPLETED = METRICS.counter("exec.tasks.completed")
_FALLBACKS = METRICS.counter("exec.pool.fallbacks")
_REUSES = METRICS.counter("exec.pool.reuses")
_SPANS_SHIPPED = METRICS.counter("exec.pool.spans_shipped")
_WORKERS = METRICS.gauge("exec.pool.workers")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_JOBS`` > 1 (serial)."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise UsageError(f"{JOBS_ENV}={raw!r} is not an integer") from None
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


# ----------------------------------------------------------------------
# worker-side plumbing
# ----------------------------------------------------------------------
_WORKER_CONTEXT: Any = None


def _worker_init(context: Any) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _ship_spans(trace_context, trace_mark):
    """Collect spans recorded during one task and reset the buffer."""
    if trace_context is None:
        return []
    spans = TRACER.events_since(trace_mark)
    TRACER.clear()  # worker buffer is per-task; shipped spans live on
    return spans


def _run_plain(payload):
    fn, item, trace_context, attrib_mode = payload
    TRACER.adopt(trace_context)
    # Attribution enablement follows the parent (robust under spawn,
    # where env-derived state is not inherited the way fork copies it).
    ATTRIB.configure(attrib_mode)
    trace_mark = TRACER.mark()
    mark = METRICS.mark()
    attrib_mark = ATTRIB.mark()
    result = fn(item)
    delta = METRICS.delta_since(mark)
    attrib_delta = ATTRIB.delta_since(attrib_mark)
    return result, delta, _ship_spans(trace_context, trace_mark), attrib_delta


def _run_with_context(payload):
    fn, item, trace_context, attrib_mode = payload
    TRACER.adopt(trace_context)
    ATTRIB.configure(attrib_mode)
    trace_mark = TRACER.mark()
    mark = METRICS.mark()
    attrib_mark = ATTRIB.mark()
    result = fn(_WORKER_CONTEXT, item)
    delta = METRICS.delta_since(mark)
    attrib_delta = ATTRIB.delta_since(attrib_mark)
    return result, delta, _ship_spans(trace_context, trace_mark), attrib_delta


def _warm_task(_item):
    return os.getpid()


class ParallelExecutor:
    """Ordered map of pure tasks over a reusable process pool.

    ``context`` is an arbitrary picklable value made available to every
    task as its first argument (workers receive it once, at pool start,
    so a large shared object -- an SOC, a netlist -- is not re-pickled
    per task).  With ``jobs=1`` the executor is a plain loop: same
    results, same order, no processes.
    """

    def __init__(self, jobs: Optional[int] = None, context: Any = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.context = context
        self._pool = None
        self._broken = False

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        return self.jobs > 1 and not self._broken

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(self.context,),
            )
            _WORKERS.set(self.jobs)
        else:
            # keep-alive reuse: the pool survives across map() calls (and,
            # in the serve daemon, across client requests) until close()
            _REUSES.inc()
        return self._pool

    def warm(self) -> "ParallelExecutor":
        """Start every worker now (amortizes pool startup out of timings)."""
        if self.parallel:
            try:
                pool = self._ensure_pool()
                list(pool.map(_warm_task, range(self.jobs * 2), chunksize=1))
            except (OSError, RuntimeError) as error:
                self._degrade(error)
        return self

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        items: Sequence,
        chunksize: Optional[int] = None,
    ) -> List:
        """Run ``fn`` over ``items``, results in input order.

        ``fn`` is called as ``fn(item)`` -- or ``fn(context, item)``
        when the executor carries a context.
        """
        items = list(items)
        _SUBMITTED.inc(len(items))
        with TRACER.span("exec.pool.dispatch", tasks=len(items), jobs=self.jobs):
            if not self.parallel or len(items) <= 1:
                return self._map_serial(fn, items)
            runner = _run_plain if self.context is None else _run_with_context
            trace_context = TRACER.context()
            payloads = [(fn, item, trace_context, ATTRIB.mode) for item in items]
            if chunksize is None:
                chunksize = max(1, math.ceil(len(items) / (self.jobs * 2)))
            try:
                pool = self._ensure_pool()
                results: List = []
                for result, delta, spans, attrib_delta in pool.map(
                    runner, payloads, chunksize=chunksize
                ):
                    METRICS.merge_delta(delta)
                    if attrib_delta:
                        ATTRIB.merge_delta(attrib_delta)
                    if spans:
                        _SPANS_SHIPPED.inc(TRACER.absorb(spans))
                    results.append(result)
                    _COMPLETED.inc()
                return results
            except (OSError, RuntimeError) as error:
                self._degrade(error)
                return self._map_serial(fn, items)

    def _map_serial(self, fn: Callable, items: List) -> List:
        results = []
        for item in items:
            if self.context is None:
                results.append(fn(item))
            else:
                results.append(fn(self.context, item))
            _COMPLETED.inc()
        return results

    def _degrade(self, error: Exception) -> None:
        """Pool unavailable (sandbox, broken worker): go serial for good."""
        logger.warning("worker pool unavailable (%s); running serially", error)
        _FALLBACKS.inc()
        self._broken = True
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            self._pool = None
