"""RTL-to-gate elaboration and area accounting.

:func:`~repro.elaborate.elaborate.elaborate` turns an
:class:`~repro.rtl.circuit.RTLCircuit` into a
:class:`~repro.gates.netlist.GateNetlist`: registers become D flip-flops
(with enable/reset muxes), word muxes become per-bit MUX2 trees, and
operators expand into standard gate macros (ripple adders, comparators,
decoders, ...).  Bit ``i`` of RTL component ``C`` becomes the gate net
``C.i``, so higher layers (DFT insertion, ATPG, fault grading) can map
RTL structure onto gates and back.
"""

from repro.elaborate.elaborate import Elaborated, elaborate
from repro.elaborate.area import AreaReport, area_report

__all__ = ["Elaborated", "elaborate", "AreaReport", "area_report"]
