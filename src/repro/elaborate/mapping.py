"""Gate-macro expansions for word-level RTL operators.

Each function appends gates to a netlist and returns the list of output
bit nets (LSB first).  Gate names are drawn from a
:class:`~repro.util.namegen.NameGenerator` so repeated elaboration stays
collision-free.
"""

from __future__ import annotations

from typing import List

from repro.errors import ElaborationError
from repro.gates.cells import GateKind
from repro.gates.netlist import GateNetlist
from repro.util.namegen import NameGenerator


def _fresh(netlist: GateNetlist, names: NameGenerator, prefix: str, kind: GateKind, fanins: List[str]) -> str:
    name = names.fresh(prefix)
    netlist.add_gate(name, kind, fanins)
    return name


def const_bit(netlist: GateNetlist, names: NameGenerator, prefix: str, value: int) -> str:
    kind = GateKind.CONST1 if value else GateKind.CONST0
    return _fresh(netlist, names, prefix, kind, [])


def bitwise(
    netlist: GateNetlist,
    names: NameGenerator,
    prefix: str,
    kind: GateKind,
    a: List[str],
    b: List[str],
) -> List[str]:
    """Per-bit two-operand gate (AND/OR/XOR)."""
    if len(a) != len(b):
        raise ElaborationError(f"{prefix}: operand widths differ ({len(a)} vs {len(b)})")
    return [_fresh(netlist, names, prefix, kind, [a[i], b[i]]) for i in range(len(a))]


def invert(netlist: GateNetlist, names: NameGenerator, prefix: str, a: List[str]) -> List[str]:
    return [_fresh(netlist, names, prefix, GateKind.NOT, [bit]) for bit in a]


def ripple_add(
    netlist: GateNetlist,
    names: NameGenerator,
    prefix: str,
    a: List[str],
    b: List[str],
    carry_in: str,
) -> List[str]:
    """Full ripple-carry adder; returns sum bits then carry-out appended last."""
    if len(a) != len(b):
        raise ElaborationError(f"{prefix}: adder operand widths differ")
    sums: List[str] = []
    carry = carry_in
    for i in range(len(a)):
        axb = _fresh(netlist, names, prefix, GateKind.XOR, [a[i], b[i]])
        sums.append(_fresh(netlist, names, prefix, GateKind.XOR, [axb, carry]))
        and1 = _fresh(netlist, names, prefix, GateKind.AND, [a[i], b[i]])
        and2 = _fresh(netlist, names, prefix, GateKind.AND, [axb, carry])
        carry = _fresh(netlist, names, prefix, GateKind.OR, [and1, and2])
    sums.append(carry)
    return sums


def subtract(
    netlist: GateNetlist,
    names: NameGenerator,
    prefix: str,
    a: List[str],
    b: List[str],
) -> List[str]:
    """a - b as a + ~b + 1; returns difference bits then carry-out (no-borrow flag)."""
    b_inverted = invert(netlist, names, prefix, b)
    one = const_bit(netlist, names, prefix, 1)
    return ripple_add(netlist, names, prefix, a, b_inverted, one)


def increment(netlist: GateNetlist, names: NameGenerator, prefix: str, a: List[str]) -> List[str]:
    """a + 1 via a half-adder chain; carry-out is dropped."""
    outputs: List[str] = []
    carry = const_bit(netlist, names, prefix, 1)
    for bit in a:
        outputs.append(_fresh(netlist, names, prefix, GateKind.XOR, [bit, carry]))
        carry = _fresh(netlist, names, prefix, GateKind.AND, [bit, carry])
    return outputs


def decrement(netlist: GateNetlist, names: NameGenerator, prefix: str, a: List[str]) -> List[str]:
    """a - 1 via a half-subtractor chain (borrow ripples); borrow-out dropped."""
    outputs: List[str] = []
    borrow = const_bit(netlist, names, prefix, 1)
    for bit in a:
        outputs.append(_fresh(netlist, names, prefix, GateKind.XOR, [bit, borrow]))
        not_bit = _fresh(netlist, names, prefix, GateKind.NOT, [bit])
        borrow = _fresh(netlist, names, prefix, GateKind.AND, [not_bit, borrow])
    return outputs


def equals(netlist: GateNetlist, names: NameGenerator, prefix: str, a: List[str], b: List[str]) -> str:
    """1-bit a == b."""
    xnors = bitwise(netlist, names, prefix, GateKind.XNOR, a, b)
    if len(xnors) == 1:
        return xnors[0]
    return _fresh(netlist, names, prefix, GateKind.AND, xnors)


def less_than(netlist: GateNetlist, names: NameGenerator, prefix: str, a: List[str], b: List[str]) -> str:
    """1-bit unsigned a < b: borrow out of a - b."""
    diff = subtract(netlist, names, prefix, a, b)
    carry_out = diff[-1]
    return _fresh(netlist, names, prefix, GateKind.NOT, [carry_out])


def shift_left(netlist: GateNetlist, names: NameGenerator, prefix: str, a: List[str]) -> List[str]:
    zero = const_bit(netlist, names, prefix, 0)
    return [zero] + a[:-1]


def shift_right(netlist: GateNetlist, names: NameGenerator, prefix: str, a: List[str]) -> List[str]:
    zero = const_bit(netlist, names, prefix, 0)
    return a[1:] + [zero]


def decode(netlist: GateNetlist, names: NameGenerator, prefix: str, a: List[str]) -> List[str]:
    """n-bit input -> 2^n one-hot outputs."""
    inverted = invert(netlist, names, prefix, a)
    outputs: List[str] = []
    for code in range(1 << len(a)):
        literals = [a[i] if (code >> i) & 1 else inverted[i] for i in range(len(a))]
        if len(literals) == 1:
            outputs.append(_fresh(netlist, names, prefix, GateKind.BUF, literals))
        else:
            outputs.append(_fresh(netlist, names, prefix, GateKind.AND, literals))
    return outputs


def reduce_gate(
    netlist: GateNetlist,
    names: NameGenerator,
    prefix: str,
    kind: GateKind,
    a: List[str],
) -> str:
    if len(a) == 1:
        return _fresh(netlist, names, prefix, GateKind.BUF, a)
    return _fresh(netlist, names, prefix, kind, a)


def mux_tree(
    netlist: GateNetlist,
    names: NameGenerator,
    prefix: str,
    inputs: List[List[str]],
    select: List[str],
) -> List[str]:
    """Per-bit MUX2 tree over word inputs; select is LSB-first.

    Select codes beyond ``len(inputs) - 1`` resolve to the last input,
    matching the RTL mux semantics.
    """
    if not inputs:
        raise ElaborationError(f"{prefix}: mux with no inputs")
    if len(inputs) == 1:
        return inputs[0]
    if not select:
        raise ElaborationError(f"{prefix}: mux needs select bits for {len(inputs)} inputs")
    top = select[-1]
    half = 1 << (len(select) - 1)
    low_group = inputs[:half]
    high_group = inputs[half:] if len(inputs) > half else [inputs[-1]]
    low = mux_tree(netlist, names, prefix, low_group, select[:-1])
    high = mux_tree(netlist, names, prefix, high_group, select[:-1])
    return [
        _fresh(netlist, names, prefix, GateKind.MUX2, [low[i], high[i], top])
        for i in range(len(low))
    ]
