"""Area accounting in cell units, by category.

Synthesized test structures follow naming conventions (``scan_``,
``bscan_``, ``tmux_``, ``freeze_``, ``tctrl_`` prefixes), which lets the
report split functional area from DFT overhead exactly the way the
paper's Table 2 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.gates.netlist import GateNetlist

#: gate-name prefixes identifying DFT overhead categories
DFT_PREFIXES = {
    "scan_": "scan",
    "bscan_": "boundary-scan",
    "tmux_": "test-mux",
    "freeze_": "freeze",
    "tctrl_": "test-controller",
    "tsel_": "select-forcing",
}


@dataclass
class AreaReport:
    """Total area plus a per-category breakdown (all in cell units)."""

    total: int
    functional: int
    overhead: int
    by_category: Dict[str, int] = field(default_factory=dict)

    @property
    def overhead_percent(self) -> float:
        """Overhead as a percentage of the functional area."""
        if self.functional == 0:
            return 0.0
        return 100.0 * self.overhead / self.functional


def area_report(netlist: GateNetlist) -> AreaReport:
    """Compute the area report for a (possibly DFT-inserted) netlist."""
    total = 0
    overhead = 0
    by_category: Dict[str, int] = {}
    for gate in netlist.gates():
        area = gate.area()
        total += area
        for prefix, category in DFT_PREFIXES.items():
            if gate.name.startswith(prefix):
                overhead += area
                by_category[category] = by_category.get(category, 0) + area
                break
    return AreaReport(
        total=total,
        functional=total - overhead,
        overhead=overhead,
        by_category=by_category,
    )
