"""Structural elaboration of RTL circuits into gate netlists.

Naming convention: bit ``i`` of RTL input ``P`` becomes gate ``P.i``
(an ``INPUT``), bit ``i`` of register ``R`` becomes gate ``R.i`` (a
``DFF``), and bit ``i`` of output port ``O`` becomes the ``OUTPUT``
marker gate ``O.i``.  Mux and operator internals use generated names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ElaborationError
from repro.elaborate import mapping as macros
from repro.gates.cells import GateKind
from repro.gates.netlist import GateNetlist
from repro.rtl.circuit import RTLCircuit
from repro.rtl.components import Constant, Input, Mux, Operator, Output, Register
from repro.rtl.types import ComponentKind, Expr, OpKind, expr_parts
from repro.util.namegen import NameGenerator


@dataclass
class Elaborated:
    """Result of elaboration: the netlist plus RTL-to-gate bit maps."""

    circuit: RTLCircuit
    netlist: GateNetlist
    #: RTL component name -> its output bit nets (LSB first)
    comp_bits: Dict[str, List[str]] = field(default_factory=dict)

    def input_bits(self, port: str) -> List[str]:
        return list(self.comp_bits[port])

    def output_bits(self, port: str) -> List[str]:
        return [f"{port}.{i}" for i in range(self.circuit.get(port).width)]

    def register_bits(self, register: str) -> List[str]:
        return list(self.comp_bits[register])


def elaborate(circuit: RTLCircuit, name_suffix: str = "") -> Elaborated:
    """Elaborate ``circuit`` into a validated gate netlist."""
    netlist = GateNetlist(circuit.name + name_suffix)
    names = NameGenerator()
    comp_bits: Dict[str, List[str]] = {}

    for component in circuit.components():
        names.reserve(component.name)
        for i in range(component.width):
            names.reserve(f"{component.name}.{i}")

    # 1. sources: inputs, constants, and flip-flops (D pins patched later)
    for port in circuit.inputs:
        comp_bits[port.name] = [
            netlist.add_gate(f"{port.name}.{i}", GateKind.INPUT) for i in range(port.width)
        ]
    for constant in circuit.constants:
        comp_bits[constant.name] = [
            netlist.add_gate(
                f"{constant.name}.{i}",
                GateKind.CONST1 if (constant.value >> i) & 1 else GateKind.CONST0,
            )
            for i in range(constant.width)
        ]
    for register in circuit.registers:
        bits = []
        for i in range(register.width):
            gate_name = f"{register.name}.{i}"
            netlist.add_gate(gate_name, GateKind.DFF, [gate_name])  # self-loop placeholder
            bits.append(gate_name)
        comp_bits[register.name] = bits

    def expr_to_bits(expr: Expr) -> List[str]:
        bits: List[str] = []
        for part in expr_parts(expr):
            source_bits = comp_bits.get(part.comp)
            if source_bits is None:
                raise ElaborationError(f"component {part.comp!r} referenced before elaboration")
            bits.extend(source_bits[part.lo : part.lo + part.width])
        return bits

    # 2. combinational components in dependency order
    for component in _combinational_order(circuit):
        if isinstance(component, Mux):
            input_bits = [expr_to_bits(expr) for expr in component.inputs]
            select_bits = expr_to_bits(component.select)  # type: ignore[arg-type]
            comp_bits[component.name] = macros.mux_tree(
                netlist, names, component.name, input_bits, select_bits
            )
        elif isinstance(component, Operator):
            comp_bits[component.name] = _elaborate_operator(netlist, names, component, expr_to_bits)

    # 3. patch register D pins (driver, then enable mux, then reset mux)
    reset_bit = None
    if circuit.reset_net is not None:
        reset_bit = comp_bits[circuit.reset_net][0]
    for register in circuit.registers:
        driver_bits = expr_to_bits(register.driver)  # type: ignore[arg-type]
        if register.enable is not None:
            enable_bit = expr_to_bits(register.enable)[0]
            driver_bits = [
                netlist.add_gate(
                    names.fresh(f"{register.name}_en"),
                    GateKind.MUX2,
                    [comp_bits[register.name][i], driver_bits[i], enable_bit],
                )
                for i in range(register.width)
            ]
        if reset_bit is not None and register.reset_value is not None:
            reset_bits = [
                macros.const_bit(netlist, names, f"{register.name}_rst", (register.reset_value >> i) & 1)
                for i in range(register.width)
            ]
            driver_bits = [
                netlist.add_gate(
                    names.fresh(f"{register.name}_rst"),
                    GateKind.MUX2,
                    [driver_bits[i], reset_bits[i], reset_bit],
                )
                for i in range(register.width)
            ]
        for i in range(register.width):
            netlist.replace_gate(f"{register.name}.{i}", GateKind.DFF, [driver_bits[i]])

    # 4. output markers
    for port in circuit.outputs:
        driver_bits = expr_to_bits(port.driver)  # type: ignore[arg-type]
        for i in range(port.width):
            netlist.add_gate(f"{port.name}.{i}", GateKind.OUTPUT, [driver_bits[i]])

    netlist.validate()
    return Elaborated(circuit=circuit, netlist=netlist, comp_bits=comp_bits)


def _combinational_order(circuit: RTLCircuit) -> List:
    """Muxes and operators sorted so fanins elaborate first."""
    combinational = {
        c.name: c
        for c in circuit.components()
        if c.kind in (ComponentKind.MUX, ComponentKind.OPERATOR)
    }
    pending: Dict[str, int] = {}
    readers: Dict[str, List[str]] = {name: [] for name in combinational}
    for name, component in combinational.items():
        fanins = [f for f in circuit.fanin_names(component) if f in combinational]
        pending[name] = len(fanins)
        for fanin in fanins:
            readers[fanin].append(name)
    ready = [name for name, count in pending.items() if count == 0]
    order: List = []
    while ready:
        name = ready.pop()
        order.append(combinational[name])
        for reader in readers[name]:
            pending[reader] -= 1
            if pending[reader] == 0:
                ready.append(reader)
    if len(order) != len(combinational):
        raise ElaborationError(f"combinational cycle in circuit {circuit.name!r}")
    return order


def _elaborate_operator(
    netlist: GateNetlist,
    names: NameGenerator,
    op: Operator,
    expr_to_bits,
) -> List[str]:
    operands = [expr_to_bits(expr) for expr in op.operands]
    prefix = op.name
    if op.op is OpKind.ADD:
        zero = macros.const_bit(netlist, names, prefix, 0)
        return macros.ripple_add(netlist, names, prefix, operands[0], operands[1], zero)[:-1]
    if op.op is OpKind.SUB:
        return macros.subtract(netlist, names, prefix, operands[0], operands[1])[:-1]
    if op.op is OpKind.INC:
        return macros.increment(netlist, names, prefix, operands[0])
    if op.op is OpKind.DEC:
        return macros.decrement(netlist, names, prefix, operands[0])
    if op.op is OpKind.AND:
        return macros.bitwise(netlist, names, prefix, GateKind.AND, operands[0], operands[1])
    if op.op is OpKind.OR:
        return macros.bitwise(netlist, names, prefix, GateKind.OR, operands[0], operands[1])
    if op.op is OpKind.XOR:
        return macros.bitwise(netlist, names, prefix, GateKind.XOR, operands[0], operands[1])
    if op.op is OpKind.NOT:
        return macros.invert(netlist, names, prefix, operands[0])
    if op.op is OpKind.EQ:
        return [macros.equals(netlist, names, prefix, operands[0], operands[1])]
    if op.op is OpKind.LT:
        return [macros.less_than(netlist, names, prefix, operands[0], operands[1])]
    if op.op is OpKind.SHL:
        return macros.shift_left(netlist, names, prefix, operands[0])
    if op.op is OpKind.SHR:
        return macros.shift_right(netlist, names, prefix, operands[0])
    if op.op is OpKind.DECODE:
        return macros.decode(netlist, names, prefix, operands[0])
    if op.op is OpKind.REDUCE_OR:
        return [macros.reduce_gate(netlist, names, prefix, GateKind.OR, operands[0])]
    if op.op is OpKind.REDUCE_AND:
        return [macros.reduce_gate(netlist, names, prefix, GateKind.AND, operands[0])]
    raise ElaborationError(f"unsupported operator kind {op.op}")
