"""March test algorithms and their execution against behavioral memories.

A March test is a sequence of *elements*; each element walks the whole
address space in a fixed direction applying a short list of read/write
operations per word.  March C- detects all cell stuck-ats, address
faults, and inversion/idempotent coupling faults with 10N operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bist.memory import BehavioralMemory
from repro.errors import BistError

UP, DOWN, EITHER = "up", "down", "either"

# operations: ("r", expected_background) or ("w", background)
Op = Tuple[str, int]


@dataclass(frozen=True)
class MarchElement:
    """One address sweep: direction + per-word operation list.

    Backgrounds are symbolic: 0 writes/expects the all-zeros word, 1 the
    all-ones word.
    """

    direction: str
    ops: Tuple[Op, ...]

    def __str__(self) -> str:
        arrow = {"up": "U", "down": "D", "either": "B"}[self.direction]
        body = ", ".join(f"{op}{value}" for op, value in self.ops)
        return f"{arrow}({body})"


@dataclass(frozen=True)
class MarchTest:
    """A named sequence of March elements."""

    name: str
    elements: Tuple[MarchElement, ...]

    @property
    def operations_per_word(self) -> int:
        return sum(len(element.ops) for element in self.elements)

    def cycle_count(self, words: int) -> int:
        """Total BIST cycles (one op per cycle)."""
        return self.operations_per_word * words


def _element(direction: str, *ops: str) -> MarchElement:
    parsed: List[Op] = []
    for op in ops:
        if len(op) != 2 or op[0] not in "rw" or op[1] not in "01":
            raise BistError(f"malformed march op {op!r}")
        parsed.append((op[0], int(op[1])))
    return MarchElement(direction, tuple(parsed))


MARCH_C_MINUS = MarchTest(
    "March C-",
    (
        _element(EITHER, "w0"),
        _element(UP, "r0", "w1"),
        _element(UP, "r1", "w0"),
        _element(DOWN, "r0", "w1"),
        _element(DOWN, "r1", "w0"),
        _element(EITHER, "r0"),
    ),
)

MARCH_X = MarchTest(
    "March X",
    (
        _element(EITHER, "w0"),
        _element(UP, "r0", "w1"),
        _element(DOWN, "r1", "w0"),
        _element(EITHER, "r0"),
    ),
)

MARCH_Y = MarchTest(
    "March Y",
    (
        _element(EITHER, "w0"),
        _element(UP, "r0", "w1", "r1"),
        _element(DOWN, "r1", "w0", "r0"),
        _element(EITHER, "r0"),
    ),
)


def run_march(test: MarchTest, memory: BehavioralMemory) -> Optional[Tuple[int, int]]:
    """Execute ``test``; returns (address, element index) of the first
    mismatch, or None if the memory behaves correctly."""
    ones = (1 << memory.width) - 1
    backgrounds = {0: 0, 1: ones}
    for element_index, element in enumerate(test.elements):
        addresses = range(memory.words)
        if element.direction == DOWN:
            addresses = range(memory.words - 1, -1, -1)
        for address in addresses:
            for op, value in element.ops:
                if op == "w":
                    memory.write(address, backgrounds[value])
                else:
                    observed = memory.read(address)
                    if observed != backgrounds[value]:
                        return (address, element_index)
    return None


def grade_march(
    test: MarchTest,
    words: int,
    width: int,
    faults: Sequence[object],
) -> Tuple[int, List[object]]:
    """Count how many injected faults ``test`` detects.

    Returns (detected count, undetected fault list).
    """
    undetected = []
    detected = 0
    for fault in faults:
        memory = BehavioralMemory(words, width, fault=fault)
        if run_march(test, memory) is not None:
            detected += 1
        else:
            undetected.append(fault)
    return detected, undetected
