"""Memory-BIST planning: which March test, how long, what area.

The BIST controller (address counter + data-background generator +
comparator + small FSM) runs concurrently with the logic-core testing,
so its cycles are reported separately from the SOC's transparency TAT,
exactly as the paper separates memory cores from the CCG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bist.march import MARCH_C_MINUS, MarchTest
from repro.soc.system import Soc

#: cells for the shared BIST controller (counter, background gen, compare)
BIST_CONTROLLER_CELLS = 120
#: per-memory wrapper cells (address/data muxes into the array)
BIST_WRAPPER_CELLS_PER_BIT = 2


@dataclass
class MemoryBistRow:
    core: str
    words: int
    width: int
    march: str
    cycles: int
    wrapper_cells: int


@dataclass
class MemoryBistPlan:
    soc: str
    rows: List[MemoryBistRow]
    controller_cells: int = BIST_CONTROLLER_CELLS

    @property
    def total_cycles(self) -> int:
        return sum(row.cycles for row in self.rows)

    @property
    def total_cells(self) -> int:
        if not self.rows:
            return 0
        return self.controller_cells + sum(row.wrapper_cells for row in self.rows)


#: memory geometries of the example cores (4KB space, byte-wide)
_DEFAULT_GEOMETRY = {"RAM": (4096, 8), "ROM": (4096, 8)}


def plan_memory_bist(soc: Soc, march: MarchTest = MARCH_C_MINUS) -> MemoryBistPlan:
    """Plan BIST for every memory core of ``soc``."""
    rows = []
    for core in soc.cores.values():
        if not core.is_memory:
            continue
        words, width = _DEFAULT_GEOMETRY.get(core.name, (1024, 8))
        address_bits = max(1, (words - 1).bit_length())
        wrapper = BIST_WRAPPER_CELLS_PER_BIT * (address_bits + 2 * width)
        rows.append(
            MemoryBistRow(
                core=core.name,
                words=words,
                width=width,
                march=march.name,
                cycles=march.cycle_count(words),
                wrapper_cells=wrapper,
            )
        )
    return MemoryBistPlan(soc=soc.name, rows=rows)
