"""Behavioral memory model with injectable faults.

Supports the classic RAM fault models March tests are graded on:

* :class:`CellStuckAt` -- one bit of one word stuck at 0/1;
* :class:`InversionCoupling` -- a write transition on an aggressor bit
  inverts a victim bit (CFin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CellStuckAt:
    """Bit ``bit`` of word ``address`` stuck at ``value``."""

    address: int
    bit: int
    value: int


@dataclass(frozen=True)
class InversionCoupling:
    """A transition written into the aggressor flips the victim bit."""

    aggressor_address: int
    aggressor_bit: int
    victim_address: int
    victim_bit: int


Fault = object  # CellStuckAt | InversionCoupling


class BehavioralMemory:
    """A word-addressable RAM with optional injected faults."""

    def __init__(self, words: int, width: int, fault: Optional[Fault] = None) -> None:
        if words <= 0 or width <= 0:
            raise ValueError("memory must have positive geometry")
        self.words = words
        self.width = width
        self.fault = fault
        self._data: Dict[int, int] = {}

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.words:
            raise IndexError(f"address {address} out of range [0, {self.words})")

    def _apply_stuck(self, address: int, value: int) -> int:
        fault = self.fault
        if isinstance(fault, CellStuckAt) and fault.address == address:
            if fault.value:
                value |= 1 << fault.bit
            else:
                value &= ~(1 << fault.bit)
        return value

    def write(self, address: int, value: int) -> None:
        self._check_address(address)
        value &= (1 << self.width) - 1
        old = self._data.get(address, 0)
        fault = self.fault
        if isinstance(fault, InversionCoupling) and fault.aggressor_address == address:
            aggressor_mask = 1 << fault.aggressor_bit
            if (old ^ value) & aggressor_mask:
                victim_old = self._data.get(fault.victim_address, 0)
                self._data[fault.victim_address] = victim_old ^ (1 << fault.victim_bit)
                # the victim cell may itself be the written word; re-read below
        self._data[address] = self._apply_stuck(address, value)

    def read(self, address: int) -> int:
        self._check_address(address)
        return self._apply_stuck(address, self._data.get(address, 0))


def all_stuck_at_faults(words: int, width: int, stride: int = 1) -> List[CellStuckAt]:
    """Enumerate cell stuck-at faults (optionally subsampled by stride)."""
    faults = []
    for address in range(0, words, stride):
        for bit in range(width):
            faults.append(CellStuckAt(address, bit, 0))
            faults.append(CellStuckAt(address, bit, 1))
    return faults


def neighbour_coupling_faults(words: int, width: int, stride: int = 1) -> List[InversionCoupling]:
    """Inversion couplings between adjacent words (same bit lane)."""
    faults = []
    for address in range(0, words - 1, stride):
        for bit in range(width):
            faults.append(InversionCoupling(address, bit, address + 1, bit))
            faults.append(InversionCoupling(address + 1, bit, address, bit))
    return faults
