"""Memory BIST: March tests over behavioral memories with fault injection.

The paper excludes the RAM/ROM cores from the transparency CCG because
"most memory cores use BIST"; this package supplies that BIST: March
C-/X/Y algorithms, a behavioral memory with injectable stuck-at and
coupling faults, and a controller-level test-time model.
"""

from repro.bist.memory import BehavioralMemory, CellStuckAt, InversionCoupling
from repro.bist.march import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MarchElement,
    MarchTest,
    run_march,
)
from repro.bist.controller import MemoryBistPlan, plan_memory_bist

__all__ = [
    "BehavioralMemory",
    "CellStuckAt",
    "InversionCoupling",
    "MARCH_C_MINUS",
    "MARCH_X",
    "MARCH_Y",
    "MarchElement",
    "MarchTest",
    "run_march",
    "MemoryBistPlan",
    "plan_memory_bist",
]
