"""Chip-level SOCET: the paper's Section 5.

Given an SOC (cores + interconnect), a selected transparency version per
core, and each core's precomputed test set, this package:

* builds the core connectivity graph (CCG) with split input/output nodes,
* finds justification/propagation paths for every core under test,
  serializing transfers that share transparency resources (the paper's
  edge-reservation rule),
* inserts system-level test multiplexers where no path exists,
* computes per-core and global test application time, and
* runs the iterative-improvement optimizer that swaps core versions to
  meet an area or TAT constraint (cost C = w1*dTAT + w2*dA).
"""

from repro.soc.core import Core
from repro.soc.system import Net, PortRef, Soc
from repro.soc.ccg import build_ccg
from repro.soc.plan import CoreTestPlan, SocTestPlan, plan_soc_test
from repro.soc.optimizer import (
    DesignPoint,
    SocetOptimizer,
    design_space,
)
from repro.soc.controller import TestController, synthesize_controller

__all__ = [
    "Core",
    "Net",
    "PortRef",
    "Soc",
    "build_ccg",
    "CoreTestPlan",
    "SocTestPlan",
    "plan_soc_test",
    "DesignPoint",
    "SocetOptimizer",
    "design_space",
    "TestController",
    "synthesize_controller",
]
