"""The SOC: cores, chip pins, and slice-level interconnect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SocError
from repro.soc.core import Core


@dataclass(frozen=True)
class PortRef:
    """A slice of a port: of a core (``core`` set) or of the chip (None)."""

    core: Optional[str]
    port: str
    lo: int
    width: int

    @property
    def hi(self) -> int:
        return self.lo + self.width

    def __str__(self) -> str:
        owner = self.core or "chip"
        if self.width == 1:
            return f"{owner}.{self.port}[{self.lo}]"
        return f"{owner}.{self.port}[{self.hi - 1}:{self.lo}]"


@dataclass(frozen=True)
class Net:
    """A slice-to-slice wire from a driver to a sink (equal widths)."""

    source: PortRef
    dest: PortRef

    def __str__(self) -> str:
        return f"{self.source} -> {self.dest}"


class Soc:
    """A system-on-chip under construction or analysis."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.cores: Dict[str, Core] = {}
        self.chip_inputs: Dict[str, int] = {}
        self.chip_outputs: Dict[str, int] = {}
        self.nets: List[Net] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_core(self, core: Core) -> Core:
        if core.name in self.cores:
            raise SocError(f"duplicate core {core.name!r}")
        self.cores[core.name] = core
        return core

    def add_input(self, name: str, width: int) -> None:
        if name in self.chip_inputs or name in self.chip_outputs:
            raise SocError(f"duplicate chip pin {name!r}")
        self.chip_inputs[name] = width

    def add_output(self, name: str, width: int) -> None:
        if name in self.chip_inputs or name in self.chip_outputs:
            raise SocError(f"duplicate chip pin {name!r}")
        self.chip_outputs[name] = width

    def connect(self, source: PortRef, dest: PortRef) -> Net:
        if source.width != dest.width:
            raise SocError(f"net width mismatch: {source} -> {dest}")
        self._check_ref(source, driving=True)
        self._check_ref(dest, driving=False)
        net = Net(source, dest)
        self.nets.append(net)
        return net

    def wire(
        self,
        source_core: Optional[str],
        source_port: str,
        dest_core: Optional[str],
        dest_port: str,
        width: Optional[int] = None,
        source_lo: int = 0,
        dest_lo: int = 0,
    ) -> Net:
        """Convenience wrapper around :meth:`connect`."""
        if width is None:
            width = (
                self.chip_inputs.get(source_port)
                if source_core is None
                else self.cores[source_core].port_width(source_port)
            )
            if width is None:
                raise SocError(f"cannot infer width of {source_core}.{source_port}")
        return self.connect(
            PortRef(source_core, source_port, source_lo, width),
            PortRef(dest_core, dest_port, dest_lo, width),
        )

    # ------------------------------------------------------------------
    def _check_ref(self, ref: PortRef, driving: bool) -> None:
        if ref.core is None:
            pins = self.chip_inputs if driving else self.chip_outputs
            if ref.port not in pins:
                kind = "input" if driving else "output"
                raise SocError(f"no chip {kind} named {ref.port!r}")
            if ref.hi > pins[ref.port]:
                raise SocError(f"slice {ref} exceeds pin width {pins[ref.port]}")
            return
        core = self.cores.get(ref.core)
        if core is None:
            raise SocError(f"no core named {ref.core!r}")
        component = core.circuit.get(ref.port)
        expected = "output" if driving else "input"
        if component.kind.value != expected:
            raise SocError(f"{ref} must be a core {expected}")
        if ref.hi > component.width:
            raise SocError(f"slice {ref} exceeds port width {component.width}")

    # ------------------------------------------------------------------
    # queries used by planning
    # ------------------------------------------------------------------
    def drivers_of(self, core: Optional[str], port: str) -> List[Net]:
        """Nets whose destination lies in the given port."""
        return [n for n in self.nets if n.dest.core == core and n.dest.port == port]

    def readers_of(self, core: Optional[str], port: str) -> List[Net]:
        """Nets whose source lies in the given port."""
        return [n for n in self.nets if n.source.core == core and n.source.port == port]

    def testable_cores(self) -> List[Core]:
        """Cores tested through transparency (memories use BIST instead)."""
        return [c for c in self.cores.values() if not c.is_memory]

    def validate(self) -> "Soc":
        """Every input bit of every non-memory core must have one driver."""
        for core in self.testable_cores():
            for port in core.circuit.inputs:
                covered = 0
                seen_bits = 0
                for net in self.drivers_of(core.name, port.name):
                    mask = ((1 << net.dest.width) - 1) << net.dest.lo
                    if seen_bits & mask:
                        raise SocError(f"multiple drivers on {core.name}.{port.name}")
                    seen_bits |= mask
                    covered += net.dest.width
                if covered != port.width:
                    raise SocError(
                        f"input {core.name}.{port.name} has {covered}/{port.width} bits driven"
                    )
        return self

    def total_functional_area(self) -> int:
        """Sum of elaborated core areas (cells), cached per core."""
        from repro.elaborate import elaborate

        total = 0
        for core in self.cores.values():
            if core.is_memory:
                continue
            cached = getattr(core, "_area_cache", None)
            if cached is None:
                cached = elaborate(core.circuit).netlist.area()
                core._area_cache = cached  # type: ignore[attr-defined]
            total += cached
        return total
