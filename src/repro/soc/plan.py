"""Per-core test-path identification and SOC test-application time.

For every core under test the planner finds, through the transparency of
the surrounding cores:

* a *delivery* for each input port (justify the upstream core outputs /
  chip PIs feeding it),
* an *observation* for each output slice (propagate through downstream
  cores to chip POs),

inserting a system-level test multiplexer when no path exists (paper
Section 5.1: "If there is no path possible, we add a system-level test
multiplexer").

Timing model (matching the Section 3 worked example exactly):

* a transparency transfer is not pipelined within a core, so a path of
  total latency L delivers one fresh vector every L cycles;
* transfers through different cores (and resource-disjoint paths in the
  same core) overlap freely;
* a shared transparency resource (an RCG arc or a core input port) is
  busy for the latency of each transfer using it, so the per-vector
  cadence is ``max(longest path latency, busiest resource)``;
* per-core TAT = scan_steps x cadence + flush, where scan_steps is the
  HSCAN vector count (V x (depth+1)) and flush = (depth-1) + response
  observation latency -- the DISPLAY's 525 x 9 + 3 = 4,728 cycles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import logging

from repro.errors import SocError
from repro.obs import METRICS, profile_section
from repro.soc.controller import estimate_controller_area
from repro.soc.system import PortRef, Soc
from repro.transparency.versions import CoreVersion, _tmux_cost

#: key of one transparency transfer: (core, "justify"/"propagate", path key)
UsageKey = Tuple[str, str, Tuple]

logger = logging.getLogger("repro.soc.plan")

_PLANS = METRICS.counter("chiplevel.plans")
_DELIVERIES = METRICS.counter("chiplevel.deliveries")
_OBSERVATIONS = METRICS.counter("chiplevel.observations")
_MUX_FALLBACKS = METRICS.counter("chiplevel.mux.fallbacks")
_RESERVATIONS = METRICS.counter("chiplevel.resource.reservations")


@dataclass(frozen=True)
class TestMux:
    """A system-level test multiplexer giving direct pin access."""

    kind: str  # "input" (PI -> core input) | "output" (core output -> PO)
    core: str
    port: str
    lo: int
    width: int

    @property
    def cost(self) -> int:
        return _tmux_cost(self.width)

    def __str__(self) -> str:
        arrow = "PI=>" if self.kind == "input" else "=>PO"
        return f"tmux[{arrow}] {self.core}.{self.port}[{self.lo}+{self.width}]"


@dataclass
class Delivery:
    """How test data reaches one input port of the core under test."""

    core: str
    port: str
    latency: int
    usages: Counter = field(default_factory=Counter)
    via_test_mux: bool = False


@dataclass
class Observation:
    """How one output slice of the core under test reaches chip POs."""

    core: str
    port: str
    lo: int
    width: int
    latency: int
    usages: Counter = field(default_factory=Counter)
    via_test_mux: bool = False


@dataclass
class CoreTestPlan:
    """Complete test schedule information for one core under test."""

    core: str
    deliveries: List[Delivery]
    observations: List[Observation]
    cadence: int
    scan_steps: int
    flush: int

    @property
    def tat(self) -> int:
        return self.scan_steps * self.cadence + self.flush

    def delivery_usages(self) -> Counter:
        """Transparency transfers per scan step on the justification side.

        Two input ports sharing an upstream edge really do use it twice
        per step (the paper counts (NUM, DB) twice for the DISPLAY).
        """
        total: Counter = Counter()
        for delivery in self.deliveries:
            total.update(delivery.usages)
        return total

    def observation_usages(self) -> Counter:
        """Transparency transfers per scan step on the response side.

        Several output slices of the core under test ride the *same*
        downstream propagation together (they arrive on one bus), so a
        usage key is counted once per step, not per slice.
        """
        total: Counter = Counter()
        for observation in self.observations:
            for key, count in observation.usages.items():
                total[key] = max(total[key], count)
        return total

    def all_usages(self) -> Counter:
        return self.delivery_usages() + self.observation_usages()


@dataclass
class SocTestPlan:
    """The chip-level test solution for one version selection."""

    soc: Soc
    selection: Dict[str, int]
    core_plans: Dict[str, CoreTestPlan]
    test_muxes: List[TestMux]

    @property
    def total_tat(self) -> int:
        """Cores are tested one after another (independent clock gating)."""
        return sum(plan.tat for plan in self.core_plans.values())

    def schedule(
        self,
        algorithm: str = "greedy",
        power_budget: Optional[int] = None,
        include_bist: bool = False,
        strict: bool = False,
    ):
        """Pack the core tests into concurrent sessions (a TestSchedule).

        See :mod:`repro.schedule`; imported lazily because the scheduler
        consumes finished plans.  ``strict=True`` lints this plan first
        and raises :class:`~repro.errors.LintError` on rule errors.
        """
        from repro.schedule import schedule_plan

        return schedule_plan(
            self,
            algorithm=algorithm,
            power_budget=power_budget,
            include_bist=include_bist,
            strict=strict,
        )

    @property
    def scheduled_tat(self) -> int:
        """TAT with concurrent sessions (greedy scheduler, no power cap)."""
        return self.schedule().makespan

    @property
    def version_cells(self) -> int:
        return sum(
            self.soc.cores[name].version(index).extra_cells
            for name, index in self.selection.items()
        )

    @property
    def test_mux_cells(self) -> int:
        return sum(mux.cost for mux in self.test_muxes)

    @property
    def controller_cells(self) -> int:
        return estimate_controller_area(self)

    @property
    def chip_dft_cells(self) -> int:
        """Chip-level DFT area: transparency logic + test muxes + controller."""
        return self.version_cells + self.test_mux_cells + self.controller_cells

    def usage_counts(self) -> Counter:
        total: Counter = Counter()
        for plan in self.core_plans.values():
            total.update(plan.all_usages())
        return total


# ----------------------------------------------------------------------
class _Planner:
    def __init__(
        self,
        soc: Soc,
        selection: Dict[str, int],
        allow_test_muxes: bool,
        forced_input_muxes: Set[Tuple[str, str]],
        forced_output_muxes: Set[Tuple[str, str]],
    ) -> None:
        self.soc = soc
        self.selection = selection
        self.allow_test_muxes = allow_test_muxes
        self.forced_input_muxes = forced_input_muxes
        self.forced_output_muxes = forced_output_muxes
        self.test_muxes: List[TestMux] = []
        self._mux_keys: Set[Tuple] = set()
        #: dependency footprint of the core currently being planned
        #: (core consulted -> version index), None when not tracking
        self._deps: Optional[Dict[str, int]] = None

    def version_of(self, core_name: str) -> CoreVersion:
        core = self.soc.cores[core_name]
        index = self.selection.get(core_name, 0)
        if self._deps is not None:
            self._deps[core_name] = index
        return core.version(index)

    # ------------------------------------------------------------------
    # justification side
    # ------------------------------------------------------------------
    def deliver(
        self, core_name: str, port: str, visited: FrozenSet
    ) -> Optional[Tuple[int, Counter]]:
        """Latency + usages to place arbitrary data on a core input port."""
        key = (core_name, port)
        if key in visited:
            return None
        visited = visited | {key}
        worst = 0
        usages: Counter = Counter()
        for net in self.soc.drivers_of(core_name, port):
            if net.source.core is None:
                continue  # chip PI drives it directly: latency 0
            upstream = self.soc.cores.get(net.source.core)
            if upstream is None or upstream.is_memory:
                return None  # cannot justify through a memory core
            result = self.justify_slice(
                net.source.core, net.source.port, net.source.lo, net.source.width, visited
            )
            if result is None:
                return None
            latency, sub_usages = result
            worst = max(worst, latency)
            usages.update(sub_usages)
        return worst, usages

    def justify_slice(
        self, core_name: str, port: str, lo: int, width: int, visited: FrozenSet
    ) -> Optional[Tuple[int, Counter]]:
        """Justify (set) the given output slice of ``core_name``."""
        version = self.version_of(core_name)
        keys = [
            k
            for k in version.justify_paths
            if k[0] == port and k[1] < lo + width and lo < k[1] + k[2]
        ]
        if not keys:
            return None
        latency = version.combined_justify_latency(keys)
        usages: Counter = Counter()
        needed_inputs: Set[str] = set()
        for k in keys:
            path = version.justify_paths[k]
            usages[(core_name, "justify", k)] += 1
            needed_inputs.update(path.terminal_ports)
        feed = 0
        for input_port in sorted(needed_inputs):
            delivered = self._deliver_or_mux(core_name, input_port, visited)
            if delivered is None:
                return None
            feed_latency, feed_usages = delivered
            feed = max(feed, feed_latency)
            usages.update(feed_usages)
        return latency + feed, usages

    def _deliver_or_mux(
        self, core_name: str, port: str, visited: FrozenSet
    ) -> Optional[Tuple[int, Counter]]:
        if ("input", core_name, port) in self._mux_keys or (
            core_name,
            port,
        ) in self.forced_input_muxes:
            self._note_input_mux(core_name, port)
            return 0, Counter()
        result = self.deliver(core_name, port, visited)
        if result is None:
            if not self.allow_test_muxes:
                return None
            _MUX_FALLBACKS.inc()
            self._note_input_mux(core_name, port)
            return 0, Counter()
        return result

    def _note_input_mux(self, core_name: str, port: str) -> None:
        key = ("input", core_name, port)
        if key not in self._mux_keys:
            self._mux_keys.add(key)
            width = self.soc.cores[core_name].port_width(port)
            self.test_muxes.append(TestMux("input", core_name, port, 0, width))
            logger.debug("test mux added: PI => %s.%s", core_name, port)

    # ------------------------------------------------------------------
    # observation side
    # ------------------------------------------------------------------
    def observe_slice(
        self, core_name: str, port: str, lo: int, width: int, visited: FrozenSet
    ) -> Optional[Tuple[int, Counter]]:
        """Propagate the given output slice of ``core_name`` to chip POs."""
        key = (core_name, port, lo, width)
        if key in visited:
            return None
        visited = visited | {key}
        def is_memory_reader(net) -> bool:
            if net.dest.core is None:
                return False
            downstream = self.soc.cores.get(net.dest.core)
            return downstream is None or downstream.is_memory

        nets = [
            n
            for n in self.soc.readers_of(core_name, port)
            if n.source.lo < lo + width
            and lo < n.source.hi
            and not is_memory_reader(n)  # memory cores cannot propagate
        ]
        covered = 0
        for net in nets:
            overlap = min(net.source.hi, lo + width) - max(net.source.lo, lo)
            covered += max(0, overlap)
        if covered < width:
            return None  # some bits go nowhere (or only into excluded cores)
        worst = 0
        usages: Counter = Counter()
        for net in nets:
            if net.dest.core is None:
                continue  # straight to a PO: latency 0
            version = self.version_of(net.dest.core)
            path = version.propagate_paths.get(net.dest.port)
            if path is None:
                return None
            usages[(net.dest.core, "propagate", net.dest.port)] += 1
            deepest = 0
            onward_merged: Counter = Counter()
            for terminal in _terminal_slices(path):
                onward = self._observe_or_mux(
                    net.dest.core, terminal[0], terminal[1], terminal[2], visited
                )
                if onward is None:
                    return None
                onward_latency, onward_usages = onward
                deepest = max(deepest, onward_latency)
                # all terminals of one propagation travel onward together
                for key, count in onward_usages.items():
                    onward_merged[key] = max(onward_merged[key], count)
            usages.update(onward_merged)
            worst = max(worst, path.latency + deepest)
        return worst, usages

    def _observe_or_mux(
        self, core_name: str, port: str, lo: int, width: int, visited: FrozenSet
    ) -> Optional[Tuple[int, Counter]]:
        if ("output", core_name, port, lo, width) in self._mux_keys or (
            core_name,
            port,
        ) in self.forced_output_muxes:
            self._note_output_mux(core_name, port, lo, width)
            return 0, Counter()
        result = self.observe_slice(core_name, port, lo, width, visited)
        if result is None:
            if not self.allow_test_muxes:
                return None
            _MUX_FALLBACKS.inc()
            self._note_output_mux(core_name, port, lo, width)
            return 0, Counter()
        return result

    def _note_output_mux(self, core_name: str, port: str, lo: int, width: int) -> None:
        key = ("output", core_name, port, lo, width)
        if key not in self._mux_keys:
            self._mux_keys.add(key)
            self.test_muxes.append(TestMux("output", core_name, port, lo, width))

    # ------------------------------------------------------------------
    def plan_core(self, core_name: str) -> CoreTestPlan:
        core = self.soc.cores[core_name]
        version = self.version_of(core_name)

        deliveries: List[Delivery] = []
        for port in sorted(p.name for p in core.circuit.inputs):
            result = self._deliver_or_mux(core_name, port, frozenset())
            if result is None:
                raise SocError(f"cannot deliver test data to {core_name}.{port}")
            latency, usages = result
            deliveries.append(
                Delivery(
                    core=core_name,
                    port=port,
                    latency=latency,
                    usages=usages,
                    via_test_mux=("input", core_name, port) in self._mux_keys,
                )
            )

        observations: List[Observation] = []
        assert version.rcg is not None
        for output in sorted(n for n in version.rcg.output_names()):
            for piece in version.rcg.output_slices(output):
                result = self._observe_or_mux(
                    core_name, output, piece.lo, piece.width, frozenset()
                )
                if result is None:
                    raise SocError(f"cannot observe {core_name}.{output}")
                latency, usages = result
                observations.append(
                    Observation(
                        core=core_name,
                        port=output,
                        lo=piece.lo,
                        width=piece.width,
                        latency=latency,
                        usages=usages,
                        via_test_mux=("output", core_name, output, piece.lo, piece.width)
                        in self._mux_keys,
                    )
                )

        cadence = _cadence(self.version_of, deliveries, observations)
        depth = core.scan_depth
        flush = max(0, depth - 1) + max((o.latency for o in observations), default=0)
        return CoreTestPlan(
            core=core_name,
            deliveries=deliveries,
            observations=observations,
            cadence=cadence,
            scan_steps=core.hscan_vectors,
            flush=flush,
        )


def _terminal_slices(path) -> List[Tuple[str, int, int]]:
    terminals = []
    for terminal in path.terminals:
        terminals.append((terminal.comp, terminal.lo, terminal.width))
    return terminals


def _cadence(
    version_of,
    deliveries: List[Delivery],
    observations: List[Observation],
) -> int:
    """max(longest path latency, busiest shared transparency resource).

    ``version_of`` is the planner's (dependency-tracking) version lookup,
    so the plan cache sees the versions the cadence computation reads.
    """
    longest = 1
    for delivery in deliveries:
        longest = max(longest, delivery.latency)
    for observation in observations:
        longest = max(longest, observation.latency)

    busy: Counter = Counter()
    combined: Counter = Counter()
    for delivery in deliveries:
        combined.update(delivery.usages)
    observation_usages: Counter = Counter()
    for observation in observations:
        for key, count in observation.usages.items():
            observation_usages[key] = max(observation_usages[key], count)
    combined.update(observation_usages)
    for (core_name, kind, key), count in combined.items():
        version = version_of(core_name)
        if kind == "justify":
            path = version.justify_paths.get(tuple(key))
        else:
            path = version.propagate_paths.get(key)
        if path is None:
            continue
        for resource in path.arcs_used:
            busy[(core_name, resource)] += count * path.latency
        for port in path.terminal_ports:
            busy[(core_name, "port", port)] += count * path.latency
    _RESERVATIONS.inc(sum(busy.values()))
    busiest = max(busy.values(), default=0)
    return max(longest, busiest)


# ----------------------------------------------------------------------
def plan_soc_test(
    soc: Soc,
    selection: Optional[Dict[str, int]] = None,
    allow_test_muxes: bool = True,
    forced_muxes: Optional[Set[Tuple[str, str]]] = None,
    use_cache: Optional[bool] = None,
    strict: bool = False,
) -> SocTestPlan:
    """Plan the complete SOC test for one version selection.

    ``selection`` maps core name to version index (default: version 0,
    the minimum-area version, for every core).  ``forced_muxes`` is a set
    of ``(core, port)`` pairs that must be pin-connected via system-level
    test muxes (used by the optimizer's escalation step).

    ``use_cache`` controls the incremental planning cache (see
    :mod:`repro.exec.cache`): ``None`` follows the global default
    (on unless ``REPRO_PLAN_CACHE=0``), ``True``/``False`` force it.
    Cached and uncached plans are bit-identical.

    ``strict=True`` runs the structural design rules (:mod:`repro.lint`,
    circuit + soc + transparency scopes) and the symbolic transparency
    certifier (:func:`repro.analysis.strict_gate_access`: slice
    provenance + mux-select consistency of every selected version)
    before planning, raising :class:`~repro.errors.LintError` on any
    rule error or refuted path -- catching malformed designs before a
    single ATPG or simulation cycle.
    """
    from repro.exec.cache import cache_enabled, plan_cache_for

    if strict:
        from repro.lint import strict_gate_soc

        strict_gate_soc(soc)
        from repro.analysis import strict_gate_access

        strict_gate_access(soc, selection)
    with profile_section("chiplevel.plan", soc=soc.name) as section:
        soc.validate()
        if selection is None:
            selection = {core.name: 0 for core in soc.testable_cores()}
        forced_inputs: Set[Tuple[str, str]] = set()
        forced_outputs: Set[Tuple[str, str]] = set()
        for core_name, port in forced_muxes or set():
            kind = soc.cores[core_name].circuit.get(port).kind.value
            if kind == "input":
                forced_inputs.add((core_name, port))
            else:
                forced_outputs.add((core_name, port))
        planner = _Planner(soc, selection, allow_test_muxes, forced_inputs, forced_outputs)
        cache = None
        if use_cache if use_cache is not None else cache_enabled():
            cache = plan_cache_for(soc)
        core_plans: Dict[str, CoreTestPlan] = {}
        if cache is None:
            for core in soc.testable_cores():
                core_plans[core.name] = planner.plan_core(core.name)
        else:
            forced_key = (
                frozenset(forced_inputs),
                frozenset(forced_outputs),
                allow_test_muxes,
            )
            for core in soc.testable_cores():
                name = core.name
                mux_state = frozenset(planner._mux_keys)
                entry = cache.lookup(name, forced_key, mux_state, selection)
                if entry is not None:
                    # replay the side effects the original planning had
                    planner._mux_keys.update(entry.added_mux_keys)
                    planner.test_muxes.extend(entry.added_muxes)
                    core_plans[name] = entry.plan
                    continue
                planner._deps = {}
                muxes_before = len(planner.test_muxes)
                keys_before = set(planner._mux_keys)
                core_plans[name] = planner.plan_core(name)
                cache.store(
                    name,
                    forced_key,
                    mux_state,
                    planner._deps,
                    core_plans[name],
                    planner.test_muxes[muxes_before:],
                    frozenset(planner._mux_keys - keys_before),
                )
                planner._deps = None
        plan = SocTestPlan(
            soc=soc,
            selection=dict(selection),
            core_plans=core_plans,
            test_muxes=planner.test_muxes,
        )
        _PLANS.inc()
        _DELIVERIES.inc(sum(len(p.deliveries) for p in core_plans.values()))
        _OBSERVATIONS.inc(sum(len(p.observations) for p in core_plans.values()))
        section.set(total_tat=plan.total_tat, test_muxes=len(plan.test_muxes))
    return plan
