"""Iterative-improvement core-version selection (paper Section 5.2).

The optimizer starts from the minimum-area selection (version 1 of every
core) and repeatedly replaces one core with its next more expensive
version, scored by ``C = w1 * dTAT + w2 * dA``:

* objective (i), minimize TAT under an area budget: w1=1, w2=0 -- take
  the replacement with the largest test-time improvement;
* objective (ii), minimize area under a TAT budget: w1=0, w2=1 -- take
  the *cheapest* replacement that still has a non-zero improvement.

dTAT is the paper's latency-number heuristic: count how often each
transparency path is used in the current test solution, multiply by its
latency, and compare against the same counts with the candidate version's
latencies.  When upgrading versions stops paying (or no versions remain),
the optimizer escalates to *system-level test multiplexers* on the most
critical port of the core dominating the global TAT -- in the limit the
solution degenerates into a test-bus-like architecture with the minimum
possible test time, exactly as the paper notes.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InfeasibleConstraintError
from repro.obs import METRICS, profile_section
from repro.obs.attrib import ATTRIB
from repro.soc.plan import SocTestPlan, plan_soc_test
from repro.soc.system import Soc
from repro.transparency.versions import CoreVersion

logger = logging.getLogger("repro.soc.optimizer")

_ACCEPTED = METRICS.counter("optimizer.moves.accepted")
_REJECTED = METRICS.counter("optimizer.moves.rejected")
_ESCALATIONS = METRICS.counter("optimizer.mux.escalations")


@dataclass
class DesignPoint:
    """One evaluated (selection, plan) pair of the design space."""

    index: int
    selection: Dict[str, int]
    tat: int
    chip_cells: int
    plan: SocTestPlan = field(repr=False, default=None)  # type: ignore[assignment]

    def label(self) -> str:
        parts = [f"{core}=V{v + 1}" for core, v in sorted(self.selection.items())]
        return ", ".join(parts)


def sweep_context(
    soc: Soc,
    forced_muxes: Optional[Set[Tuple[str, str]]] = None,
    use_cache: Optional[bool] = None,
) -> Tuple:
    """The shared worker context for a parallel design-space sweep.

    Pass this to ``ParallelExecutor(jobs, context=sweep_context(...))``
    when reusing one warm executor across several sweeps of the same SOC
    (the executor hands it to every worker once, at pool start).
    """
    core_names = [core.name for core in soc.testable_cores()]
    return (soc, forced_muxes, use_cache, tuple(core_names))


def _sweep_chunk(context: Tuple, combos: List[Tuple[int, ...]]) -> List[SocTestPlan]:
    """Plan one chunk of version combinations (runs inside a worker)."""
    soc, forced_muxes, use_cache, core_names = context
    plans: List[SocTestPlan] = []
    for combo in combos:
        selection = dict(zip(core_names, combo))
        plan = plan_soc_test(
            soc, selection, forced_muxes=forced_muxes, use_cache=use_cache
        )
        plan.soc = None  # type: ignore[assignment]  # don't pickle the SOC per point
        plans.append(plan)
    return plans


def design_space(
    soc: Soc,
    forced_muxes: Optional[Set[Tuple[str, str]]] = None,
    jobs: Optional[int] = None,
    executor=None,
    use_cache: Optional[bool] = None,
) -> List[DesignPoint]:
    """Evaluate every combination of core versions (Figure 10's points).

    Points are sorted by chip-level DFT cells (ascending), so point 1 is
    the minimum-area design and the last point uses the minimum-latency
    version of every core.

    ``jobs`` fans the sweep out over a worker pool (``None`` follows
    ``REPRO_JOBS``, default serial); an ``executor`` built around
    :func:`sweep_context` can be passed instead to reuse a warm pool.
    Parallel sweeps are bit-identical to serial ones.
    """
    with profile_section("chiplevel.design_space", soc=soc.name):
        return _design_space(soc, forced_muxes, jobs, executor, use_cache)


def _design_space(
    soc: Soc,
    forced_muxes: Optional[Set[Tuple[str, str]]] = None,
    jobs: Optional[int] = None,
    executor=None,
    use_cache: Optional[bool] = None,
) -> List[DesignPoint]:
    from repro.exec import ParallelExecutor

    cores = soc.testable_cores()
    ranges = [range(core.version_count) for core in cores]
    combos = list(itertools.product(*ranges))

    owns_executor = executor is None
    if owns_executor:
        executor = ParallelExecutor(
            jobs, context=sweep_context(soc, forced_muxes, use_cache)
        )
    try:
        chunks = _chunked(combos, executor.jobs * 2)
        plans = [
            plan
            for chunk_plans in executor.map(_sweep_chunk, chunks, chunksize=1)
            for plan in chunk_plans
        ]
    finally:
        if owns_executor:
            executor.close()

    points: List[DesignPoint] = []
    for combo, plan in zip(combos, plans):
        plan.soc = soc  # reattach (workers return plans with the SOC stripped)
        points.append(
            DesignPoint(
                index=0,
                selection={core.name: index for core, index in zip(cores, combo)},
                tat=plan.total_tat,
                chip_cells=plan.chip_dft_cells,
                plan=plan,
            )
        )
    points.sort(key=lambda p: (p.chip_cells, p.tat))
    for i, point in enumerate(points):
        point.index = i + 1
    return points


def _chunked(items: List, parts: int) -> List[List]:
    """Split into at most ``parts`` contiguous runs (order preserved)."""
    if not items:
        return []
    size = max(1, -(-len(items) // max(1, parts)))
    return [items[i : i + size] for i in range(0, len(items), size)]


class SocetOptimizer:
    """Greedy iterative improvement over core versions and test muxes.

    With ``use_schedule=True`` the optimizer scores plans by the
    concurrent-session makespan (:attr:`SocTestPlan.scheduled_tat`)
    instead of the paper's serial sum; the default keeps the serial
    objective so the paper's tables reproduce unchanged.  An optional
    ``power_budget`` caps concurrent scan activity during scheduling.
    """

    def __init__(
        self,
        soc: Soc,
        use_schedule: bool = False,
        power_budget: Optional[int] = None,
    ) -> None:
        self.soc = soc
        self.use_schedule = use_schedule
        self.power_budget = power_budget

    def _tat(self, plan: SocTestPlan) -> int:
        """The objective TAT: serial sum or scheduled makespan."""
        if self.use_schedule:
            return plan.schedule(power_budget=self.power_budget).makespan
        return plan.total_tat

    def _record_move(
        self,
        move: Optional[Tuple[str, str, int, int]],
        before_plan: SocTestPlan,
        after_plan: Optional[SocTestPlan],
        outcome: str,
        forced: Set[Tuple[str, str]],
    ) -> None:
        """Log one candidate move to the attribution trajectory.

        Objective values are the side-effect-free serial TAT
        (``total_tat``) even under ``use_schedule``, so recording never
        perturbs scheduler counters; ``after_plan`` is ``None`` for
        candidates rejected before a plan was evaluated.
        """
        if not ATTRIB.enabled or move is None:
            return
        kind, subject, version_from, version_to = move
        point = None
        if after_plan is not None:
            point = (
                tuple(sorted(after_plan.selection.items())),
                tuple(sorted(forced)),
            )
        ATTRIB.move_event(
            kind=kind,
            subject=subject,
            version_from=version_from,
            version_to=version_to,
            tat_before=before_plan.total_tat,
            tat_after=None if after_plan is None else after_plan.total_tat,
            outcome=outcome,
            point=point,
        )

    # ------------------------------------------------------------------
    # the paper's latency-number heuristic
    # ------------------------------------------------------------------
    def latency_number(self, plan: SocTestPlan, core_name: str, version: CoreVersion) -> int:
        """Sum over the core's used paths of (use count x latency)."""
        total = 0
        for (used_core, kind, key), count in plan.usage_counts().items():
            if used_core != core_name:
                continue
            latency = _path_latency(version, kind, key)
            if latency is not None:
                total += count * latency
        return total

    def replacement_gain(
        self, plan: SocTestPlan, core_name: str
    ) -> Optional[Tuple[int, int]]:
        """(dTAT, dA) for replacing the core with its next version."""
        core = self.soc.cores[core_name]
        current_index = plan.selection.get(core_name, 0)
        if current_index + 1 >= core.version_count:
            return None
        current = core.version(current_index)
        candidate = core.version(current_index + 1)
        delta_tat = self.latency_number(plan, core_name, current) - self.latency_number(
            plan, core_name, candidate
        )
        delta_area = candidate.extra_cells - current.extra_cells
        return delta_tat, delta_area

    # ------------------------------------------------------------------
    # escalation: a system-level test mux on the most critical port
    # ------------------------------------------------------------------
    def most_critical_port(self, plan: SocTestPlan) -> Optional[Tuple[str, str]]:
        """The slowest delivery/observation of the slowest core."""
        slowest = max(plan.core_plans.values(), key=lambda p: p.tat, default=None)
        if slowest is None:
            return None
        best: Optional[Tuple[int, str, str]] = None
        for delivery in slowest.deliveries:
            if delivery.via_test_mux:
                continue
            if best is None or delivery.latency > best[0]:
                best = (delivery.latency, slowest.core, delivery.port)
        for observation in slowest.observations:
            if observation.via_test_mux:
                continue
            if best is None or observation.latency > best[0]:
                best = (observation.latency, slowest.core, observation.port)
        if best is None or best[0] == 0:
            return None
        return (best[1], best[2])

    # ------------------------------------------------------------------
    # objective (i): minimize TAT subject to an area budget
    # ------------------------------------------------------------------
    def minimize_tat(self, max_chip_cells: int) -> Tuple[SocTestPlan, List[DesignPoint]]:
        with profile_section(
            "optimizer.minimize_tat", soc=self.soc.name, budget=max_chip_cells
        ):
            return self._minimize_tat(max_chip_cells)

    def _minimize_tat(self, max_chip_cells: int) -> Tuple[SocTestPlan, List[DesignPoint]]:
        selection = {core.name: 0 for core in self.soc.testable_cores()}
        forced: Set[Tuple[str, str]] = set()
        plan = plan_soc_test(self.soc, selection, forced_muxes=forced)
        if plan.chip_dft_cells > max_chip_cells:
            raise InfeasibleConstraintError(
                f"minimum-area design needs {plan.chip_dft_cells} cells > budget {max_chip_cells}"
            )
        trajectory = [self._point(0, plan)]
        step = 1
        while True:
            best_core, best_gain = None, 0
            for core in self.soc.testable_cores():
                gain = self.replacement_gain(plan, core.name)
                if gain is None:
                    continue
                delta_tat, _ = gain
                if delta_tat > best_gain:
                    best_core, best_gain = core.name, delta_tat
            candidate_plan = None
            move: Optional[Tuple[str, str, int, int]] = None
            if best_core is not None:
                new_selection = dict(plan.selection)
                new_selection[best_core] += 1
                move = (
                    "upgrade", best_core,
                    plan.selection[best_core] + 1, new_selection[best_core] + 1,
                )
                candidate_plan = plan_soc_test(self.soc, new_selection, forced_muxes=forced)
                if candidate_plan.chip_dft_cells > max_chip_cells:
                    _REJECTED.inc()
                    self._record_move(
                        move, plan, candidate_plan, "reject-budget", forced
                    )
                    logger.debug(
                        "reject upgrade %s: %d cells over budget %d",
                        best_core, candidate_plan.chip_dft_cells, max_chip_cells,
                    )
                    candidate_plan = None
            if candidate_plan is None:
                # escalate: test mux on the most critical port
                critical = self.most_critical_port(plan)
                if critical is None:
                    break
                new_forced = forced | {critical}
                version = plan.selection.get(critical[0], 0) + 1
                move = ("mux", f"{critical[0]}.{critical[1]}", version, version)
                mux_plan = plan_soc_test(self.soc, plan.selection, forced_muxes=new_forced)
                if (
                    mux_plan.chip_dft_cells > max_chip_cells
                    or self._tat(mux_plan) >= self._tat(plan)
                ):
                    _REJECTED.inc()
                    self._record_move(
                        move, plan, mux_plan,
                        "reject-budget"
                        if mux_plan.chip_dft_cells > max_chip_cells
                        else "reject-no-gain",
                        new_forced,
                    )
                    break
                forced = new_forced
                candidate_plan = mux_plan
                _ESCALATIONS.inc()
                logger.info("escalate: test mux on %s.%s", *critical)
            if self._tat(candidate_plan) >= self._tat(plan) and candidate_plan.selection == plan.selection:
                _REJECTED.inc()
                self._record_move(move, plan, candidate_plan, "reject-no-gain", forced)
                break
            previous = plan
            plan = candidate_plan
            _ACCEPTED.inc()
            self._record_move(move, previous, candidate_plan, "accept", forced)
            logger.debug(
                "accept move %d: TAT %d, %d cells",
                step, self._tat(plan), plan.chip_dft_cells,
            )
            trajectory.append(self._point(step, plan))
            step += 1
        return plan, trajectory

    # ------------------------------------------------------------------
    # objective (ii): minimize area subject to a TAT budget
    # ------------------------------------------------------------------
    def minimize_area(self, max_tat_cycles: int) -> Tuple[SocTestPlan, List[DesignPoint]]:
        with profile_section(
            "optimizer.minimize_area", soc=self.soc.name, budget=max_tat_cycles
        ):
            return self._minimize_area(max_tat_cycles)

    def _minimize_area(self, max_tat_cycles: int) -> Tuple[SocTestPlan, List[DesignPoint]]:
        selection = {core.name: 0 for core in self.soc.testable_cores()}
        forced: Set[Tuple[str, str]] = set()
        plan = plan_soc_test(self.soc, selection, forced_muxes=forced)
        trajectory = [self._point(0, plan)]
        step = 1
        while self._tat(plan) > max_tat_cycles:
            best: Optional[Tuple[int, str]] = None  # (delta_area, core)
            for core in self.soc.testable_cores():
                gain = self.replacement_gain(plan, core.name)
                if gain is None:
                    continue
                delta_tat, delta_area = gain
                if delta_tat <= 0:
                    _REJECTED.inc()
                    version = plan.selection.get(core.name, 0) + 1
                    self._record_move(
                        ("upgrade", core.name, version, version + 1),
                        plan, None, "reject-no-gain", forced,
                    )
                    continue
                if best is None or delta_area < best[0]:
                    best = (delta_area, core.name)
            if best is not None:
                new_selection = dict(plan.selection)
                new_selection[best[1]] += 1
                previous = plan
                plan = plan_soc_test(self.soc, new_selection, forced_muxes=forced)
                _ACCEPTED.inc()
                self._record_move(
                    ("upgrade", best[1],
                     previous.selection[best[1]] + 1, new_selection[best[1]] + 1),
                    previous, plan, "accept", forced,
                )
                logger.debug(
                    "accept move %d: upgrade %s, TAT %d", step, best[1], self._tat(plan)
                )
            else:
                critical = self.most_critical_port(plan)
                if critical is None:
                    raise InfeasibleConstraintError(
                        f"TAT budget {max_tat_cycles} unreachable; floor is {self._tat(plan)}"
                    )
                forced = forced | {critical}
                previous = plan
                plan = plan_soc_test(self.soc, plan.selection, forced_muxes=forced)
                _ESCALATIONS.inc()
                version = previous.selection.get(critical[0], 0) + 1
                self._record_move(
                    ("mux", f"{critical[0]}.{critical[1]}", version, version),
                    previous, plan, "accept", forced,
                )
                logger.info("escalate: test mux on %s.%s", *critical)
            trajectory.append(self._point(step, plan))
            step += 1
        return plan, trajectory

    # ------------------------------------------------------------------
    def _point(self, index: int, plan: SocTestPlan) -> DesignPoint:
        return DesignPoint(
            index=index,
            selection=dict(plan.selection),
            tat=self._tat(plan),
            chip_cells=plan.chip_dft_cells,
            plan=plan,
        )


def _path_latency(version: CoreVersion, kind: str, key) -> Optional[int]:
    if kind == "justify":
        path = version.justify_paths.get(tuple(key))
        if path is not None:
            return path.latency
        # slice partition changed across versions: combine overlapping slices
        port, lo, width = key
        overlapping = [
            k for k in version.justify_paths if k[0] == port and k[1] < lo + width and lo < k[1] + k[2]
        ]
        if not overlapping:
            return None
        return version.combined_justify_latency(overlapping)
    path = version.propagate_paths.get(key)
    return None if path is None else path.latency
