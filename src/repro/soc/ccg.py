"""The core connectivity graph (CCG) as an inspectable networkx digraph.

Nodes (paper Figure 9): chip PIs and POs, and per-core input/output port
*slices* (ports split where their fanin/fanout or transparency structure
splits them).  Edges:

* transparency edges inside a core (weight = transparency latency), and
* interconnect wires between cores / pins (weight 0).

The planner in :mod:`repro.soc.plan` performs its own recursive search
(with resource serialization the plain graph cannot express), but the
CCG is the right object for visualization, reachability analysis, and
the shortest-path intuition of Section 5.1 -- and the tests assert its
shape matches the paper's figure for the barcode system.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx

from repro.obs import METRICS, profile_section
from repro.soc.system import Soc

NodeId = Tuple[str, ...]  # ("PI", pin) | ("PO", pin) | ("CI"/"CO", core, port, lo, width)

_CCG_BUILDS = METRICS.counter("chiplevel.ccg.builds")
_CCG_QUERIES = METRICS.counter("chiplevel.ccg.queries")
_CCG_EXPANSIONS = METRICS.counter("chiplevel.ccg.expansions")


def build_ccg(soc: Soc, selection: Optional[Dict[str, int]] = None) -> "nx.DiGraph":
    """Build the CCG for one version selection (default: all version 0)."""
    with profile_section("chiplevel.ccg", soc=soc.name):
        _CCG_BUILDS.inc()
        return _build_ccg(soc, selection)


def _build_ccg(soc: Soc, selection: Optional[Dict[str, int]] = None) -> "nx.DiGraph":
    if selection is None:
        selection = {core.name: 0 for core in soc.testable_cores()}
    graph = nx.DiGraph(name=f"ccg:{soc.name}")

    for pin, width in soc.chip_inputs.items():
        graph.add_node(("PI", pin), width=width, kind="PI")
    for pin, width in soc.chip_outputs.items():
        graph.add_node(("PO", pin), width=width, kind="PO")

    # core port slice nodes from transparency edges + interconnect
    for core in soc.testable_cores():
        version = core.version(selection.get(core.name, 0))
        for port in core.circuit.inputs:
            graph.add_node(("CI", core.name, port.name, 0, port.width), kind="CI")
        for edge in version.edges:
            graph.add_node(
                ("CO", core.name, edge.output, edge.output_lo, edge.output_width),
                kind="CO",
            )
        for edge in version.edges:
            graph.add_edge(
                ("CI", core.name, edge.input_port, 0, core.port_width(edge.input_port)),
                ("CO", core.name, edge.output, edge.output_lo, edge.output_width),
                weight=edge.latency,
                kind="transparency",
            )

    # interconnect edges (weight 0); output-slice nodes may need matching
    for net in soc.nets:
        source = _find_source_node(graph, soc, net)
        dest = _find_dest_node(graph, soc, net)
        if source is not None and dest is not None:
            graph.add_edge(source, dest, weight=0, kind="wire")
    return graph


def _find_source_node(graph: "nx.DiGraph", soc: Soc, net) -> Optional[NodeId]:
    if net.source.core is None:
        node = ("PI", net.source.port)
        return node if graph.has_node(node) else None
    # find a CO slice node overlapping the net's source slice
    for node in graph.nodes:
        if node[0] != "CO" or node[1] != net.source.core or node[2] != net.source.port:
            continue
        lo, width = node[3], node[4]
        if lo < net.source.hi and net.source.lo < lo + width:
            return node
    return None


def _find_dest_node(graph: "nx.DiGraph", soc: Soc, net) -> Optional[NodeId]:
    if net.dest.core is None:
        node = ("PO", net.dest.port)
        return node if graph.has_node(node) else None
    for node in graph.nodes:
        if node[0] == "CI" and node[1] == net.dest.core and node[2] == net.dest.port:
            return node
    return None


def shortest_justification(
    graph: "nx.DiGraph", target: NodeId
) -> Optional[Tuple[int, list]]:
    """Min-latency path from any PI to ``target`` (Dijkstra, Section 5.1).

    Returns (cost, node list) or None when the target is unreachable --
    the situation that calls for a system-level test multiplexer.
    """
    _CCG_QUERIES.inc()
    best: Optional[Tuple[int, list]] = None
    for node, data in graph.nodes(data=True):
        if data.get("kind") != "PI":
            continue
        try:
            cost, path = nx.single_source_dijkstra(graph, node, target, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        _CCG_EXPANSIONS.inc(len(path))
        if best is None or cost < best[0]:
            best = (int(cost), path)
    return best
