"""Test-controller synthesis (the paper's small FSM + clock gating).

The methodology requires each core to be independently clock-gated and
the transparency/scan mode selects to be driven during test.  We
synthesize a controller specification -- the control signals, a cycle
counter, and the per-core phase schedule -- and estimate its area so the
chip-level DFT accounting includes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.soc.plan import CoreTestPlan, SocTestPlan

#: cells per controlled signal (driver flop + gate)
_CELLS_PER_SIGNAL = 2
#: cells per counter bit
_CELLS_PER_COUNTER_BIT = 5
#: fixed FSM decode glue
_CELLS_FSM_BASE = 10


@dataclass
class ControlSignal:
    """One signal the controller drives during test."""

    name: str
    purpose: str  # "clock-gate" | "scan-enable" | "mux-select" | "test-mux"


@dataclass
class TestController:
    """Synthesized controller specification."""

    signals: List[ControlSignal] = field(default_factory=list)
    counter_bits: int = 0
    phase_count: int = 0

    @property
    def area(self) -> int:
        return (
            _CELLS_PER_SIGNAL * len(self.signals)
            + _CELLS_PER_COUNTER_BIT * self.counter_bits
            + _CELLS_FSM_BASE
        )


def synthesize_controller(plan: "SocTestPlan") -> TestController:
    """Derive the controller for a finished SOC test plan."""
    signals: List[ControlSignal] = []
    mux_selects: Dict[Tuple[str, str], None] = {}

    for core in plan.soc.testable_cores():
        signals.append(ControlSignal(f"tctrl_clk_{core.name}", "clock-gate"))
        signals.append(ControlSignal(f"tctrl_se_{core.name}", "scan-enable"))
        version = core.version(plan.selection.get(core.name, 0))
        for path in list(version.justify_paths.values()) + list(
            version.propagate_paths.values()
        ):
            for key in path.arcs_used:
                source, dest, mux_path = key
                for mux_name, _ in mux_path:
                    mux_selects.setdefault((core.name, mux_name), None)
    for core_name, mux_name in sorted(mux_selects):
        signals.append(ControlSignal(f"tctrl_sel_{core_name}_{mux_name}", "mux-select"))
    for index, _ in enumerate(plan.test_muxes):
        signals.append(ControlSignal(f"tctrl_tmux_{index}", "test-mux"))

    total_tat = max(plan.total_tat, 1)
    counter_bits = max(1, (total_tat).bit_length())
    phase_count = 3 * max(1, len(plan.core_plans))  # deliver / shift / flush per core
    return TestController(signals=signals, counter_bits=counter_bits, phase_count=phase_count)


def estimate_controller_area(plan: "SocTestPlan") -> int:
    """Area of the synthesized controller in cells."""
    return synthesize_controller(plan).area


def clock_enable_trace(core_plan: "CoreTestPlan") -> Iterator[bool]:
    """Per-cycle scan-clock enable for the core under test.

    The scan clock fires once every ``cadence`` cycles (when fresh data
    has arrived at the core inputs), then free-runs for the flush.
    Yields exactly ``core_plan.tat`` booleans.
    """
    cadence = max(1, core_plan.cadence)
    for cycle in range(core_plan.scan_steps * cadence):
        yield (cycle + 1) % cadence == 0
    for _ in range(core_plan.flush):
        yield True
