"""A core: RTL + HSCAN plan + transparency versions + precomputed tests.

This is the artifact the paper says the core provider ships: the DFT'd
design, its available transparency versions with their latency/area
trade-offs, and the test set size (the user only needs the vector count
to plan chip-level testing; the vectors themselves are replayed during
evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dft.hscan import HscanResult, insert_hscan
from repro.dft.tat import hscan_vector_count
from repro.errors import SocError
from repro.rtl.circuit import RTLCircuit
from repro.transparency.versions import CoreVersion, generate_versions


@dataclass
class Core:
    """One embedded core of the SOC."""

    name: str
    circuit: RTLCircuit
    #: HSCAN plan (None for memory cores, which are BIST-tested)
    hscan: Optional[HscanResult]
    versions: List[CoreVersion]
    #: number of combinational (full-scan) test vectors for 100% efficiency
    test_vectors: int
    is_memory: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(
        cls,
        circuit: RTLCircuit,
        test_vectors: Optional[int] = None,
        is_memory: bool = False,
        atpg_seed: int = 0,
    ) -> "Core":
        """Prepare a core: HSCAN insertion, versions, and (optionally) ATPG.

        Pass ``test_vectors`` to skip ATPG (e.g. for vendor-supplied test
        sets); otherwise the combinational ATPG runs on the elaborated
        netlist to size the precomputed test set.  Memory cores get no
        scan/transparency preparation -- they are BIST-tested.
        """
        if is_memory:
            return cls(
                name=circuit.name,
                circuit=circuit,
                hscan=None,
                versions=[],
                test_vectors=test_vectors or 0,
                is_memory=True,
            )
        hscan = insert_hscan(circuit)
        versions = generate_versions(circuit, hscan)
        if test_vectors is None:
            from repro.atpg.combinational import CombinationalAtpg
            from repro.elaborate import elaborate

            outcome = CombinationalAtpg(elaborate(circuit).netlist, seed=atpg_seed).run()
            test_vectors = len(outcome.patterns)
        return cls(
            name=circuit.name,
            circuit=circuit,
            hscan=hscan,
            versions=versions,
            test_vectors=test_vectors,
            is_memory=is_memory,
        )

    # ------------------------------------------------------------------
    def version(self, index: int) -> CoreVersion:
        try:
            return self.versions[index]
        except IndexError:
            raise SocError(
                f"core {self.name!r} has {len(self.versions)} versions, not {index + 1}"
            ) from None

    @property
    def version_count(self) -> int:
        return len(self.versions)

    @property
    def scan_depth(self) -> int:
        if self.hscan is None:
            return 0
        return self.hscan.depth

    @property
    def hscan_vectors(self) -> int:
        """Scan-cycle count of the precomputed test set."""
        return hscan_vector_count(self.test_vectors, self.scan_depth)

    @property
    def flip_flops(self) -> int:
        return self.circuit.flip_flop_count()

    @property
    def input_bits(self) -> int:
        return self.circuit.input_bit_count()

    def port_width(self, port: str) -> int:
        return self.circuit.get(port).width
