"""Bit-level helpers shared by the simulator, ATPG, and fault machinery.

The logic simulator packs up to 64 test patterns into a single Python int
(word-parallel simulation); these helpers convert between bit lists,
integers, and packed pattern words.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

_M1 = 0x5555555555555555
_M2 = 0x3333333333333333
_M4 = 0x0F0F0F0F0F0F0F0F
_H01 = 0x0101010101010101
_MASK64 = (1 << 64) - 1


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack ``bits`` (LSB first) into an integer.

    >>> bits_to_int([1, 0, 1])
    5
    """
    value = 0
    for position, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit at position {position} is {bit!r}, expected 0 or 1")
        value |= bit << position
    return value


def int_to_bits(value: int, width: int) -> List[int]:
    """Unpack ``value`` into ``width`` bits, LSB first.

    >>> int_to_bits(5, 4)
    [1, 0, 1, 0]
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    return [(value >> i) & 1 for i in range(width)]


def pack_patterns(patterns: Iterable[Sequence[int]], signal_count: int) -> List[int]:
    """Pack up to 64 patterns into per-signal words.

    ``patterns`` is an iterable of bit vectors (one per pattern, each of
    length ``signal_count``).  The result is one word per signal where bit
    *p* of word *s* is the value of signal *s* in pattern *p*.
    """
    words = [0] * signal_count
    count = 0
    for pattern_index, pattern in enumerate(patterns):
        if pattern_index >= 64:
            raise ValueError("at most 64 patterns can be packed into one word")
        if len(pattern) != signal_count:
            raise ValueError(
                f"pattern {pattern_index} has {len(pattern)} bits, expected {signal_count}"
            )
        for signal_index, bit in enumerate(pattern):
            if bit:
                words[signal_index] |= 1 << pattern_index
        count += 1
    return words


def popcount64(word: int) -> int:
    """Count set bits in a 64-bit word (SWAR popcount).

    >>> popcount64(0b1011)
    3
    """
    word &= _MASK64
    word -= (word >> 1) & _M1
    word = (word & _M2) + ((word >> 2) & _M2)
    word = (word + (word >> 4)) & _M4
    return ((word * _H01) & _MASK64) >> 56
