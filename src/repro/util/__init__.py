"""Small shared utilities: bit packing, table rendering, name generation."""

from repro.util.bitops import bits_to_int, int_to_bits, pack_patterns, popcount64
from repro.util.namegen import NameGenerator
from repro.util.tables import render_table

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "pack_patterns",
    "popcount64",
    "NameGenerator",
    "render_table",
]
