"""Plain-text table rendering for experiment reports and benches.

The benchmark harnesses print the same rows the paper's tables report;
this renderer keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a monospace table with a header rule.

    ``rows`` cells are stringified with ``str``; numeric cells are
    right-aligned, text cells left-aligned.
    """
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    for index, row in enumerate(text_rows):
        if len(row) != columns:
            raise ValueError(f"row {index} has {len(row)} cells, expected {columns}")

    widths = [len(header) for header in headers]
    for row in text_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    numeric = [True] * columns
    for row_index, row in enumerate(rows):
        for column, cell in enumerate(row):
            if not isinstance(cell, (int, float)):
                numeric[column] = False

    def format_row(cells: Sequence[str]) -> str:
        parts = []
        for column, cell in enumerate(cells):
            if numeric[column]:
                parts.append(cell.rjust(widths[column]))
            else:
                parts.append(cell.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in text_rows)
    return "\n".join(lines)
