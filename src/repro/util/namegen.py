"""Deterministic unique-name generation for synthesized test structures."""

from __future__ import annotations

from typing import Dict, Iterable, Set


class NameGenerator:
    """Produces unique names with a given prefix, avoiding reserved names.

    Used by DFT insertion and elaboration so that synthesized cells (scan
    muxes, freeze gates, test controllers) get stable, readable names that
    never collide with user-defined ones.
    """

    def __init__(self, reserved: Iterable[str] = ()) -> None:
        self._reserved: Set[str] = set(reserved)
        self._counters: Dict[str, int] = {}

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken so it is never generated."""
        self._reserved.add(name)

    def fresh(self, prefix: str) -> str:
        """Return a new unique name of the form ``prefix_<n>``."""
        counter = self._counters.get(prefix, 0)
        while True:
            candidate = f"{prefix}_{counter}"
            counter += 1
            if candidate not in self._reserved:
                self._counters[prefix] = counter
                self._reserved.add(candidate)
                return candidate
