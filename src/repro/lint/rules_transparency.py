"""Transparency-mode design rules: static proofs over the RCG.

Each synthesized :class:`~repro.transparency.versions.CoreVersion`
declares justify/propagate paths with latencies; the planner and the
TAT accounting trust them blindly.  These rules re-prove the claims
without simulating:

* every core input must propagate to some output (coverage), and every
  output slice must be justifiable from inputs;
* each declared latency must be *achievable*: an independent shortest-
  path pass over the version's RCG establishes a lower bound, and a
  declared latency below it is a lie the downstream cadence math would
  silently absorb.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator

from repro.lint.diagnostics import Diagnostic, Severity, location
from repro.lint.registry import LintContext
from repro.rtl.types import Slice


def _shortest_latencies(rcg, reverse: bool = False) -> Dict[str, Dict[str, int]]:
    """Min transfer latency between RCG components (Dijkstra per source).

    Forward: from every input component to all others.  ``reverse``:
    from every output component backwards along arcs (for justification).
    Component-level, so the result is a lower bound on any slice-exact
    path -- exactly what an achievability proof needs.
    """
    adjacency: Dict[str, list] = {}
    for arc in rcg.arcs:
        a, b = arc.source.comp, arc.dest.comp
        if reverse:
            a, b = b, a
        adjacency.setdefault(a, []).append((b, arc.latency))

    sources = rcg.output_names() if reverse else rcg.input_names()
    results: Dict[str, Dict[str, int]] = {}
    for source in sources:
        dist = {source: 0}
        heap = [(0, source)]
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > dist.get(node, cost):
                continue
            for nxt, weight in adjacency.get(node, ()):
                candidate = cost + weight
                if candidate < dist.get(nxt, candidate + 1):
                    dist[nxt] = candidate
                    heapq.heappush(heap, (candidate, nxt))
        results[source] = dist
    return results


def _iter_versions(ctx: LintContext):
    if ctx.soc is None:
        return
    for core in ctx.soc.testable_cores():
        for version in core.versions:
            if version.rcg is not None:
                yield core, version


def check_input_propagation(ctx: LintContext) -> Iterator[Diagnostic]:
    """trans.input-propagation: every core input reaches some output."""
    for core, version in _iter_versions(ctx):
        forward = _shortest_latencies(version.rcg)
        outputs = set(version.rcg.output_names())
        for input_name in sorted(version.rcg.input_names()):
            where = location(
                ctx.system, ("core", core.name),
                ("version", version.index + 1), ("port", input_name),
            )
            declared = version.propagate_paths.get(input_name)
            provable = any(out in forward.get(input_name, {}) for out in outputs)
            port_slice = Slice(input_name, 0, core.circuit.get(input_name).width)
            if declared is None:
                yield Diagnostic(
                    rule="trans.input-propagation",
                    severity=Severity.ERROR,
                    location=where,
                    message=(
                        f"input slice {port_slice} has no propagate path in "
                        f"{version.name} of {core.name}"
                        + ("" if provable else " and the RCG admits none")
                    ),
                    hint=(
                        "regenerate the version with "
                        "repro.transparency.generate_versions (Core.from_circuit "
                        "runs it), or add a transparency mux to an output"
                    ),
                )
            elif not provable:
                yield Diagnostic(
                    rule="trans.input-propagation",
                    severity=Severity.ERROR,
                    location=where,
                    message=(
                        f"declared propagate path for {port_slice} is not "
                        f"supported by any RCG route to an output"
                    ),
                    hint=(
                        "the version's RCG and its paths are out of sync; "
                        "regenerate with repro.transparency.generate_versions"
                    ),
                )


def check_output_justification(ctx: LintContext) -> Iterator[Diagnostic]:
    """trans.output-justification: every output slice justifiable from inputs."""
    for core, version in _iter_versions(ctx):
        backward = _shortest_latencies(version.rcg, reverse=True)
        inputs = set(version.rcg.input_names())
        for output in sorted(version.rcg.output_names()):
            reachable = backward.get(output, {})
            provable = any(name in reachable for name in inputs)
            for piece in version.rcg.output_slices(output):
                key = (piece.comp, piece.lo, piece.width)
                where = location(
                    ctx.system, ("core", core.name),
                    ("version", version.index + 1), ("port", str(piece)),
                )
                if key not in version.justify_paths:
                    yield Diagnostic(
                        rule="trans.output-justification",
                        severity=Severity.ERROR,
                        location=where,
                        message=(
                            f"output slice {piece} has no justify path in "
                            f"{version.name} of {core.name}"
                            + ("" if provable else " and the RCG admits none")
                        ),
                        hint=(
                            "regenerate the version with "
                            "repro.transparency.generate_versions (Core.from_circuit "
                            "runs it), or add a transparency mux from an input"
                        ),
                    )
                elif not provable:
                    yield Diagnostic(
                        rule="trans.output-justification",
                        severity=Severity.ERROR,
                        location=where,
                        message=(
                            f"declared justify path for {piece} is not supported "
                            f"by any RCG route from an input"
                        ),
                        hint=(
                            "the version's RCG and its paths are out of sync; "
                            "regenerate with repro.transparency.generate_versions"
                        ),
                    )


def check_latency_claims(ctx: LintContext) -> Iterator[Diagnostic]:
    """trans.latency-overrun: declared latencies are achievable lower bounds.

    The shortest component-level route through the RCG can only be
    *faster* than any real slice-exact path, so a declared latency below
    that bound is provably wrong (it would shrink cadences and TAT).
    """
    for core, version in _iter_versions(ctx):
        forward = _shortest_latencies(version.rcg)
        backward = _shortest_latencies(version.rcg, reverse=True)
        inputs = set(version.rcg.input_names())
        for input_name, path in sorted(version.propagate_paths.items()):
            bound = min(
                (forward.get(input_name, {}).get(out)
                 for out in version.rcg.output_names()
                 if out in forward.get(input_name, {})),
                default=None,
            )
            if bound is not None and path.latency < bound:
                yield Diagnostic(
                    rule="trans.latency-overrun",
                    severity=Severity.ERROR,
                    location=location(
                        ctx.system, ("core", core.name),
                        ("version", version.index + 1), ("port", input_name),
                    ),
                    message=(
                        f"propagate path for {input_name!r} declares latency "
                        f"{path.latency} but no RCG route is faster than {bound}"
                    ),
                    hint="recompute the path latency; the TAT model relies on it",
                )
        for key, path in sorted(version.justify_paths.items()):
            reachable = backward.get(key[0], {})
            bound = min(
                (reachable[name] for name in inputs if name in reachable),
                default=None,
            )
            if bound is not None and path.latency < bound:
                yield Diagnostic(
                    rule="trans.latency-overrun",
                    severity=Severity.ERROR,
                    location=location(
                        ctx.system, ("core", core.name),
                        ("version", version.index + 1),
                        ("port", str(Slice(key[0], key[1], key[2]))),
                    ),
                    message=(
                        f"justify path for {Slice(key[0], key[1], key[2])} declares "
                        f"latency {path.latency} but no RCG route is faster than {bound}"
                    ),
                    hint="recompute the path latency; the TAT model relies on it",
                )


def register_rules(registry) -> None:
    from repro.lint.registry import Rule

    registry.register(Rule(
        "trans.input-propagation", "soc", Severity.ERROR,
        "every core input propagates to an output", check_input_propagation,
    ))
    registry.register(Rule(
        "trans.output-justification", "soc", Severity.ERROR,
        "every output slice justifies from inputs", check_output_justification,
    ))
    registry.register(Rule(
        "trans.latency-overrun", "soc", Severity.WARNING,
        "declared latencies clear the RCG lower bound (advisory; "
        "analysis.slice-provenance carries the exact proof)",
        check_latency_claims,
    ))
