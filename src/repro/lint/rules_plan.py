"""SOC-test-plan design rules: reservations, mux bookkeeping, TAT math.

A :class:`~repro.soc.plan.SocTestPlan` encodes the paper's Section 5
solution; these rules re-derive its internal invariants from first
principles so a hand-edited, cached, or corrupted plan is rejected
before any simulation spends cycles on it:

* per-vector reservation windows on shared transparency resources must
  fit inside the declared cadence (the paper's edge-reservation rule);
* every delivery/observation that fell back to a system-level test mux
  must have that mux recorded in the plan (it is real chip area);
* scan-step and flush accounting must match the core's HSCAN data and
  the observation latencies;
* the version selection must name real versions of real cores.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity, location
from repro.lint.registry import LintContext


def _version_of(plan, core_name: str):
    core = plan.soc.cores.get(core_name)
    if core is None:
        return None
    index = plan.selection.get(core_name, 0)
    if not 0 <= index < core.version_count:
        return None
    return core.version(index)


def check_infeasible(ctx: LintContext) -> Iterator[Diagnostic]:
    """plan.infeasible: the plan layer could be built at all."""
    if ctx.plan is None and ctx.plan_error is not None:
        yield Diagnostic(
            rule="plan.infeasible",
            severity=Severity.ERROR,
            location=location(ctx.system, "plan"),
            message=f"test plan cannot be built: {ctx.plan_error}",
            hint="fix the netlist/transparency errors above, or allow test muxes",
        )


def check_reservation_windows(ctx: LintContext) -> Iterator[Diagnostic]:
    """plan.reservation-overlap: cadence covers every resource's busy time.

    Each transparency transfer occupies its RCG arcs and terminal ports
    for its full latency, per use, per scan step.  If a core's declared
    per-vector cadence is shorter than the busiest shared resource's
    total reservation (or than the longest path), consecutive windows
    collide and vectors would overwrite each other in flight.
    """
    plan = ctx.plan
    if plan is None:
        return
    for core_name, core_plan in sorted(plan.core_plans.items()):
        longest = 1
        for delivery in core_plan.deliveries:
            longest = max(longest, delivery.latency)
        for observation in core_plan.observations:
            longest = max(longest, observation.latency)
        busy: Counter = Counter()
        for (conduit, kind, key), count in core_plan.all_usages().items():
            version = _version_of(plan, conduit)
            if version is None:
                continue  # plan.selection-range reports this
            if kind == "justify":
                path = version.justify_paths.get(tuple(key))
            else:
                path = version.propagate_paths.get(key)
            if path is None:
                continue
            for resource in path.arcs_used:
                busy[(conduit, resource)] += count * path.latency
            for port in path.terminal_ports:
                busy[(conduit, "port", port)] += count * path.latency
        where = location(ctx.system, ("core", core_name))
        if core_plan.cadence < longest:
            yield Diagnostic(
                rule="plan.reservation-overlap",
                severity=Severity.ERROR,
                location=where,
                message=(
                    f"cadence {core_plan.cadence} is shorter than the longest "
                    f"delivery/observation path ({longest} cycles)"
                ),
                hint="cadence must be max(longest path, busiest resource)",
            )
        if busy:
            resource, total = max(busy.items(), key=lambda kv: (kv[1], repr(kv[0])))
            if core_plan.cadence < total:
                yield Diagnostic(
                    rule="plan.reservation-overlap",
                    severity=Severity.ERROR,
                    location=where,
                    message=(
                        f"cadence {core_plan.cadence} cannot hold the "
                        f"{total}-cycle reservation on shared resource "
                        f"{resource[0]}:{resource[1]}"
                    ),
                    hint="reservation windows on a shared CCG edge must not overlap",
                )


def check_mux_bookkeeping(ctx: LintContext) -> Iterator[Diagnostic]:
    """plan.mux-unrecorded: every test-mux fallback is a recorded TestMux."""
    plan = ctx.plan
    if plan is None:
        return
    input_muxes = {(m.core, m.port) for m in plan.test_muxes if m.kind == "input"}
    output_muxes = {
        (m.core, m.port, m.lo, m.width) for m in plan.test_muxes if m.kind == "output"
    }
    for core_name, core_plan in sorted(plan.core_plans.items()):
        for delivery in core_plan.deliveries:
            if delivery.via_test_mux and (core_name, delivery.port) not in input_muxes:
                yield Diagnostic(
                    rule="plan.mux-unrecorded",
                    severity=Severity.ERROR,
                    location=location(
                        ctx.system, ("core", core_name), ("port", delivery.port)
                    ),
                    message=(
                        f"delivery to {core_name}.{delivery.port} claims a test-mux "
                        f"fallback but no input test mux is recorded"
                    ),
                    hint="the mux is real chip area; record it or re-plan",
                )
        for observation in core_plan.observations:
            key = (core_name, observation.port, observation.lo, observation.width)
            if observation.via_test_mux and key not in output_muxes:
                yield Diagnostic(
                    rule="plan.mux-unrecorded",
                    severity=Severity.ERROR,
                    location=location(
                        ctx.system, ("core", core_name),
                        ("port", f"{observation.port}[{observation.lo}+{observation.width}]"),
                    ),
                    message=(
                        f"observation of {core_name}.{observation.port}"
                        f"[{observation.lo}+{observation.width}] claims a test-mux "
                        f"fallback but no output test mux is recorded"
                    ),
                    hint="the mux is real chip area; record it or re-plan",
                )


def check_tat_accounting(ctx: LintContext) -> Iterator[Diagnostic]:
    """plan.tat-consistency: scan steps and flush match their sources.

    ``scan_steps`` must equal the core's HSCAN vector count and
    ``flush`` must equal (depth-1) + the slowest observation latency --
    the Section 3 formula the total TAT is built from.
    """
    plan = ctx.plan
    if plan is None:
        return
    for core_name, core_plan in sorted(plan.core_plans.items()):
        core = plan.soc.cores.get(core_name)
        if core is None:
            continue
        where = location(ctx.system, ("core", core_name))
        if core_plan.scan_steps != core.hscan_vectors:
            yield Diagnostic(
                rule="plan.tat-consistency",
                severity=Severity.ERROR,
                location=where,
                message=(
                    f"plan records {core_plan.scan_steps} scan steps but the "
                    f"core's HSCAN test set needs {core.hscan_vectors}"
                ),
                hint="scan_steps = vectors x (depth+1); re-derive from the core",
            )
        expected_flush = max(0, core.scan_depth - 1) + max(
            (o.latency for o in core_plan.observations), default=0
        )
        if core_plan.flush != expected_flush:
            yield Diagnostic(
                rule="plan.tat-consistency",
                severity=Severity.ERROR,
                location=where,
                message=(
                    f"plan records flush {core_plan.flush} but depth and "
                    f"observation latencies give {expected_flush}"
                ),
                hint="flush = (depth-1) + slowest observation latency",
            )


def check_selection(ctx: LintContext) -> Iterator[Diagnostic]:
    """plan.selection-range: the version selection names real versions."""
    plan = ctx.plan
    if plan is None:
        return
    testable = {core.name for core in plan.soc.testable_cores()}
    for core_name, index in sorted(plan.selection.items()):
        where = location(ctx.system, ("core", core_name))
        core = plan.soc.cores.get(core_name)
        if core is None or core_name not in testable:
            yield Diagnostic(
                rule="plan.selection-range",
                severity=Severity.ERROR,
                location=where,
                message=f"selection names {core_name!r}, which is not a testable core",
                hint="drop the entry (memory cores are BIST-tested)",
            )
            continue
        if not 0 <= index < core.version_count:
            yield Diagnostic(
                rule="plan.selection-range",
                severity=Severity.ERROR,
                location=where,
                message=(
                    f"selection asks for version {index + 1} of {core_name}, "
                    f"which has versions 1..{core.version_count}"
                ),
                hint="pick an existing version index",
            )
    for name in sorted(testable - set(plan.selection)):
        yield Diagnostic(
            rule="plan.selection-range",
            severity=Severity.ERROR,
            location=location(ctx.system, ("core", name)),
            message=f"testable core {name!r} is missing from the version selection",
            hint="every testable core needs a selected version (default 0)",
        )


def check_mux_usage_note(ctx: LintContext) -> Iterator[Diagnostic]:
    """plan.mux-usage: advisory note for every test-mux fallback taken.

    Test muxes are the paper's last resort ("if there is no path
    possible, we add a system-level test multiplexer"); each one costs
    pins and area, so the lint surfaces them for review.
    """
    plan = ctx.plan
    if plan is None:
        return
    for mux in plan.test_muxes:
        yield Diagnostic(
            rule="plan.mux-usage",
            severity=Severity.INFO,
            location=location(ctx.system, ("core", mux.core), ("port", mux.port)),
            message=f"test-mux fallback in use: {mux} ({mux.cost} cells)",
            hint="a higher transparency version upstream may remove the need",
        )


def register_rules(registry) -> None:
    from repro.lint.registry import Rule

    registry.register(Rule(
        "plan.infeasible", "plan", Severity.ERROR,
        "the SOC test plan can be constructed", check_infeasible,
    ))
    registry.register(Rule(
        "plan.reservation-overlap", "plan", Severity.ERROR,
        "reservation windows fit the declared cadence", check_reservation_windows,
    ))
    registry.register(Rule(
        "plan.mux-unrecorded", "plan", Severity.ERROR,
        "test-mux fallbacks are recorded in the plan", check_mux_bookkeeping,
    ))
    registry.register(Rule(
        "plan.tat-consistency", "plan", Severity.ERROR,
        "TAT accounting is internally consistent", check_tat_accounting,
    ))
    registry.register(Rule(
        "plan.selection-range", "plan", Severity.ERROR,
        "the version selection names real versions", check_selection,
    ))
    registry.register(Rule(
        "plan.mux-usage", "plan", Severity.INFO,
        "advisory: test-mux fallbacks in use", check_mux_usage_note,
    ))
