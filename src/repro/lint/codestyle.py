"""AST-based determinism lint for the codebase itself.

The parallel executor (:mod:`repro.exec`) promises bit-identical results
at any job count, and the plan cache replays side effects verbatim --
both collapse if library code consults ambient nondeterminism.  Three
rules, enforced in CI over ``src/``:

* **DET001 unseeded-random** -- module-level ``random.*`` calls (the
  shared, unseeded RNG) anywhere in the library; use
  ``random.Random(seed)``.
* **DET002 wall-clock** -- ``time.time``/``time.time_ns`` /
  ``datetime.now``-family reads inside planner/optimizer/executor
  modules (:data:`WALL_CLOCK_SCOPES`); results there must be pure
  functions of their inputs.  The observability layer is out of scope
  -- measuring wall time is its job.
* **DET003 set-iteration** -- ``for``/comprehension iteration directly
  over a ``set`` display, ``set()``/``frozenset()`` call, or set
  comprehension: Python set order varies across runs (hash
  randomization), so anything feeding ordered output must go through
  ``sorted(...)``.
* **DET004 items-iteration** -- ``for``/comprehension iteration
  directly over ``*.items()``/``*.keys()``/``*.values()`` inside the
  proof emitters and artifact builders (:data:`ITEMS_ORDER_SCOPES`,
  currently ``repro/analysis`` and ``repro/obs/attrib``): certificates
  and attribution artifacts must serialize byte-identically across
  machines, and while dicts preserve *insertion* order, that order is
  whatever construction happened to produce -- iterate ``sorted(...)``
  so the artifact order is canonical by key.

Run it as ``python -m repro.lint.codestyle [paths...]`` (default:
``src``); exit code 1 when issues are found, 0 when clean.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

#: path fragments whose modules may not read wall clocks (DET002)
WALL_CLOCK_SCOPES = (
    "repro/soc",
    "repro/exec",
    "repro/schedule",
    "repro/transparency",
    "repro/flow",
    "repro/obs/attrib",
)

#: path fragments whose modules must iterate mappings in sorted order (DET004)
ITEMS_ORDER_SCOPES = (
    "repro/analysis",
    "repro/obs/attrib",
)

#: ``random`` module attributes that are safe (seeded constructors etc.)
_SAFE_RANDOM_ATTRS = {"Random", "SystemRandom"}

#: wall-clock call names per module alias
_TIME_ATTRS = {"time", "time_ns", "localtime", "gmtime"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}


@dataclass(frozen=True)
class StyleIssue:
    """One determinism-rule violation in a source file."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _in_wall_clock_scope(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return any(scope in normalized for scope in WALL_CLOCK_SCOPES)


def _in_items_order_scope(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return any(scope in normalized for scope in ITEMS_ORDER_SCOPES)


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.check_wall_clock = _in_wall_clock_scope(path)
        self.check_items_order = _in_items_order_scope(path)
        self.issues: List[StyleIssue] = []
        #: local alias -> canonical module ("random", "time", "datetime")
        self._module_aliases: dict = {}
        #: names imported *from* those modules, e.g. randint -> random.randint
        self._from_imports: dict = {}

    # ------------------------------------------------------------------
    def _issue(self, node: ast.AST, code: str, message: str) -> None:
        self.issues.append(
            StyleIssue(self.path, node.lineno, node.col_offset, code, message)
        )

    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("random", "time", "datetime"):
                self._module_aliases[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            root = node.module.split(".")[0]
            if root == "random":
                for alias in node.names:
                    if alias.name not in _SAFE_RANDOM_ATTRS:
                        self._issue(
                            node, "DET001",
                            f"from random import {alias.name}: module-level RNG is "
                            f"unseeded; use random.Random(seed)",
                        )
            elif root in ("time", "datetime") and self.check_wall_clock:
                flagged = _TIME_ATTRS if root == "time" else _DATETIME_ATTRS | {"datetime", "date"}
                for alias in node.names:
                    if alias.name in flagged:
                        self._from_imports[alias.asname or alias.name] = (
                            f"{root}.{alias.name}"
                        )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        elif isinstance(func, ast.Name) and func.id in self._from_imports:
            origin = self._from_imports[func.id]
            if self.check_wall_clock and not origin.endswith((".datetime", ".date")):
                self._issue(
                    node, "DET002",
                    f"wall-clock read {origin}() in planner/executor code; "
                    f"results must be pure functions of their inputs",
                )
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = func.value
        if not isinstance(base, ast.Name):
            # datetime.datetime.now(...) / datetime.date.today(...)
            if (
                self.check_wall_clock
                and isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and self._module_aliases.get(base.value.id) == "datetime"
                and base.attr in ("datetime", "date")
                and func.attr in _DATETIME_ATTRS
            ):
                self._issue(
                    node, "DET002",
                    f"wall-clock read datetime.{base.attr}.{func.attr}() in "
                    f"planner/executor code",
                )
            return
        origin = self._from_imports.get(base.id)
        if (
            origin in ("datetime.datetime", "datetime.date")
            and self.check_wall_clock
            and func.attr in _DATETIME_ATTRS
        ):
            self._issue(
                node, "DET002",
                f"wall-clock read {origin}.{func.attr}() in planner/executor code",
            )
            return
        module = self._module_aliases.get(base.id)
        if module == "random" and func.attr not in _SAFE_RANDOM_ATTRS:
            self._issue(
                node, "DET001",
                f"random.{func.attr}() uses the shared unseeded RNG; "
                f"construct random.Random(seed) instead",
            )
        elif module == "time" and self.check_wall_clock and func.attr in _TIME_ATTRS:
            self._issue(
                node, "DET002",
                f"wall-clock read time.{func.attr}() in planner/executor code; "
                f"results must be pure functions of their inputs",
            )
        elif (
            module == "datetime"
            and self.check_wall_clock
            and func.attr in _DATETIME_ATTRS
        ):
            self._issue(
                node, "DET002",
                f"wall-clock read datetime.{func.attr}() in planner/executor code",
            )

    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, generators) -> None:
        for generator in generators:
            self._check_iteration(generator.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def _check_iteration(self, iterable: ast.expr) -> None:
        direct_set = isinstance(iterable, (ast.Set, ast.SetComp)) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if direct_set:
            self._issue(
                iterable, "DET003",
                "iteration over a set has hash-randomized order; wrap in sorted() "
                "when the result feeds ordered output",
            )
        if (
            self.check_items_order
            and isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in ("items", "keys", "values")
            and not iterable.args
            and not iterable.keywords
        ):
            self._issue(
                iterable, "DET004",
                f"iteration over .{iterable.func.attr}() follows insertion "
                f"order, which is not canonical; certificate emitters must "
                f"iterate sorted(...) so artifacts are byte-stable",
            )


# ----------------------------------------------------------------------
def check_source(source: str, path: str = "<string>") -> List[StyleIssue]:
    """Lint one source string; ``path`` scopes the wall-clock rule."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            StyleIssue(path, error.lineno or 0, error.offset or 0,
                       "DET000", f"syntax error: {error.msg}")
        ]
    visitor = _DeterminismVisitor(path)
    visitor.visit(tree)
    return sorted(visitor.issues, key=lambda i: (i.path, i.line, i.col, i.code))


def check_file(path: str) -> List[StyleIssue]:
    with open(path, "r", encoding="utf-8") as handle:
        return check_source(handle.read(), path)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    for root in paths:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: lint the given paths (default ``src``); exit 1 on findings."""
    paths = list(argv) if argv else ["src"]
    issues: List[StyleIssue] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        issues.extend(check_file(path))
    for issue in issues:
        print(issue)
    label = "issue" if len(issues) == 1 else "issues"
    print(f"repro.lint.codestyle: {checked} files, {len(issues)} {label}",
          file=sys.stderr)
    return 1 if issues else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
