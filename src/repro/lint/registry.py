"""The lint rule registry: declaration, configuration, execution.

A :class:`Rule` couples a stable id with a *scope* -- the artifact layer
it inspects -- and a check function that yields
:class:`~repro.lint.diagnostics.Diagnostic` objects from a
:class:`LintContext`.  The registry owns per-rule enable/disable state
and severity overrides, so a CI config can demote a rule to a warning
or switch an experimental rule on without touching the rule itself.

Scopes:

* ``circuit`` -- per-core RTL structure (loops, undriven, widths);
* ``soc`` -- chip-level wiring and transparency versions;
* ``plan`` -- a finished :class:`~repro.soc.plan.SocTestPlan`;
* ``schedule`` -- a concurrent :class:`~repro.schedule.TestSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.obs import METRICS

_RULES_RUN = METRICS.counter("lint.rules.run")
_DIAG_COUNTERS = {
    severity: METRICS.counter(f"lint.diagnostics.{severity.label}")
    for severity in Severity
}

SCOPES = ("circuit", "soc", "plan", "schedule")


@dataclass
class LintContext:
    """Everything a rule may inspect; unused layers stay ``None``.

    ``circuits`` carries ``(label, circuit)`` pairs -- the label becomes
    the location prefix (a core name, or the circuit name when linting a
    bare circuit).  ``plan_error``/``schedule_error`` record why a layer
    could not be built, so the corresponding rules can report the cause
    instead of silently skipping.
    """

    system: str
    circuits: List[Tuple[str, object]] = field(default_factory=list)
    soc: Optional[object] = None
    plan: Optional[object] = None
    schedule: Optional[object] = None
    plan_error: Optional[Exception] = None
    schedule_error: Optional[Exception] = None


CheckFn = Callable[[LintContext], Iterator[Diagnostic]]


@dataclass
class Rule:
    """One registered design rule."""

    rule_id: str
    scope: str
    severity: Severity
    title: str
    check: CheckFn
    #: rules ship default-off (as warnings) for one PR before being
    #: promoted -- see DESIGN.md, "Diagnostic contract"
    default_enabled: bool = True


class RuleRegistry:
    """Ordered rule collection with enable/disable and severity overrides."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}
        self._disabled: set = set()
        self._severity_overrides: Dict[str, Severity] = {}

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def register(self, rule: Rule) -> Rule:
        if rule.scope not in SCOPES:
            raise ValueError(f"rule {rule.rule_id!r} has unknown scope {rule.scope!r}")
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        if not rule.default_enabled:
            self._disabled.add(rule.rule_id)
        return rule

    def rule(
        self,
        rule_id: str,
        scope: str,
        severity: Severity,
        title: str,
        default_enabled: bool = True,
    ) -> Callable[[CheckFn], CheckFn]:
        """Decorator form of :meth:`register`."""

        def decorate(check: CheckFn) -> CheckFn:
            self.register(Rule(rule_id, scope, severity, title, check, default_enabled))
            return check

        return decorate

    def unregister(self, rule_id: str) -> None:
        self._rules.pop(rule_id, None)
        self._disabled.discard(rule_id)
        self._severity_overrides.pop(rule_id, None)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def enable(self, rule_id: str) -> None:
        self._require(rule_id)
        self._disabled.discard(rule_id)

    def disable(self, rule_id: str) -> None:
        self._require(rule_id)
        self._disabled.add(rule_id)

    def is_enabled(self, rule_id: str) -> bool:
        return rule_id in self._rules and rule_id not in self._disabled

    def override_severity(self, rule_id: str, severity: Severity) -> None:
        self._require(rule_id)
        self._severity_overrides[rule_id] = severity

    def effective_severity(self, rule_id: str) -> Severity:
        return self._severity_overrides.get(rule_id, self._require(rule_id).severity)

    def clone(self) -> "RuleRegistry":
        """An independent copy for one-off configuration (CLI flags)."""
        twin = RuleRegistry()
        twin._rules = dict(self._rules)
        twin._disabled = set(self._disabled)
        twin._severity_overrides = dict(self._severity_overrides)
        return twin

    def _require(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise ValueError(f"unknown lint rule {rule_id!r}") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def rules(self, scope: Optional[str] = None) -> List[Rule]:
        ordered = list(self._rules.values())
        if scope is not None:
            ordered = [r for r in ordered if r.scope == scope]
        return ordered

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        context: LintContext,
        scopes: Optional[Iterable[str]] = None,
        report: Optional[LintReport] = None,
    ) -> LintReport:
        """Run every enabled rule whose scope is in ``scopes``.

        Diagnostics inherit the registry's effective severity for their
        rule, so overrides apply uniformly no matter what severity the
        check function emitted.
        """
        wanted = set(scopes) if scopes is not None else set(SCOPES)
        if report is None:
            report = LintReport(target=context.system)
        for rule in self.rules():
            if rule.scope not in wanted or not self.is_enabled(rule.rule_id):
                continue
            _RULES_RUN.inc()
            report.rules_run += 1
            severity = self.effective_severity(rule.rule_id)
            for diagnostic in rule.check(context):
                if diagnostic.severity is not severity:
                    diagnostic = Diagnostic(
                        rule=diagnostic.rule,
                        severity=severity,
                        location=diagnostic.location,
                        message=diagnostic.message,
                        hint=diagnostic.hint,
                    )
                _DIAG_COUNTERS[severity].inc()
                report.diagnostics.append(diagnostic)
        return report
