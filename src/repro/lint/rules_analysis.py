"""Proof-backed analysis rules: the symbolic transparency certifier.

Where :mod:`repro.lint.rules_transparency` establishes component-level
*bounds* (Dijkstra latency lower bounds on the RCG), these rules run
the bit-exact certifier from :mod:`repro.analysis` and report actual
refutations:

* ``analysis.slice-provenance`` -- a declared path's slice widths do
  not line up: some root bits have no terminal provenance (width
  narrowing, coverage gaps, dangling leaves, latency lies);
* ``analysis.mux-conflict`` -- the path's ``mux_path`` demands are
  unsatisfiable (the same mux forced to two legs, or a demand on a
  missing/undersized mux) -- no select encoding realizes the mode;
* ``analysis.select-sharing`` -- advisory: two muxes on the path share
  a select net but demand different values (realizable in test mode
  via per-mux overrides, at the cost of one extra override mux);
* ``analysis.access-route`` -- a plan's delivery/observation route
  leans on a transparency path the certifier refuted, or on a path
  the selected version never declared.

Per the one-PR demotion/promotion policy (DESIGN.md), the new proof
rules land at default WARNING; the superseded bound rule
``trans.latency-overrun`` demotes to WARNING in the same change.

The certifier import stays inside the check functions: analysis is
heavier than the bound rules and must stay off the ``repro profile``
import path so the baseline counter ledgers are unaffected.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintContext


def _certificate(ctx: LintContext):
    """Certify (once per lint pass) everything the context can support.

    Version proofs need only the SOC; route certification additionally
    needs the plan, which the runner attaches before plan-scope rules
    fire -- so the cache is keyed on whether the plan was seen.
    """
    from repro.analysis import Certificate, certify_plan, certify_version

    cached = getattr(ctx, "_analysis_certificate", None)
    plan_state = (ctx.plan is not None, ctx.plan_error is not None)
    if cached is not None and getattr(ctx, "_analysis_plan_state", None) == plan_state:
        return cached
    if ctx.soc is None:
        return None
    versions = []
    by_version = {}
    for core in sorted(ctx.soc.testable_cores(), key=lambda c: c.name):
        for version in core.versions:
            certificate = certify_version(
                core.circuit, version, core_name=core.name, hscan=core.hscan
            )
            versions.append(certificate)
            by_version[(core.name, version.index)] = certificate
    if ctx.plan is not None:
        selection = dict(ctx.plan.selection)
        routes = certify_plan(ctx.plan, by_version)
    else:
        selection = {core.name: 0 for core in ctx.soc.testable_cores()}
        routes = []
    cached = Certificate(
        system=ctx.system,
        selection=selection,
        versions=versions,
        routes=routes,
        plan_error=str(ctx.plan_error) if ctx.plan_error is not None else None,
    )
    ctx._analysis_certificate = cached
    ctx._analysis_plan_state = plan_state
    return cached


def _rule_diagnostics(ctx: LintContext, rule_id: str) -> List[Diagnostic]:
    certificate = _certificate(ctx)
    if certificate is None:
        return []
    return [d for d in certificate.diagnostics() if d.rule == rule_id]


def check_slice_provenance(ctx: LintContext) -> Iterator[Diagnostic]:
    """analysis.slice-provenance: declared paths transport every bit."""
    for diagnostic in _rule_diagnostics(ctx, "analysis.slice-provenance"):
        yield diagnostic


def check_mux_conflicts(ctx: LintContext) -> Iterator[Diagnostic]:
    """analysis.mux-conflict: path select demands are satisfiable."""
    for diagnostic in _rule_diagnostics(ctx, "analysis.mux-conflict"):
        yield diagnostic


def check_select_sharing(ctx: LintContext) -> Iterator[Diagnostic]:
    """analysis.select-sharing: shared select nets driven both ways."""
    for diagnostic in _rule_diagnostics(ctx, "analysis.select-sharing"):
        yield diagnostic


def check_access_routes(ctx: LintContext) -> Iterator[Diagnostic]:
    """analysis.access-route: plan routes ride proved transparency only."""
    for diagnostic in _rule_diagnostics(ctx, "analysis.access-route"):
        yield diagnostic


def register_rules(registry) -> None:
    from repro.lint.registry import Rule

    registry.register(Rule(
        "analysis.slice-provenance", "soc", Severity.WARNING,
        "transparency paths have bit-exact terminal provenance",
        check_slice_provenance,
    ))
    registry.register(Rule(
        "analysis.mux-conflict", "soc", Severity.WARNING,
        "transparency modes have satisfiable select demands",
        check_mux_conflicts,
    ))
    registry.register(Rule(
        "analysis.select-sharing", "soc", Severity.INFO,
        "shared select nets need per-mux overrides in test mode",
        check_select_sharing,
    ))
    registry.register(Rule(
        "analysis.access-route", "plan", Severity.WARNING,
        "plan access routes are certified by path proofs",
        check_access_routes,
    ))
