"""Concurrent-schedule design rules: resource exclusivity and scan power.

These consume :meth:`~repro.schedule.timeline.TestSchedule.iter_violations`
-- the same predicate the scheduler's own ``validate()`` enforces -- but
report every violation as a structured diagnostic instead of raising on
the first, and attribute each to the cores involved.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity, location
from repro.lint.registry import LintContext


def check_infeasible(ctx: LintContext) -> Iterator[Diagnostic]:
    """sched.infeasible: the schedule layer could be built at all."""
    if ctx.schedule is None and ctx.schedule_error is not None:
        yield Diagnostic(
            rule="sched.infeasible",
            severity=Severity.ERROR,
            location=location(ctx.system, "schedule"),
            message=f"test schedule cannot be built: {ctx.schedule_error}",
            hint="relax the power budget or fix the plan errors above",
        )


def check_resource_conflicts(ctx: LintContext) -> Iterator[Diagnostic]:
    """sched.resource-conflict: overlapping tests never share a resource."""
    schedule = ctx.schedule
    if schedule is None:
        return
    for violation in schedule.iter_violations():
        if violation.kind != "resource":
            continue
        yield Diagnostic(
            rule="sched.resource-conflict",
            severity=Severity.ERROR,
            location=location(
                ctx.system, ("schedule", schedule.algorithm),
                ("cores", "+".join(violation.cores)),
            ),
            message=violation.message,
            hint="shift one test past the other or re-run the scheduler",
        )


def check_power_budget(ctx: LintContext) -> Iterator[Diagnostic]:
    """sched.power-budget: concurrent scan activity stays under budget."""
    schedule = ctx.schedule
    if schedule is None:
        return
    for violation in schedule.iter_violations():
        if violation.kind != "power":
            continue
        yield Diagnostic(
            rule="sched.power-budget",
            severity=Severity.ERROR,
            location=location(
                ctx.system, ("schedule", schedule.algorithm),
                ("cores", "+".join(violation.cores)),
            ),
            message=violation.message,
            hint="stagger the offending sessions or raise the budget",
        )


def register_rules(registry) -> None:
    from repro.lint.registry import Rule

    registry.register(Rule(
        "sched.infeasible", "schedule", Severity.ERROR,
        "the concurrent schedule can be constructed", check_infeasible,
    ))
    registry.register(Rule(
        "sched.resource-conflict", "schedule", Severity.ERROR,
        "overlapping tests occupy disjoint resources", check_resource_conflicts,
    ))
    registry.register(Rule(
        "sched.power-budget", "schedule", Severity.ERROR,
        "concurrent scan activity respects the budget", check_power_budget,
    ))
