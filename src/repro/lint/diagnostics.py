"""Structured lint diagnostics and the report that collects them.

A :class:`Diagnostic` pins one design-rule violation to an artifact
location (``System3/core:DSP/net:acc_q``-style path), carries a stable
rule id, a severity, a human message, and an optional fix hint.  Rule
ids are stable API: tools may filter on them, and CI configs reference
them (see DESIGN.md, "Diagnostic contract").
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; comparison follows escalation order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            choices = ", ".join(s.label for s in cls)
            raise ValueError(f"unknown severity {text!r}; choose from {choices}") from None


def location(*parts: object) -> str:
    """Join artifact-path parts into a canonical location string.

    ``location("System3", ("core", "dsp"), ("net", "acc_q"))`` yields
    ``System3/core:dsp/net:acc_q``; plain strings pass through unqualified.
    """
    rendered = []
    for part in parts:
        if isinstance(part, tuple):
            rendered.append(":".join(str(p) for p in part))
        else:
            rendered.append(str(part))
    return "/".join(p for p in rendered if p)


@dataclass(frozen=True)
class Diagnostic:
    """One design-rule violation (or advisory note)."""

    rule: str
    severity: Severity
    location: str
    message: str
    hint: Optional[str] = None

    def sort_key(self):
        return (-int(self.severity), self.location, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.label,
            "location": self.location,
            "message": self.message,
        }
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def __str__(self) -> str:
        text = f"{self.severity.label}[{self.rule}] {self.location}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


#: version of the JSON schema emitted by :meth:`LintReport.to_dict`
REPORT_SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """All diagnostics from one lint pass, plus what was checked."""

    target: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    rules_run: int = 0

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.of_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.of_severity(Severity.WARNING)

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def worst(self) -> Optional[Severity]:
        return max((d.severity for d in self.diagnostics), default=None)

    def has_at_least(self, severity: Severity) -> bool:
        return any(d.severity >= severity for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        totals = {s.label: 0 for s in Severity}
        for diagnostic in self.diagnostics:
            totals[diagnostic.severity.label] += 1
        return totals

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def sorted(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def to_dict(self) -> Dict[str, object]:
        counts = self.counts()
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "target": self.target,
            "rules_run": self.rules_run,
            "summary": counts,
            "clean": counts["error"] == 0,
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable table + summary line."""
        from repro.util import render_table

        counts = self.counts()
        summary = (
            f"{self.target}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info "
            f"({self.rules_run} rules run)"
        )
        if not self.diagnostics:
            return summary
        rows = [
            [d.severity.label, d.rule, d.location, d.message + (f" [{d.hint}]" if d.hint else "")]
            for d in self.sorted()
        ]
        table = render_table(["severity", "rule", "location", "message"], rows)
        return f"{table}\n\n{summary}"
