"""Netlist/RTL design rules: structure of each core's circuit + SOC wiring.

The circuit-scope rules reuse :func:`repro.rtl.validate.iter_circuit_problems`
(the same checks ``validate_circuit`` enforces at construction time) but
report *every* violation as a diagnostic instead of raising on the
first.  The soc-scope rule covers the interconnect contract: every input
bit of every testable core driven exactly once.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.lint.diagnostics import Diagnostic, Severity, location
from repro.lint.registry import LintContext
from repro.rtl.circuit import RTLCircuit
from repro.rtl.validate import (
    CATEGORY_IO,
    CATEGORY_LOOP,
    CATEGORY_REFERENCE,
    CATEGORY_SHAPE,
    CATEGORY_UNDRIVEN,
    CATEGORY_WIDTH,
    iter_circuit_problems,
)

#: problem categories mapped onto each circuit-scope rule id
_RULE_CATEGORIES = {
    "rtl.comb-loop": {CATEGORY_LOOP},
    "rtl.undriven": {CATEGORY_UNDRIVEN, CATEGORY_REFERENCE, CATEGORY_IO},
    "rtl.width-mismatch": {CATEGORY_WIDTH, CATEGORY_SHAPE},
}

_HINTS = {
    "rtl.comb-loop": "break the loop with a register or re-derive the driver expression",
    "rtl.undriven": "connect the floating net or drop the dead component",
    "rtl.width-mismatch": "slice or zero-extend the driver to the declared width",
}


def _circuit_diagnostics(ctx: LintContext, rule_id: str, severity: Severity) -> Iterator[Diagnostic]:
    wanted = _RULE_CATEGORIES[rule_id]
    for label, circuit in ctx.circuits:
        for problem in iter_circuit_problems(circuit):
            if problem.category not in wanted:
                continue
            parts: List[object] = [ctx.system, ("core", label)]
            if problem.component:
                parts.append(("net", problem.component))
            yield Diagnostic(
                rule=rule_id,
                severity=severity,
                location=location(*parts),
                message=problem.message,
                hint=_HINTS[rule_id],
            )


def check_comb_loop(ctx: LintContext) -> Iterator[Diagnostic]:
    """rtl.comb-loop: no combinational cycles (registers break loops)."""
    return _circuit_diagnostics(ctx, "rtl.comb-loop", Severity.ERROR)


def check_undriven(ctx: LintContext) -> Iterator[Diagnostic]:
    """rtl.undriven: no floating nets, missing drivers, dangling refs."""
    return _circuit_diagnostics(ctx, "rtl.undriven", Severity.ERROR)


def check_width_mismatch(ctx: LintContext) -> Iterator[Diagnostic]:
    """rtl.width-mismatch: driver/operand widths match declarations."""
    return _circuit_diagnostics(ctx, "rtl.width-mismatch", Severity.ERROR)


# ----------------------------------------------------------------------
def _reachable_from_inputs(circuit: RTLCircuit) -> Set[str]:
    """Components whose value an input (or the reset pin) can influence.

    Forward fixpoint over driver expressions; a register with a reset
    value counts as reachable when the circuit declares a reset net
    (the reset pulse loads it), matching free-running counters.
    """
    reachable: Set[str] = {c.name for c in circuit.inputs}
    if circuit.reset_net is not None:
        for register in circuit.registers:
            if register.reset_value is not None:
                reachable.add(register.name)
    changed = True
    while changed:
        changed = False
        for component in circuit.components():
            if component.name in reachable:
                continue
            fanins = circuit.fanin_names(component)
            if fanins and any(name in reachable for name in fanins):
                reachable.add(component.name)
                changed = True
    return reachable


def check_unreachable_registers(ctx: LintContext) -> Iterator[Diagnostic]:
    """rtl.unreachable-reg: every register is controllable from inputs.

    A register no input (or reset) can influence holds test-irrelevant
    state: ATPG cannot set it and transparency cannot route through it.
    """
    for label, circuit in ctx.circuits:
        reachable = _reachable_from_inputs(circuit)
        for register in circuit.registers:
            if register.name not in reachable:
                yield Diagnostic(
                    rule="rtl.unreachable-reg",
                    severity=Severity.WARNING,
                    location=location(ctx.system, ("core", label), ("net", register.name)),
                    message=(
                        f"register {register.name!r} is not reachable from any "
                        f"input or reset"
                    ),
                    hint="add a load path from an input, or a reset value plus reset net",
                )


# ----------------------------------------------------------------------
def check_input_drivers(ctx: LintContext) -> Iterator[Diagnostic]:
    """soc.input-drivers: each testable-core input bit driven exactly once.

    Floating input bits make a core untestable through the interconnect;
    multiply-driven bits are electrical contention.  (``Soc.validate``
    raises on the first; this reports every port.)
    """
    soc = ctx.soc
    if soc is None:
        return
    for core in soc.testable_cores():
        for port in core.circuit.inputs:
            seen_bits = 0
            contended = 0
            for net in soc.drivers_of(core.name, port.name):
                mask = ((1 << net.dest.width) - 1) << net.dest.lo
                contended |= seen_bits & mask
                seen_bits |= mask
            where = location(ctx.system, ("core", core.name), ("port", port.name))
            if contended:
                yield Diagnostic(
                    rule="soc.input-drivers",
                    severity=Severity.ERROR,
                    location=where,
                    message=(
                        f"input {core.name}.{port.name} has multiply-driven bits "
                        f"(mask {contended:#x})"
                    ),
                    hint="remove or re-slice the extra driver net",
                )
            missing = ((1 << port.width) - 1) & ~seen_bits
            if missing:
                yield Diagnostic(
                    rule="soc.input-drivers",
                    severity=Severity.ERROR,
                    location=where,
                    message=(
                        f"input {core.name}.{port.name} has undriven bits "
                        f"(mask {missing:#x})"
                    ),
                    hint="wire the missing bits from a chip pin or core output",
                )


def register_rules(registry) -> None:
    from repro.lint.registry import Rule

    registry.register(Rule(
        "rtl.comb-loop", "circuit", Severity.ERROR,
        "no combinational cycles in core RTL", check_comb_loop,
    ))
    registry.register(Rule(
        "rtl.undriven", "circuit", Severity.ERROR,
        "no floating nets or missing drivers", check_undriven,
    ))
    registry.register(Rule(
        "rtl.width-mismatch", "circuit", Severity.ERROR,
        "driver and operand widths are consistent", check_width_mismatch,
    ))
    registry.register(Rule(
        "rtl.unreachable-reg", "circuit", Severity.WARNING,
        "every register is controllable from inputs", check_unreachable_registers,
    ))
    registry.register(Rule(
        "soc.input-drivers", "soc", Severity.ERROR,
        "every core input bit driven exactly once", check_input_drivers,
    ))
