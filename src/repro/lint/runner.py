"""Lint entry points: build a context, run the registry, gate flows.

``lint_soc`` is the full four-layer pass the CLI runs: core RTL
structure, chip wiring + transparency versions, then -- only when those
layers are error-free -- a default test plan and its concurrent
schedule.  The layer staging matters: planning a malformed SOC raises,
so the plan/schedule layers run on demand and a construction failure
becomes a ``plan.infeasible``/``sched.infeasible`` diagnostic instead
of a crash.

``strict_gate_*`` back the opt-in ``strict=True`` preconditions on
:func:`repro.soc.plan.plan_soc_test`, :func:`repro.flow.run_socet`, and
:func:`repro.schedule.schedule_plan`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LintError, ReproError
from repro.lint.diagnostics import LintReport, Severity
from repro.lint.registry import LintContext, RuleRegistry
from repro.obs import profile_section


def default_registry() -> RuleRegistry:
    """The process-wide registry with every built-in rule registered."""
    from repro.lint import DEFAULT_REGISTRY

    return DEFAULT_REGISTRY


def _context_for_soc(soc, system: Optional[str] = None) -> LintContext:
    return LintContext(
        system=system or soc.name,
        circuits=[(core.name, core.circuit) for core in soc.testable_cores()],
        soc=soc,
    )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def lint_circuit(circuit, registry: Optional[RuleRegistry] = None) -> LintReport:
    """Run the circuit-scope rules on one bare RTL circuit."""
    registry = registry or default_registry()
    context = LintContext(system=circuit.name, circuits=[(circuit.name, circuit)])
    return registry.run(context, scopes=("circuit",))


def lint_plan(plan, registry: Optional[RuleRegistry] = None) -> LintReport:
    """Run the plan-scope rules on a finished SOC test plan."""
    registry = registry or default_registry()
    context = LintContext(system=plan.soc.name, soc=plan.soc, plan=plan)
    return registry.run(context, scopes=("plan",))


def lint_schedule(schedule, registry: Optional[RuleRegistry] = None) -> LintReport:
    """Run the schedule-scope rules on a concurrent test schedule."""
    registry = registry or default_registry()
    context = LintContext(system=schedule.soc_name, schedule=schedule)
    return registry.run(context, scopes=("schedule",))


def lint_soc(
    soc,
    registry: Optional[RuleRegistry] = None,
    selection=None,
    deep: bool = True,
) -> LintReport:
    """The full static pass over every artifact layer of one SOC.

    ``deep=False`` stops after the structural layers (no plan/schedule
    construction -- cheap enough for a pre-planning gate).  When the
    structural layers report errors the deep layers are skipped anyway:
    building a plan on a broken SOC would raise rather than lint.
    """
    registry = registry or default_registry()
    with profile_section("lint.pass", soc=soc.name):
        context = _context_for_soc(soc)
        report = registry.run(context, scopes=("circuit", "soc"))
        if not deep or report.errors:
            return report

        from repro.soc.plan import plan_soc_test

        try:
            context.plan = plan_soc_test(soc, selection)
        except ReproError as error:
            context.plan_error = error
        registry.run(context, scopes=("plan",), report=report)
        if context.plan is not None and not report.errors:
            try:
                context.schedule = context.plan.schedule()
            except ReproError as error:
                context.schedule_error = error
            registry.run(context, scopes=("schedule",), report=report)
        return report


# ----------------------------------------------------------------------
# strict precondition gates
# ----------------------------------------------------------------------
def _raise_on_errors(report: LintReport, gate: str) -> None:
    if report.errors:
        raise LintError(
            f"{gate}: {len(report.errors)} design-rule error(s) in "
            f"{report.target}; first: {report.errors[0]}",
            diagnostics=report.errors,
        )


def strict_gate_soc(soc, gate: str = "plan_soc_test(strict=True)") -> None:
    """Reject a structurally broken SOC before any planning/ATPG runs."""
    report = lint_soc(soc, deep=False)
    _raise_on_errors(report, gate)


def strict_gate_plan(plan, gate: str = "schedule_plan(strict=True)") -> None:
    """Reject an inconsistent plan before scheduling consumes it."""
    report = lint_plan(plan)
    _raise_on_errors(report, gate)
