"""Static design-rule checking and plan verification (``repro lint``).

A fast, simulation-free pass over the four artifact layers of the SOCET
flow, emitting structured :class:`Diagnostic` objects with stable rule
ids (see DESIGN.md, "Diagnostic contract"):

* **netlist/RTL** -- combinational loops, floating/multiply-driven
  nets, width mismatches, unreachable registers;
* **transparency** -- every core input provably propagates to an output
  and every output slice justifies from inputs, within the declared
  latencies, by shortest-path proof on the RCG (no simulation);
* **analysis** -- the symbolic certifier (:mod:`repro.analysis`)
  re-proves every declared path at the bit-slice level: terminal
  provenance for every root bit, satisfiable mux-select demands, and
  plan access routes that ride proved paths only;
* **plan** -- reservation windows fit their cadences, test-mux
  fallbacks are recorded, TAT accounting is internally consistent;
* **schedule** -- shared resources never double-booked, scan-power
  budget respected.

Alongside the domain rules, :mod:`repro.lint.codestyle` is an AST-based
determinism lint for the codebase itself (``python -m
repro.lint.codestyle``): the parallel executor and the plan cache rely
on bit-identical replay, so unseeded RNGs, wall-clock reads in planner
code, and ordering-sensitive ``set`` iteration are design-rule
violations too.

Typical use::

    from repro.lint import lint_soc
    report = lint_soc(build_system3())
    assert not report.errors, report.render()

or gate a flow::

    plan_soc_test(soc, strict=True)   # raises LintError on rule errors
"""

from __future__ import annotations

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    REPORT_SCHEMA_VERSION,
    Severity,
    location,
)
from repro.lint.registry import LintContext, Rule, RuleRegistry
from repro.lint import (
    rules_analysis,
    rules_netlist,
    rules_plan,
    rules_schedule,
    rules_transparency,
)

#: the process-wide registry holding every built-in rule
DEFAULT_REGISTRY = RuleRegistry()
rules_netlist.register_rules(DEFAULT_REGISTRY)
rules_transparency.register_rules(DEFAULT_REGISTRY)
rules_analysis.register_rules(DEFAULT_REGISTRY)
rules_plan.register_rules(DEFAULT_REGISTRY)
rules_schedule.register_rules(DEFAULT_REGISTRY)

from repro.lint.runner import (  # noqa: E402  (needs DEFAULT_REGISTRY)
    lint_circuit,
    lint_plan,
    lint_schedule,
    lint_soc,
    strict_gate_plan,
    strict_gate_soc,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "REPORT_SCHEMA_VERSION",
    "Severity",
    "location",
    "LintContext",
    "Rule",
    "RuleRegistry",
    "DEFAULT_REGISTRY",
    "lint_circuit",
    "lint_plan",
    "lint_schedule",
    "lint_soc",
    "strict_gate_plan",
    "strict_gate_soc",
]
