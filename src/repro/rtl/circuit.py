"""The RTL circuit container and its structural queries."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import NetlistError
from repro.rtl.components import (
    Component,
    Constant,
    Input,
    Mux,
    Operator,
    Output,
    Register,
)
from repro.rtl.types import ComponentKind, Expr, expr_parts


class RTLCircuit:
    """A named collection of RTL components wired by driver expressions.

    The circuit is a flat netlist: component names are unique and driver
    expressions refer to components by name.  Use
    :class:`~repro.rtl.builder.CircuitBuilder` to construct circuits
    conveniently and :func:`~repro.rtl.validate.validate_circuit` to check
    structural sanity.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._components: Dict[str, Component] = {}
        #: name of the 1-bit input that acts as synchronous reset, if any
        self.reset_net: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Add ``component``; raises :class:`NetlistError` on name clash."""
        if component.name in self._components:
            raise NetlistError(f"duplicate component name {component.name!r} in {self.name!r}")
        self._components[component.name] = component
        return component

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._components

    def get(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise NetlistError(f"no component named {name!r} in circuit {self.name!r}") from None

    def components(self) -> Iterator[Component]:
        return iter(self._components.values())

    def _of_kind(self, kind: ComponentKind) -> List[Component]:
        return [c for c in self._components.values() if c.kind is kind]

    @property
    def inputs(self) -> List[Input]:
        return self._of_kind(ComponentKind.INPUT)  # type: ignore[return-value]

    @property
    def outputs(self) -> List[Output]:
        return self._of_kind(ComponentKind.OUTPUT)  # type: ignore[return-value]

    @property
    def registers(self) -> List[Register]:
        return self._of_kind(ComponentKind.REGISTER)  # type: ignore[return-value]

    @property
    def muxes(self) -> List[Mux]:
        return self._of_kind(ComponentKind.MUX)  # type: ignore[return-value]

    @property
    def operators(self) -> List[Operator]:
        return self._of_kind(ComponentKind.OPERATOR)  # type: ignore[return-value]

    @property
    def constants(self) -> List[Constant]:
        return self._of_kind(ComponentKind.CONSTANT)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # structural statistics
    # ------------------------------------------------------------------
    def flip_flop_count(self) -> int:
        """Total number of flip-flops (sum of register widths)."""
        return sum(register.width for register in self.registers)

    def input_bit_count(self) -> int:
        """Total number of input port bits."""
        return sum(port.width for port in self.inputs)

    def output_bit_count(self) -> int:
        """Total number of output port bits."""
        return sum(port.width for port in self.outputs)

    def driver_exprs(self, component: Component) -> List[Expr]:
        """All driver expressions consumed by ``component``."""
        exprs: List[Expr] = []
        if isinstance(component, Output) and component.driver is not None:
            exprs.append(component.driver)
        elif isinstance(component, Register):
            if component.driver is not None:
                exprs.append(component.driver)
            if component.enable is not None:
                exprs.append(component.enable)
        elif isinstance(component, Mux):
            exprs.extend(component.inputs)
            if component.select is not None:
                exprs.append(component.select)
        elif isinstance(component, Operator):
            exprs.extend(component.operands)
        return exprs

    def fanin_names(self, component: Component) -> List[str]:
        """Names of components feeding ``component`` (with duplicates removed)."""
        seen: Dict[str, None] = {}
        for expr in self.driver_exprs(component):
            for part in expr_parts(expr):
                seen.setdefault(part.comp, None)
        return list(seen)

    def copy(self, new_name: Optional[str] = None) -> "RTLCircuit":
        """A deep copy with a fresh name; expressions are immutable and cheap."""
        import copy as _copy

        clone = RTLCircuit(new_name or self.name)
        clone.reset_net = self.reset_net
        for component in self._components.values():
            clone.add(_copy.deepcopy(component))
        return clone
