"""Register-transfer-level netlist model.

This package provides the structural RTL representation the whole library
operates on: input/output ports, registers, multiplexers, word-level
operators, and constants, connected by slice/concatenation expressions.

The model deliberately mirrors what the paper's algorithms consume:

* *direct and multiplexer paths* between registers (the raw material for
  HSCAN chains and transparency paths), and
* *operators* (ALUs, comparators, ...) which are opaque for transparency
  but are elaborated to gates for area/ATPG purposes.
"""

from repro.rtl.types import (
    ComponentKind,
    Concat,
    Expr,
    OpKind,
    Slice,
    expr_width,
    slice_expr,
)
from repro.rtl.components import Component, Constant, Input, Mux, Operator, Output, Register
from repro.rtl.circuit import RTLCircuit
from repro.rtl.builder import CircuitBuilder
from repro.rtl.validate import CircuitProblem, iter_circuit_problems, validate_circuit

__all__ = [
    "ComponentKind",
    "Concat",
    "Expr",
    "OpKind",
    "Slice",
    "expr_width",
    "slice_expr",
    "Component",
    "Constant",
    "Input",
    "Mux",
    "Operator",
    "Output",
    "Register",
    "RTLCircuit",
    "CircuitBuilder",
    "CircuitProblem",
    "iter_circuit_problems",
    "validate_circuit",
]
