"""A small fluent DSL for constructing RTL circuits.

Example -- a two-stage pipeline with a bypass mux::

    b = CircuitBuilder("pipe")
    din = b.input("DIN", 8)
    r1 = b.register("R1", 8)
    r2 = b.register("R2", 8)
    sel = b.input("SEL", 1)
    b.drive(r1, din)
    b.drive(r2, b.mux("M0", [r1, din], select=sel))
    b.output("DOUT", r2)
    circuit = b.build()

Builder methods return :class:`~repro.rtl.types.Slice` handles covering
the full component width, so they compose directly into expressions via
``handle.sub(lo, width)`` and :func:`~repro.rtl.types.concat`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import NetlistError
from repro.rtl.circuit import RTLCircuit
from repro.rtl.components import Constant, Input, Mux, Operator, Output, Register
from repro.rtl.types import Expr, OpKind, Slice, expr_width
from repro.rtl.validate import validate_circuit

ExprLike = Union[Expr, Slice]


class CircuitBuilder:
    """Accumulates components and produces a validated :class:`RTLCircuit`."""

    def __init__(self, name: str) -> None:
        self._circuit = RTLCircuit(name)

    # ------------------------------------------------------------------
    # component factories (each returns a full-width Slice handle)
    # ------------------------------------------------------------------
    def input(self, name: str, width: int) -> Slice:
        self._circuit.add(Input(name, width))
        return Slice(name, 0, width)

    def output(self, name: str, driver: Optional[ExprLike] = None, width: Optional[int] = None) -> Slice:
        if driver is None and width is None:
            raise NetlistError(f"output {name!r} needs a driver or an explicit width")
        out_width = width if width is not None else expr_width(driver)  # type: ignore[arg-type]
        self._circuit.add(Output(name, out_width, driver=driver))
        return Slice(name, 0, out_width)

    def register(
        self,
        name: str,
        width: int,
        driver: Optional[ExprLike] = None,
        enable: Optional[ExprLike] = None,
        reset_value: Optional[int] = None,
    ) -> Slice:
        self._circuit.add(Register(name, width, driver=driver, enable=enable, reset_value=reset_value))
        return Slice(name, 0, width)

    def mux(self, name: str, inputs: Sequence[ExprLike], select: ExprLike, width: Optional[int] = None) -> Slice:
        if not inputs:
            raise NetlistError(f"mux {name!r} has no data inputs")
        mux_width = width if width is not None else expr_width(inputs[0])
        self._circuit.add(Mux(name, mux_width, inputs=list(inputs), select=select))
        return Slice(name, 0, mux_width)

    def op(self, name: str, kind: OpKind, operands: Sequence[ExprLike], width: Optional[int] = None) -> Slice:
        if not operands:
            raise NetlistError(f"operator {name!r} has no operands")
        if width is None:
            if kind in (OpKind.EQ, OpKind.LT, OpKind.REDUCE_OR, OpKind.REDUCE_AND):
                width = 1
            elif kind is OpKind.DECODE:
                width = 1 << expr_width(operands[0])
            else:
                width = expr_width(operands[0])
        self._circuit.add(Operator(name, width, op=kind, operands=list(operands)))
        return Slice(name, 0, width)

    def const(self, name: str, width: int, value: int) -> Slice:
        self._circuit.add(Constant(name, width, value=value))
        return Slice(name, 0, width)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def drive(self, target: Slice, driver: ExprLike, enable: Optional[ExprLike] = None) -> None:
        """Set the driver (and optionally enable) of a register or output.

        ``target`` must be a full-width handle returned by
        :meth:`register` or :meth:`output`.
        """
        component = self._circuit.get(target.comp)
        if target.lo != 0 or target.width != component.width:
            raise NetlistError(
                f"drive() target must be the full component, got slice {target} of {component.name!r}; "
                "use a Concat driver for split registers"
            )
        if isinstance(component, (Register, Output)):
            if expr_width(driver) != component.width:
                raise NetlistError(
                    f"driver width {expr_width(driver)} != width {component.width} of {component.name!r}"
                )
            component.driver = driver
            if enable is not None:
                if not isinstance(component, Register):
                    raise NetlistError(f"enable only applies to registers, not {component.name!r}")
                component.enable = enable
        else:
            raise NetlistError(f"cannot drive component {component.name!r} of kind {component.kind}")

    def set_reset(self, net_name: str) -> None:
        """Designate a 1-bit input as the synchronous reset."""
        component = self._circuit.get(net_name)
        if component.width != 1:
            raise NetlistError(f"reset net {net_name!r} must be 1 bit wide")
        self._circuit.reset_net = net_name

    # ------------------------------------------------------------------
    def circuit(self) -> RTLCircuit:
        """The circuit under construction (not yet validated)."""
        return self._circuit

    def build(self) -> RTLCircuit:
        """Validate and return the finished circuit."""
        validate_circuit(self._circuit)
        return self._circuit
