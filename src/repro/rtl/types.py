"""Core value types of the RTL model: slices, concatenations, enums.

A *driver expression* (:data:`Expr`) describes where a register, output
port, mux input, or operator operand gets its bits from.  It is either a
:class:`Slice` of another component's output word, or a :class:`Concat`
of such slices (LSB-first).  Keeping expressions this small makes the
register-connectivity analysis (transparency, HSCAN) exact and cheap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union


class ComponentKind(enum.Enum):
    """Discriminates the component classes stored in an :class:`RTLCircuit`."""

    INPUT = "input"
    OUTPUT = "output"
    REGISTER = "register"
    MUX = "mux"
    OPERATOR = "operator"
    CONSTANT = "constant"


class OpKind(enum.Enum):
    """Word-level combinational operators supported by elaboration.

    These are opaque for transparency analysis (they lose information),
    but are expanded into gate macros by :mod:`repro.elaborate`.
    """

    ADD = "add"
    SUB = "sub"
    INC = "inc"
    DEC = "dec"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    EQ = "eq"  # 1-bit output
    LT = "lt"  # 1-bit output, unsigned
    SHL = "shl"  # shift left by constant 1
    SHR = "shr"  # shift right by constant 1
    DECODE = "decode"  # n-bit input -> 2^n one-hot output
    REDUCE_OR = "reduce_or"  # 1-bit output
    REDUCE_AND = "reduce_and"  # 1-bit output


@dataclass(frozen=True)
class Slice:
    """A contiguous bit-slice ``[lo, lo+width)`` of component ``comp``'s output."""

    comp: str
    lo: int
    width: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.width <= 0:
            raise ValueError(f"invalid slice of {self.comp}: lo={self.lo} width={self.width}")

    @property
    def hi(self) -> int:
        """Index one past the last bit of the slice."""
        return self.lo + self.width

    def sub(self, lo: int, width: int) -> "Slice":
        """Return the sub-slice ``[lo, lo+width)`` relative to this slice."""
        if lo < 0 or lo + width > self.width:
            raise ValueError(f"sub-slice [{lo}, {lo + width}) outside width {self.width}")
        return Slice(self.comp, self.lo + lo, width)

    def __str__(self) -> str:
        if self.width == 1:
            return f"{self.comp}[{self.lo}]"
        return f"{self.comp}[{self.hi - 1}:{self.lo}]"


@dataclass(frozen=True)
class Concat:
    """LSB-first concatenation of slices; ``parts[0]`` holds the low bits."""

    parts: Tuple[Slice, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("empty concatenation")

    @property
    def width(self) -> int:
        return sum(part.width for part in self.parts)

    def __str__(self) -> str:
        return "{" + ", ".join(str(part) for part in reversed(self.parts)) + "}"


Expr = Union[Slice, Concat]


def expr_width(expr: Expr) -> int:
    """Total bit width of a driver expression."""
    if isinstance(expr, Slice):
        return expr.width
    return expr.width


def expr_parts(expr: Expr) -> Tuple[Slice, ...]:
    """The slices making up ``expr``, LSB-first."""
    if isinstance(expr, Slice):
        return (expr,)
    return expr.parts


def slice_expr(expr: Expr, lo: int, width: int) -> Expr:
    """Take bits ``[lo, lo+width)`` out of a driver expression.

    Slicing distributes over concatenation, so the result is again a
    plain :data:`Expr`.
    """
    if lo < 0 or width <= 0 or lo + width > expr_width(expr):
        raise ValueError(
            f"slice [{lo}, {lo + width}) out of range for expression of width {expr_width(expr)}"
        )
    collected = []
    offset = 0
    need_lo, need_hi = lo, lo + width
    for part in expr_parts(expr):
        part_lo, part_hi = offset, offset + part.width
        overlap_lo = max(need_lo, part_lo)
        overlap_hi = min(need_hi, part_hi)
        if overlap_lo < overlap_hi:
            collected.append(part.sub(overlap_lo - part_lo, overlap_hi - overlap_lo))
        offset = part_hi
    if len(collected) == 1:
        return collected[0]
    return Concat(tuple(collected))


def concat(*exprs: Expr) -> Expr:
    """Concatenate expressions LSB-first into a single expression."""
    parts = []
    for expr in exprs:
        parts.extend(expr_parts(expr))
    if len(parts) == 1:
        return parts[0]
    return Concat(tuple(parts))
