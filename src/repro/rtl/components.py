"""Component classes stored in an :class:`~repro.rtl.circuit.RTLCircuit`.

Each component owns a *name* (unique within the circuit) and produces an
output word of a fixed *width*.  Drivers are :data:`~repro.rtl.types.Expr`
values referring to other components' outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.rtl.types import ComponentKind, Expr, OpKind


@dataclass
class Component:
    """Base class: a named producer of a ``width``-bit output word."""

    name: str
    width: int

    kind: ComponentKind = field(init=False)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"component {self.name!r} must have positive width")


@dataclass
class Input(Component):
    """A primary input port of the circuit (or core)."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = ComponentKind.INPUT


@dataclass
class Output(Component):
    """A primary output port; ``driver`` supplies its bits combinationally."""

    driver: Optional[Expr] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = ComponentKind.OUTPUT


@dataclass
class Register(Component):
    """An edge-triggered register.

    ``driver`` feeds the D input; if ``enable`` is given (a 1-bit
    expression) the register only loads when it is 1, otherwise it loads
    every cycle.  ``reset_value`` is applied synchronously when the
    circuit-level reset net (if any) is asserted.
    """

    driver: Optional[Expr] = None
    enable: Optional[Expr] = None
    reset_value: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = ComponentKind.REGISTER


@dataclass
class Mux(Component):
    """A word-level multiplexer with ``len(inputs)`` data inputs.

    ``select`` is an expression of width ``ceil(log2(len(inputs)))``
    (minimum 1).  Input 0 is selected when the select value is 0, and so
    on; select values beyond the input count resolve to the last input.
    """

    inputs: List[Expr] = field(default_factory=list)
    select: Optional[Expr] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = ComponentKind.MUX

    @property
    def select_width(self) -> int:
        count = max(len(self.inputs), 2)
        return (count - 1).bit_length()


@dataclass
class Operator(Component):
    """A word-level combinational operator (opaque for transparency)."""

    op: OpKind = OpKind.ADD
    operands: List[Expr] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = ComponentKind.OPERATOR


@dataclass
class Constant(Component):
    """A constant word."""

    value: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind = ComponentKind.CONSTANT
        if self.value < 0 or self.value >= (1 << self.width):
            raise ValueError(f"constant {self.name!r} value {self.value} exceeds width {self.width}")
