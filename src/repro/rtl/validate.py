"""Structural validation of RTL circuits.

Checks performed:

* every referenced component exists;
* driver/operand widths are consistent with component widths;
* every output and register has a driver; mux selects are wide enough;
* slices stay within the width of the component they slice;
* the combinational subgraph (muxes, operators, output drivers) is
  acyclic -- registers legally break cycles.

Two entry points share the same checks:

* :func:`validate_circuit` raises :class:`~repro.errors.NetlistError`
  on the first problem (construction-time contract, unchanged);
* :func:`iter_circuit_problems` yields *every* problem as a categorized
  :class:`CircuitProblem`, which the static design-rule checker
  (:mod:`repro.lint`) maps onto stable rule ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import NetlistError
from repro.rtl.circuit import RTLCircuit
from repro.rtl.components import Component, Mux, Operator, Output, Register
from repro.rtl.types import ComponentKind, Expr, OpKind, expr_parts, expr_width

_COMPARISON_OPS = {OpKind.EQ, OpKind.LT, OpKind.REDUCE_OR, OpKind.REDUCE_AND}

#: problem categories yielded by :func:`iter_circuit_problems`
CATEGORY_IO = "io"  # circuit has no inputs / no outputs
CATEGORY_REFERENCE = "reference"  # dangling or illegal component reference
CATEGORY_UNDRIVEN = "undriven"  # output/register/mux without a driver or select
CATEGORY_WIDTH = "width"  # width or slice-bound mismatch
CATEGORY_SHAPE = "shape"  # operator arity/width contract violated
CATEGORY_LOOP = "loop"  # combinational cycle


@dataclass(frozen=True)
class CircuitProblem:
    """One structural problem, categorized for the lint rule layer."""

    category: str
    component: Optional[str]
    message: str


def _check_expr(circuit: RTLCircuit, owner: str, expr: Expr) -> Iterator[CircuitProblem]:
    for part in expr_parts(expr):
        if part.comp not in circuit:
            yield CircuitProblem(
                CATEGORY_REFERENCE, owner,
                f"{owner}: reference to unknown component {part.comp!r}",
            )
            continue
        referenced = circuit.get(part.comp)
        if referenced.kind is ComponentKind.OUTPUT:
            yield CircuitProblem(
                CATEGORY_REFERENCE, owner,
                f"{owner}: output port {part.comp!r} cannot be read internally",
            )
        if part.hi > referenced.width:
            yield CircuitProblem(
                CATEGORY_WIDTH, owner,
                f"{owner}: slice {part} exceeds width {referenced.width} of {part.comp!r}",
            )


def _check_component(circuit: RTLCircuit, component: Component) -> Iterator[CircuitProblem]:
    name = component.name
    if isinstance(component, Output):
        if component.driver is None:
            yield CircuitProblem(
                CATEGORY_UNDRIVEN, name, f"output {name!r} has no driver"
            )
            return
        yield from _check_expr(circuit, name, component.driver)
        if expr_width(component.driver) != component.width:
            yield CircuitProblem(
                CATEGORY_WIDTH, name,
                f"output {name!r}: driver width {expr_width(component.driver)} != {component.width}",
            )
    elif isinstance(component, Register):
        if component.driver is None:
            yield CircuitProblem(
                CATEGORY_UNDRIVEN, name, f"register {name!r} has no driver"
            )
            return
        yield from _check_expr(circuit, name, component.driver)
        if expr_width(component.driver) != component.width:
            yield CircuitProblem(
                CATEGORY_WIDTH, name,
                f"register {name!r}: driver width {expr_width(component.driver)} != {component.width}",
            )
        if component.enable is not None:
            yield from _check_expr(circuit, name, component.enable)
            if expr_width(component.enable) != 1:
                yield CircuitProblem(
                    CATEGORY_WIDTH, name, f"register {name!r}: enable must be 1 bit"
                )
        if component.reset_value is not None and component.reset_value >= (1 << component.width):
            yield CircuitProblem(
                CATEGORY_WIDTH, name, f"register {name!r}: reset value exceeds width"
            )
    elif isinstance(component, Mux):
        if len(component.inputs) < 2:
            yield CircuitProblem(
                CATEGORY_SHAPE, name, f"mux {name!r} needs at least 2 inputs"
            )
        for index, expr in enumerate(component.inputs):
            yield from _check_expr(circuit, f"{name}.in{index}", expr)
            if expr_width(expr) != component.width:
                yield CircuitProblem(
                    CATEGORY_WIDTH, name,
                    f"mux {name!r} input {index}: width {expr_width(expr)} != {component.width}",
                )
        if component.select is None:
            yield CircuitProblem(
                CATEGORY_UNDRIVEN, name, f"mux {name!r} has no select"
            )
            return
        yield from _check_expr(circuit, f"{name}.select", component.select)
        if expr_width(component.select) < component.select_width:
            yield CircuitProblem(
                CATEGORY_WIDTH, name,
                f"mux {name!r}: select width {expr_width(component.select)} cannot address "
                f"{len(component.inputs)} inputs",
            )
    elif isinstance(component, Operator):
        for index, expr in enumerate(component.operands):
            yield from _check_expr(circuit, f"{name}.op{index}", expr)
        yield from _check_operator_shape(component)


def _check_operator_shape(op: Operator) -> Iterator[CircuitProblem]:
    arity = len(op.operands)
    widths = [expr_width(e) for e in op.operands]
    if op.op in (OpKind.NOT, OpKind.INC, OpKind.DEC, OpKind.SHL, OpKind.SHR):
        if arity != 1:
            yield CircuitProblem(
                CATEGORY_SHAPE, op.name,
                f"operator {op.name!r} ({op.op.value}) needs 1 operand",
            )
        elif op.width != widths[0]:
            yield CircuitProblem(
                CATEGORY_SHAPE, op.name,
                f"operator {op.name!r}: output width must equal operand width",
            )
    elif op.op in (OpKind.REDUCE_OR, OpKind.REDUCE_AND):
        if arity != 1 or op.width != 1:
            yield CircuitProblem(
                CATEGORY_SHAPE, op.name,
                f"operator {op.name!r} ({op.op.value}) is unary with 1-bit output",
            )
    elif op.op is OpKind.DECODE:
        if arity != 1 or op.width != (1 << widths[0]):
            yield CircuitProblem(
                CATEGORY_SHAPE, op.name,
                f"operator {op.name!r}: decode output must be 2^input wide",
            )
    elif op.op in (OpKind.EQ, OpKind.LT):
        if arity != 2 or widths[0] != widths[1] or op.width != 1:
            yield CircuitProblem(
                CATEGORY_SHAPE, op.name,
                f"operator {op.name!r} ({op.op.value}) compares equal widths to 1 bit",
            )
    else:  # ADD, SUB, AND, OR, XOR
        if arity != 2 or widths[0] != widths[1]:
            yield CircuitProblem(
                CATEGORY_SHAPE, op.name,
                f"operator {op.name!r} ({op.op.value}) needs 2 equal-width operands",
            )
        elif op.width != widths[0]:
            yield CircuitProblem(
                CATEGORY_SHAPE, op.name,
                f"operator {op.name!r}: output width must equal operand width",
            )


def _check_acyclic(circuit: RTLCircuit) -> Iterator[CircuitProblem]:
    """Depth-first cycle check over the combinational components only.

    Yields one problem per distinct back edge found, continuing the
    search past each so a circuit with several independent loops reports
    them all.
    """
    combinational = {
        c.name
        for c in circuit.components()
        if c.kind in (ComponentKind.MUX, ComponentKind.OPERATOR, ComponentKind.OUTPUT)
    }
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {name: WHITE for name in combinational}

    def fanin(name: str) -> List[str]:
        return [
            source
            for source in circuit.fanin_names(circuit.get(name))
            if source in combinational
        ]

    for start in combinational:
        if color[start] is not WHITE:
            continue
        stack: List[tuple] = [(start, iter(fanin(start)))]
        color[start] = GREY
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for source in iterator:
                if color[source] == GREY:
                    yield CircuitProblem(
                        CATEGORY_LOOP, source,
                        f"combinational cycle through {source!r} in circuit {circuit.name!r}",
                    )
                    continue
                if color[source] == WHITE:
                    color[source] = GREY
                    stack.append((source, iter(fanin(source))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()


def iter_circuit_problems(circuit: RTLCircuit) -> Iterator[CircuitProblem]:
    """Yield every structural problem, in deterministic check order.

    The first yielded problem is exactly the one
    :func:`validate_circuit` raises for.
    """
    if not circuit.inputs:
        yield CircuitProblem(
            CATEGORY_IO, None, f"circuit {circuit.name!r} has no inputs"
        )
    if not circuit.outputs:
        yield CircuitProblem(
            CATEGORY_IO, None, f"circuit {circuit.name!r} has no outputs"
        )
    for component in circuit.components():
        yield from _check_component(circuit, component)
    if circuit.reset_net is not None:
        if circuit.reset_net not in circuit:
            yield CircuitProblem(
                CATEGORY_REFERENCE, circuit.reset_net,
                f"reset net {circuit.reset_net!r} must be a 1-bit input",
            )
        else:
            reset = circuit.get(circuit.reset_net)
            if reset.kind is not ComponentKind.INPUT or reset.width != 1:
                yield CircuitProblem(
                    CATEGORY_REFERENCE, circuit.reset_net,
                    f"reset net {circuit.reset_net!r} must be a 1-bit input",
                )
    yield from _check_acyclic(circuit)


def validate_circuit(circuit: RTLCircuit) -> RTLCircuit:
    """Run all structural checks; returns the circuit for chaining."""
    for problem in iter_circuit_problems(circuit):
        raise NetlistError(problem.message)
    return circuit
