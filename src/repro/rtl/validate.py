"""Structural validation of RTL circuits.

Checks performed:

* every referenced component exists;
* driver/operand widths are consistent with component widths;
* every output and register has a driver; mux selects are wide enough;
* slices stay within the width of the component they slice;
* the combinational subgraph (muxes, operators, output drivers) is
  acyclic -- registers legally break cycles.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import NetlistError
from repro.rtl.circuit import RTLCircuit
from repro.rtl.components import Component, Mux, Operator, Output, Register
from repro.rtl.types import ComponentKind, Expr, OpKind, expr_parts, expr_width

_COMPARISON_OPS = {OpKind.EQ, OpKind.LT, OpKind.REDUCE_OR, OpKind.REDUCE_AND}


def _check_expr(circuit: RTLCircuit, owner: str, expr: Expr) -> None:
    for part in expr_parts(expr):
        if part.comp not in circuit:
            raise NetlistError(f"{owner}: reference to unknown component {part.comp!r}")
        referenced = circuit.get(part.comp)
        if referenced.kind is ComponentKind.OUTPUT:
            raise NetlistError(f"{owner}: output port {part.comp!r} cannot be read internally")
        if part.hi > referenced.width:
            raise NetlistError(
                f"{owner}: slice {part} exceeds width {referenced.width} of {part.comp!r}"
            )


def _check_component(circuit: RTLCircuit, component: Component) -> None:
    name = component.name
    if isinstance(component, Output):
        if component.driver is None:
            raise NetlistError(f"output {name!r} has no driver")
        _check_expr(circuit, name, component.driver)
        if expr_width(component.driver) != component.width:
            raise NetlistError(
                f"output {name!r}: driver width {expr_width(component.driver)} != {component.width}"
            )
    elif isinstance(component, Register):
        if component.driver is None:
            raise NetlistError(f"register {name!r} has no driver")
        _check_expr(circuit, name, component.driver)
        if expr_width(component.driver) != component.width:
            raise NetlistError(
                f"register {name!r}: driver width {expr_width(component.driver)} != {component.width}"
            )
        if component.enable is not None:
            _check_expr(circuit, name, component.enable)
            if expr_width(component.enable) != 1:
                raise NetlistError(f"register {name!r}: enable must be 1 bit")
        if component.reset_value is not None and component.reset_value >= (1 << component.width):
            raise NetlistError(f"register {name!r}: reset value exceeds width")
    elif isinstance(component, Mux):
        if len(component.inputs) < 2:
            raise NetlistError(f"mux {name!r} needs at least 2 inputs")
        for index, expr in enumerate(component.inputs):
            _check_expr(circuit, f"{name}.in{index}", expr)
            if expr_width(expr) != component.width:
                raise NetlistError(
                    f"mux {name!r} input {index}: width {expr_width(expr)} != {component.width}"
                )
        if component.select is None:
            raise NetlistError(f"mux {name!r} has no select")
        _check_expr(circuit, f"{name}.select", component.select)
        if expr_width(component.select) < component.select_width:
            raise NetlistError(
                f"mux {name!r}: select width {expr_width(component.select)} cannot address "
                f"{len(component.inputs)} inputs"
            )
    elif isinstance(component, Operator):
        for index, expr in enumerate(component.operands):
            _check_expr(circuit, f"{name}.op{index}", expr)
        _check_operator_shape(component)


def _check_operator_shape(op: Operator) -> None:
    arity = len(op.operands)
    widths = [expr_width(e) for e in op.operands]
    if op.op in (OpKind.NOT, OpKind.INC, OpKind.DEC, OpKind.SHL, OpKind.SHR):
        if arity != 1:
            raise NetlistError(f"operator {op.name!r} ({op.op.value}) needs 1 operand")
        if op.width != widths[0]:
            raise NetlistError(f"operator {op.name!r}: output width must equal operand width")
    elif op.op in (OpKind.REDUCE_OR, OpKind.REDUCE_AND):
        if arity != 1 or op.width != 1:
            raise NetlistError(f"operator {op.name!r} ({op.op.value}) is unary with 1-bit output")
    elif op.op is OpKind.DECODE:
        if arity != 1 or op.width != (1 << widths[0]):
            raise NetlistError(f"operator {op.name!r}: decode output must be 2^input wide")
    elif op.op in (OpKind.EQ, OpKind.LT):
        if arity != 2 or widths[0] != widths[1] or op.width != 1:
            raise NetlistError(f"operator {op.name!r} ({op.op.value}) compares equal widths to 1 bit")
    else:  # ADD, SUB, AND, OR, XOR
        if arity != 2 or widths[0] != widths[1]:
            raise NetlistError(f"operator {op.name!r} ({op.op.value}) needs 2 equal-width operands")
        if op.width != widths[0]:
            raise NetlistError(f"operator {op.name!r}: output width must equal operand width")


def _check_acyclic(circuit: RTLCircuit) -> None:
    """Depth-first cycle check over the combinational components only."""
    combinational = {
        c.name
        for c in circuit.components()
        if c.kind in (ComponentKind.MUX, ComponentKind.OPERATOR, ComponentKind.OUTPUT)
    }
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {name: WHITE for name in combinational}

    def fanin(name: str) -> List[str]:
        return [
            source
            for source in circuit.fanin_names(circuit.get(name))
            if source in combinational
        ]

    for start in combinational:
        if color[start] is not WHITE:
            continue
        stack: List[tuple] = [(start, iter(fanin(start)))]
        color[start] = GREY
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for source in iterator:
                if color[source] == GREY:
                    raise NetlistError(
                        f"combinational cycle through {source!r} in circuit {circuit.name!r}"
                    )
                if color[source] == WHITE:
                    color[source] = GREY
                    stack.append((source, iter(fanin(source))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()


def validate_circuit(circuit: RTLCircuit) -> RTLCircuit:
    """Run all structural checks; returns the circuit for chaining."""
    if not circuit.inputs:
        raise NetlistError(f"circuit {circuit.name!r} has no inputs")
    if not circuit.outputs:
        raise NetlistError(f"circuit {circuit.name!r} has no outputs")
    for component in circuit.components():
        _check_component(circuit, component)
    if circuit.reset_net is not None:
        reset = circuit.get(circuit.reset_net)
        if reset.kind is not ComponentKind.INPUT or reset.width != 1:
            raise NetlistError(f"reset net {circuit.reset_net!r} must be a 1-bit input")
    _check_acyclic(circuit)
    return circuit
