"""A direct RTL interpreter -- the reference model for elaboration.

Evaluates an :class:`RTLCircuit` cycle by cycle at word level, entirely
independently of the gate-level path (no netlists, no bit-blasting).
The test suite cross-checks it against elaborate+simulate on random
circuits, so a disagreement pinpoints a bug in one of the two layers.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import SimulationError
from repro.rtl.circuit import RTLCircuit
from repro.rtl.components import Constant, Input, Mux, Operator, Output, Register
from repro.rtl.types import ComponentKind, Expr, OpKind, expr_parts


class RTLInterpreter:
    """Word-level reference simulator for RTL circuits."""

    def __init__(self, circuit: RTLCircuit) -> None:
        self.circuit = circuit
        self.state: Dict[str, int] = {r.name: 0 for r in circuit.registers}
        self._inputs: Dict[str, int] = {}
        self._values: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _mask(self, width: int) -> int:
        return (1 << width) - 1

    def _eval_expr(self, expr: Expr) -> int:
        value = 0
        shift = 0
        for part in expr_parts(expr):
            word = self._eval_comp(part.comp)
            value |= ((word >> part.lo) & self._mask(part.width)) << shift
            shift += part.width
        return value

    def _eval_comp(self, name: str) -> int:
        if name in self._values:
            return self._values[name]
        component = self.circuit.get(name)
        if isinstance(component, Input):
            try:
                result = self._inputs[name] & self._mask(component.width)
            except KeyError:
                raise SimulationError(f"no value for input {name!r}") from None
        elif isinstance(component, Register):
            result = self.state[name]
        elif isinstance(component, Constant):
            result = component.value
        elif isinstance(component, Mux):
            select = self._eval_expr(component.select)
            index = min(select, len(component.inputs) - 1)
            result = self._eval_expr(component.inputs[index])
        elif isinstance(component, Operator):
            result = self._eval_op(component)
        elif isinstance(component, Output):
            result = self._eval_expr(component.driver)
        else:
            raise SimulationError(f"cannot interpret component {name!r}")
        self._values[name] = result
        return result

    def _eval_op(self, op: Operator) -> int:
        operands = [self._eval_expr(e) for e in op.operands]
        mask = self._mask(op.width)
        kind = op.op
        if kind is OpKind.ADD:
            return (operands[0] + operands[1]) & mask
        if kind is OpKind.SUB:
            return (operands[0] - operands[1]) & mask
        if kind is OpKind.INC:
            return (operands[0] + 1) & mask
        if kind is OpKind.DEC:
            return (operands[0] - 1) & mask
        if kind is OpKind.AND:
            return operands[0] & operands[1]
        if kind is OpKind.OR:
            return operands[0] | operands[1]
        if kind is OpKind.XOR:
            return operands[0] ^ operands[1]
        if kind is OpKind.NOT:
            return ~operands[0] & mask
        if kind is OpKind.EQ:
            return int(operands[0] == operands[1])
        if kind is OpKind.LT:
            return int(operands[0] < operands[1])
        if kind is OpKind.SHL:
            return (operands[0] << 1) & mask
        if kind is OpKind.SHR:
            return operands[0] >> 1
        if kind is OpKind.DECODE:
            return 1 << operands[0]
        if kind is OpKind.REDUCE_OR:
            return int(operands[0] != 0)
        if kind is OpKind.REDUCE_AND:
            source_width = sum(p.width for p in expr_parts(op.operands[0]))
            return int(operands[0] == self._mask(source_width))
        raise SimulationError(f"unsupported operator {kind}")

    # ------------------------------------------------------------------
    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Apply one clock cycle; returns output-port values."""
        self._inputs = dict(inputs)
        self._values = {}
        outputs = {
            port.name: self._eval_comp(port.name) for port in self.circuit.outputs
        }
        reset_active = False
        if self.circuit.reset_net is not None:
            reset_active = bool(self._eval_comp(self.circuit.reset_net) & 1)
        next_state = dict(self.state)
        for register in self.circuit.registers:
            load = True
            if register.enable is not None:
                load = bool(self._eval_expr(register.enable) & 1)
            value = self.state[register.name]
            if load:
                value = self._eval_expr(register.driver)
            if reset_active and register.reset_value is not None:
                value = register.reset_value
            next_state[register.name] = value & self._mask(register.width)
        self.state = next_state
        return outputs
