"""Extraction of lossless transfer arcs from RTL driver expressions.

A *transfer arc* records that a contiguous slice of a register or output
port can receive, in one clock cycle (registers) or combinationally
(outputs), an exact copy of a slice of an input or register -- either
directly or by steering a chain of multiplexers.  Arcs are the raw
material of both HSCAN chain construction and the paper's register
connectivity graph (Section 4): "an edge is present between two nodes if
a direct or multiplexer path exists between them".

Paths through operators are lossy and produce no arcs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.rtl.circuit import RTLCircuit
from repro.rtl.components import Mux, Output, Register
from repro.rtl.types import ComponentKind, Expr, Slice, expr_parts, slice_expr


@dataclass(frozen=True)
class Arc:
    """One lossless slice-to-slice transfer opportunity.

    ``dest``/``dest_lo`` identify the receiving slice
    (``dest[dest_lo : dest_lo + source.width]``); ``source`` is the slice
    supplying the bits.  ``mux_path`` lists the (mux name, selected input
    index) steering decisions needed to open the path -- empty for a
    direct connection.  ``dest_is_output`` distinguishes combinational
    output-port arcs (latency 0) from register arcs (latency 1).
    """

    source: Slice
    dest: str
    dest_lo: int
    mux_path: Tuple[Tuple[str, int], ...]
    dest_is_output: bool

    @property
    def width(self) -> int:
        return self.source.width

    @property
    def is_direct(self) -> bool:
        return not self.mux_path

    def __str__(self) -> str:
        via = "" if self.is_direct else " via " + ">".join(m for m, _ in self.mux_path)
        dest_slice = Slice(self.dest, self.dest_lo, self.width)
        return f"{self.source} -> {dest_slice}{via}"


def extract_arcs(circuit: RTLCircuit, max_mux_depth: int = 4) -> List[Arc]:
    """All transfer arcs of ``circuit``.

    ``max_mux_depth`` bounds mux-chain traversal (defensive; real RTL mux
    trees are shallow).
    """
    arcs: List[Arc] = []
    for register in circuit.registers:
        if register.driver is not None:
            _trace(circuit, register.driver, register.name, 0, (), False, arcs, max_mux_depth)
    for output in circuit.outputs:
        if output.driver is not None:
            _trace(circuit, output.driver, output.name, 0, (), True, arcs, max_mux_depth)
    return arcs


def _trace(
    circuit: RTLCircuit,
    expr: Expr,
    dest: str,
    dest_lo: int,
    mux_path: Tuple[Tuple[str, int], ...],
    dest_is_output: bool,
    arcs: List[Arc],
    depth_budget: int,
) -> None:
    offset = dest_lo
    for part in expr_parts(expr):
        component = circuit.get(part.comp)
        kind = component.kind
        if kind in (ComponentKind.INPUT, ComponentKind.REGISTER):
            arcs.append(Arc(part, dest, offset, mux_path, dest_is_output))
        elif kind is ComponentKind.MUX and depth_budget > 0:
            mux: Mux = component  # type: ignore[assignment]
            for index, candidate in enumerate(mux.inputs):
                sub = slice_expr(candidate, part.lo, part.width)
                _trace(
                    circuit,
                    sub,
                    dest,
                    offset,
                    mux_path + ((mux.name, index),),
                    dest_is_output,
                    arcs,
                    depth_budget - 1,
                )
        # operators/constants: lossy or valueless -- no arc
        offset += part.width


def arcs_by_dest(arcs: List[Arc]) -> dict:
    """Group arcs by destination component name."""
    grouped: dict = {}
    for arc in arcs:
        grouped.setdefault(arc.dest, []).append(arc)
    return grouped


def arcs_by_source(arcs: List[Arc]) -> dict:
    """Group arcs by source component name."""
    grouped: dict = {}
    for arc in arcs:
        grouped.setdefault(arc.source.comp, []).append(arc)
    return grouped
