"""SOCET: transparency-based testing of core-based systems-on-chip.

A complete reproduction of Ghosh, Dey & Jha, "A Fast and Low Cost
Testing Technique for Core-based System-on-Chip" (DAC 1998), with every
substrate -- RTL modelling, elaboration, fault simulation, ATPG, scan
insertion, transparency synthesis, chip-level planning -- implemented
from scratch.  See DESIGN.md for the architecture and EXPERIMENTS.md
for the reproduced tables and figures.

The most-used entry points are re-exported here; the subpackages hold
the rest (``repro.rtl``, ``repro.gates``, ``repro.elaborate``,
``repro.faults``, ``repro.atpg``, ``repro.dft``, ``repro.transparency``,
``repro.soc``, ``repro.baselines``, ``repro.bist``, ``repro.designs``,
``repro.flow``).
"""

from repro.rtl import CircuitBuilder, OpKind, RTLCircuit, Slice
from repro.dft import insert_hscan
from repro.transparency import generate_versions
from repro.soc import Core, Soc, design_space, plan_soc_test
from repro.soc.optimizer import SocetOptimizer

__version__ = "1.0.0"

__all__ = [
    "CircuitBuilder",
    "OpKind",
    "RTLCircuit",
    "Slice",
    "insert_hscan",
    "generate_versions",
    "Core",
    "Soc",
    "design_space",
    "plan_soc_test",
    "SocetOptimizer",
    "__version__",
]
