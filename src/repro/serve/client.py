"""Synchronous client for the ``repro serve`` daemon.

A thin, dependency-free wrapper over one socket connection speaking the
:mod:`repro.serve.protocol` line protocol::

    with ServeClient("127.0.0.1:7457") as client:
        job_id = client.submit("sweep", "System1")
        descriptor, result = client.wait(job_id)

Every method sends one request line and blocks for the matching
response line.  Daemon-side error envelopes are raised as
:class:`~repro.errors.ServeError` carrying the wire error code, so
callers can distinguish ``queue-full`` from ``unknown-system`` without
parsing messages.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ServeError
from repro.serve import protocol


class ServeClient:
    """One connection to a planning daemon (sync, context-managed)."""

    def __init__(self, address: str, timeout: Optional[float] = None) -> None:
        self.address = address
        kind, value = protocol.parse_address(address)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(value)
        else:
            self._sock = socket.create_connection(value, timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> Dict[str, Any]:
        """Send one request, return the daemon's ``ok`` envelope.

        Raises :class:`ServeError` (with the wire code) on an error
        envelope, :class:`ProtocolError` on a malformed response.
        """
        self._sock.sendall(protocol.encode(protocol.request_envelope(op, **fields)))
        line = self._reader.readline()
        if not line:
            raise ServeError("daemon closed the connection", code="disconnected")
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ProtocolError(f"response is not JSON: {error}")
        if not isinstance(response, dict) or response.get("schema") != protocol.PROTOCOL:
            raise ProtocolError(f"response is not a {protocol.PROTOCOL} envelope")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("message", "daemon error"),
                code=error.get("code", "error"),
            )
        return response

    # ------------------------------------------------------------------
    # op wrappers
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(
        self,
        job_type: str,
        system: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        tenant: str = "default",
    ) -> str:
        """Enqueue a job; returns its id."""
        response = self.request(
            "submit",
            job={
                "type": job_type,
                "system": system,
                "params": params or {},
                "priority": priority,
                "timeout_s": timeout_s,
                "tenant": tenant,
            },
        )
        return response["id"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("status", id=job_id)["job"]

    def result(self, job_id: str) -> Tuple[Dict[str, Any], Any]:
        """(descriptor, result) of a terminal job; ``not-done`` otherwise."""
        response = self.request("result", id=job_id)
        return response["job"], response["result"]

    def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Tuple[Dict[str, Any], Any]:
        """Block (server-side) until the job is terminal.

        With ``timeout_s``, returns early with ``result=None`` and a
        non-terminal descriptor if the job is still going.
        """
        response = self.request("wait", id=job_id, timeout_s=timeout_s)
        return response["job"], response["result"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", id=job_id)["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("jobs")["jobs"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def metrics(self) -> str:
        """The daemon's Prometheus-style text exposition."""
        return self.request("metrics")["exposition"]

    def spans(self, job_id: str) -> List[Dict[str, Any]]:
        """The span tree of a terminal job (Chrome-style events)."""
        return self.request("result", id=job_id).get("spans", [])

    def shutdown(self, hard: bool = False) -> Dict[str, Any]:
        """Ask the daemon to drain and exit (same path as SIGTERM)."""
        return self.request("shutdown", hard=hard)

    # ------------------------------------------------------------------
    def run(
        self,
        job_type: str,
        system: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        **submit_kwargs,
    ) -> Any:
        """Submit + wait; returns the result, raises on a failed job."""
        job_id = self.submit(job_type, system, params, **submit_kwargs)
        descriptor, result = self.wait(job_id)
        if descriptor["state"] != "done":
            raise ServeError(
                f"job {job_id} {descriptor['state']}: {descriptor['error']}",
                code=f"job-{descriptor['state']}",
            )
        return result
