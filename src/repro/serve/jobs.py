"""Job model and priority queue for the planning daemon.

A :class:`Job` moves through ``queued -> running -> `` one terminal
state (``done`` / ``failed`` / ``cancelled`` / ``timeout``).  All state
transitions happen on the daemon's event-loop thread; the only pieces
the worker thread touches are the cooperative cancellation flag and the
execution deadline, both read through :func:`checkpoint` between units
of work (sweep chunks, sleep steps).  A job that never reaches a
checkpoint runs to completion -- cancellation and timeouts are
cooperative by design, the daemon never kills a worker mid-plan.

:class:`JobQueue` orders runnable jobs by ``(-priority, seq)``: higher
priority first, FIFO within a priority.  Cancelled entries are removed
lazily on pop.  ``coalesce`` extracts every queued sweep job for the
same system so the dispatcher can fan their design-space points out in
one batch (see :mod:`repro.serve.state`).
"""

from __future__ import annotations

import asyncio
import heapq
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import METRICS
from repro.obs.tracer import new_span_id

# queue/lifecycle accounting (``serve.*`` counters are load- and
# timing-dependent, so the regression observatory exempts the prefix
# from the exact counter gate -- see ``GatePolicy.counter_ignore``)
_SUBMITTED = METRICS.counter("serve.jobs.submitted")
_COMPLETED = METRICS.counter("serve.jobs.completed")
_FAILED = METRICS.counter("serve.jobs.failed")
_CANCELLED = METRICS.counter("serve.jobs.cancelled")
_TIMEOUTS = METRICS.counter("serve.jobs.timeouts")
_REJECTED = METRICS.counter("serve.jobs.rejected")
_DEPTH = METRICS.gauge("serve.queue.depth")

# latency distributions derived from the job span tree; these feed the
# ``metrics`` op, the serve ledger record, and the p99 SLO gate
_QUEUE_WAIT = METRICS.histogram("serve.queue_wait")
_JOB_LATENCY = METRICS.histogram("serve.job_latency")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED, TIMEOUT))


class JobCancelled(Exception):
    """Raised by :func:`checkpoint` when the job's cancel flag is set."""


class JobTimeout(Exception):
    """Raised by :func:`checkpoint` when the job's deadline passed."""


class QueueFull(Exception):
    """The queue is at capacity; the submission was rejected."""


class QueueDraining(Exception):
    """The daemon is draining; new submissions are rejected."""


@dataclass
class Job:
    """One submitted job and its full lifecycle record."""

    id: str
    seq: int
    type: str
    system: Optional[str]
    params: Dict[str, Any]
    priority: int = 0
    timeout_s: Optional[float] = None
    tenant: str = "default"

    state: str = QUEUED
    error: Optional[str] = None
    result: Any = None
    submitted_monotonic: float = field(default_factory=time.monotonic)
    started_monotonic: Optional[float] = None
    finished_monotonic: Optional[float] = None
    wall_s: Optional[float] = None
    #: order in which the dispatcher started jobs (priority evidence)
    run_seq: Optional[int] = None
    #: jobs served together with this one in a coalesced sweep batch
    batched_with: int = 0
    #: lifecycle phase records (validate / queue_wait / coalesce / run /
    #: serialize), appended by whichever thread measured each phase;
    #: :meth:`span_tree` turns them into Chrome-style span events
    phases: List[Dict[str, Any]] = field(default_factory=list, repr=False)

    # worker-side cooperation (the only fields touched off-loop)
    cancel_flag: threading.Event = field(default_factory=threading.Event, repr=False)
    deadline_monotonic: Optional[float] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Seconds between submission and dispatch (``None`` until run)."""
        if self.started_monotonic is None:
            return None
        return self.started_monotonic - self.submitted_monotonic

    def descriptor(self) -> Dict[str, Any]:
        """The JSON-safe job summary sent over the wire (no result)."""
        return {
            "id": self.id,
            "type": self.type,
            "system": self.system,
            "tenant": self.tenant,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "state": self.state,
            "error": self.error,
            "wall_s": self.wall_s,
            "queue_wait_s": self.queue_wait_s,
            "run_seq": self.run_seq,
            "batched_with": self.batched_with,
        }

    # ------------------------------------------------------------------
    # lifecycle phases / span tree
    # ------------------------------------------------------------------
    def add_phase(
        self, name: str, start_monotonic: float, end_monotonic: float, **args: Any
    ) -> None:
        """Record one lifecycle phase (append-only, any thread)."""
        self.phases.append(
            {
                "name": name,
                "start_monotonic": start_monotonic,
                "dur_s": max(0.0, end_monotonic - start_monotonic),
                "args": args,
            }
        )

    def phase_durations(self) -> Dict[str, float]:
        """Compact ``{phase: seconds}`` view for ledger/stats payloads."""
        durations: Dict[str, float] = {}
        for phase in self.phases:
            durations[phase["name"]] = (
                durations.get(phase["name"], 0.0) + phase["dur_s"]
            )
        return durations

    def span_tree(self) -> List[Dict[str, Any]]:
        """Chrome-style span events for this job: one ``serve.job`` root
        with every recorded phase nested under it.

        Timestamps are the daemon's monotonic clock in microseconds, so
        trees from different jobs of the same daemon line up on one
        timeline; ``tid`` is the job sequence number so each job renders
        as its own row.  Span ids are minted fresh per call from the
        process-wide allocator (never colliding with live tracer spans).
        """
        starts = [p["start_monotonic"] for p in self.phases]
        ends = [p["start_monotonic"] + p["dur_s"] for p in self.phases]
        root_start = min([self.submitted_monotonic] + starts)
        root_end = max(
            [self.finished_monotonic or self.submitted_monotonic] + ends
        )
        root_id = new_span_id()
        pid = os.getpid()
        events: List[Dict[str, Any]] = [
            {
                "name": "serve.job",
                "ph": "X",
                "ts": root_start * 1e6,
                "dur": (root_end - root_start) * 1e6,
                "pid": pid,
                "tid": self.seq,
                "cat": "serve",
                "args": {
                    "job": self.id,
                    "type": self.type,
                    "system": self.system,
                    "tenant": self.tenant,
                    "state": self.state,
                    "depth": 0,
                    "parent": None,
                    "span_id": root_id,
                    "parent_id": None,
                },
            }
        ]
        for phase in self.phases:
            events.append(
                {
                    "name": f"serve.job.{phase['name']}",
                    "ph": "X",
                    "ts": phase["start_monotonic"] * 1e6,
                    "dur": phase["dur_s"] * 1e6,
                    "pid": pid,
                    "tid": self.seq,
                    "cat": "serve",
                    "args": dict(
                        phase["args"],
                        job=self.id,
                        depth=1,
                        parent="serve.job",
                        span_id=new_span_id(),
                        parent_id=root_id,
                    ),
                }
            )
        return events

    # ------------------------------------------------------------------
    # loop-thread transitions
    # ------------------------------------------------------------------
    def mark_running(self, run_seq: int) -> None:
        self.state = RUNNING
        self.run_seq = run_seq
        self.started_monotonic = time.monotonic()
        if self.timeout_s is not None:
            self.deadline_monotonic = self.started_monotonic + self.timeout_s
        _QUEUE_WAIT.observe(self.queue_wait_s)
        self.add_phase(
            "queue_wait", self.submitted_monotonic, self.started_monotonic
        )

    def finish(self, state: str, result: Any = None, error: Optional[str] = None) -> None:
        self.state = state
        self.result = result
        self.error = error
        self.finished_monotonic = time.monotonic()
        if self.started_monotonic is not None:
            self.wall_s = self.finished_monotonic - self.started_monotonic
            _JOB_LATENCY.observe(
                self.finished_monotonic - self.submitted_monotonic
            )
        {
            DONE: _COMPLETED,
            FAILED: _FAILED,
            CANCELLED: _CANCELLED,
            TIMEOUT: _TIMEOUTS,
        }[state].inc()
        METRICS.counter(f"serve.tenant.{self.tenant}.{state}").inc()
        self.done_event.set()


def checkpoint(job: Job) -> None:
    """Cooperative cancellation/deadline check, called between units of
    work on the worker thread.  Raises :class:`JobCancelled` or
    :class:`JobTimeout`; the batch runner converts those into the
    matching terminal state."""
    if job.cancel_flag.is_set():
        raise JobCancelled(job.id)
    if job.deadline_monotonic is not None and time.monotonic() > job.deadline_monotonic:
        raise JobTimeout(job.id)


class JobQueue:
    """Single-consumer priority queue living on the event-loop thread."""

    def __init__(self, max_size: int = 256) -> None:
        self.max_size = max_size
        self._heap: List = []  # (-priority, seq, Job)
        self._wake = asyncio.Event()
        self.draining = False

    def __len__(self) -> int:
        return sum(1 for _, _, job in self._heap if job.state == QUEUED)

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Enqueue (loop thread only); raises when full or draining."""
        if self.draining:
            _REJECTED.inc()
            raise QueueDraining("daemon is draining; submission rejected")
        if len(self) >= self.max_size:
            _REJECTED.inc()
            raise QueueFull(f"job queue is full ({self.max_size} pending)")
        heapq.heappush(self._heap, (-job.priority, job.seq, job))
        _SUBMITTED.inc()
        METRICS.counter(f"serve.tenant.{job.tenant}.submitted").inc()
        _DEPTH.set(len(self))
        self._wake.set()

    def start_drain(self) -> None:
        """Refuse new submissions; queued jobs still run to completion."""
        self.draining = True
        self._wake.set()

    def cancel_pending(self) -> int:
        """Hard drain: cancel every still-queued job (loop thread)."""
        cancelled = 0
        for _, _, job in self._heap:
            if job.state == QUEUED:
                job.finish(CANCELLED, error="cancelled: daemon hard drain")
                cancelled += 1
        self._heap.clear()
        _DEPTH.set(0)
        self._wake.set()
        return cancelled

    # ------------------------------------------------------------------
    async def next_job(self) -> Optional[Job]:
        """The highest-priority runnable job; ``None`` once draining and
        empty (the dispatcher's stop signal)."""
        while True:
            job = self._pop_runnable()
            if job is not None:
                _DEPTH.set(len(self))
                return job
            if self.draining:
                return None
            self._wake.clear()
            await self._wake.wait()

    def _pop_runnable(self) -> Optional[Job]:
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state == QUEUED:
                return job
        return None

    def coalesce_sweeps(self, job: Job) -> List[Job]:
        """Extract every queued sweep job on ``job``'s system.

        Called right after ``job`` (itself a sweep) is popped: the
        returned jobs ride in the same batch -- their design-space
        points are chunked together before fan-out -- ordered by
        ``(-priority, seq)`` like the queue itself.
        """
        if job.type != "sweep":
            return []
        matching = [
            entry
            for entry in self._heap
            if entry[2].state == QUEUED
            and entry[2].type == "sweep"
            and entry[2].system == job.system
        ]
        if not matching:
            return []
        keep = [
            entry
            for entry in self._heap
            if not (
                entry[2].state == QUEUED
                and entry[2].type == "sweep"
                and entry[2].system == job.system
            )
        ]
        self._heap = keep
        heapq.heapify(self._heap)
        _DEPTH.set(len(self))
        return [entry[2] for entry in sorted(matching)]
