"""SOCET-as-a-service: a resident planning daemon with an async job API.

The one-shot CLI pays the full setup cost -- building the SOC netlists,
synthesizing transparency versions, warming the plan cache and worker
pool -- on every invocation.  This package keeps all of that *resident*
in a long-running daemon (``repro serve``) and exposes planning as jobs
over a small line-delimited JSON protocol (``repro submit`` /
``repro jobs``, or :class:`ServeClient` from code).

Modules:

``protocol``  the versioned ``repro-serve`` wire schema (envelopes,
              job specs, addresses, error codes)
``jobs``      the job lifecycle model and the priority queue
``state``     warm state (SOCs, executors, result cache) and the batch
              runner that executes jobs bit-identically to the CLI
``daemon``    the asyncio server: dispatch, ops, graceful drain
``client``    the synchronous client library
``top``       the ``repro top`` live terminal dashboard
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeConfig, ServeDaemon, start_background
from repro.serve.jobs import Job, JobQueue
from repro.serve.protocol import JOB_TYPES, PROTOCOL, PROTOCOL_VERSION
from repro.serve.top import run_top

__all__ = [
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "start_background",
    "Job",
    "JobQueue",
    "JOB_TYPES",
    "PROTOCOL",
    "PROTOCOL_VERSION",
    "run_top",
]
