"""The ``repro serve`` daemon: a resident asyncio planning service.

One asyncio event loop accepts line-delimited JSON requests (TCP or
unix-domain socket, see :mod:`repro.serve.protocol`) and answers them
from warm state (:mod:`repro.serve.state`).  Jobs run on a single
dedicated worker thread, one batch at a time, so the event loop stays
responsive for ``status``/``cancel``/``submit`` while a plan computes
and job execution order is exactly the queue's priority order.

Lifecycle::

    daemon = ServeDaemon(ServeConfig(address="unix:/tmp/repro.sock"))
    daemon.run()          # blocks; SIGTERM/SIGINT drain gracefully

Graceful drain (SIGTERM, or the ``shutdown`` op): stop accepting
submissions, finish the running batch *and* everything already queued,
flush the session's completed-job record to the run ledger (when
``--ledger`` is set), release the worker pools, exit 0.  A second
SIGTERM hard-drains: still-queued jobs are cancelled, the running batch
finishes at its next checkpoint, the flush still happens.

The ledger record is a ``repro-ledger`` ``kind="serve"`` document:
``samples`` holds every completed job's wall seconds, ``results`` the
per-job summaries and per-tenant totals, ``counters`` the full registry
snapshot -- so a serving session is a first-class, regressable entry in
the same performance history as benches and profiles.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.errors import ProtocolError
from repro.obs import METRICS
from repro.serve import jobs as jobmod
from repro.serve import protocol
from repro.serve.jobs import Job, JobQueue, QueueDraining, QueueFull
from repro.serve.state import WarmState, run_batch

logger = logging.getLogger("repro.serve.daemon")

_CONNECTIONS = METRICS.counter("serve.connections")
_REQUESTS = METRICS.counter("serve.requests")
_ERRORS = METRICS.counter("serve.requests.errors")

#: job descriptors returned by the ``jobs`` op (newest last)
JOBS_LISTING_LIMIT = 200


@dataclass
class ServeConfig:
    """Daemon settings (the CLI maps its flags straight onto this)."""

    address: str = "127.0.0.1:7457"
    jobs: Optional[int] = None
    ledger: Optional[str] = None
    max_queue: int = 256
    #: series key of the session's ledger record
    bench: str = "serve-session"
    #: file the bound address is written to once listening (lets
    #: scripts use ephemeral ports / wait for readiness)
    address_file: Optional[str] = None
    #: seconds to let in-flight responses flush after the drain
    drain_grace_s: float = 2.0


class ServeDaemon:
    """The resident planning service (one instance per process)."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.state = WarmState(self.config.jobs)
        self.queue = JobQueue(self.config.max_queue)
        self.jobs: Dict[str, Job] = {}
        self.address: Optional[str] = None
        self._seq = 0
        self._run_seq = 0
        self._started_monotonic = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-worker"
        )
        self._active_requests = 0
        self._drain_requested = False
        self._hard_drain = False
        self._ready = threading.Event()
        self._finished = threading.Event()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until drained (blocking).  Returns the exit status."""
        try:
            asyncio.run(self._serve())
        finally:
            self._finished.set()
        return 0

    def request_drain(self, hard: bool = False) -> None:
        """Thread-safe drain trigger (signal handlers, test helpers)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._begin_drain, hard)

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        return self._ready.wait(timeout)

    def wait_finished(self, timeout: Optional[float] = None) -> bool:
        return self._finished.wait(timeout)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._install_signal_handlers()
        kind, value = protocol.parse_address(self.config.address)
        # the stream limit sits just above MAX_LINE_BYTES so oversized
        # requests are read far enough to be answered with an error
        # envelope; anything beyond the limit drops the connection
        limit = protocol.MAX_LINE_BYTES + 1024
        if kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=value, limit=limit
            )
            self.address = protocol.format_address("unix", value)
        else:
            host, port = value
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port, limit=limit
            )
            bound = self._server.sockets[0].getsockname()
            self.address = protocol.format_address("tcp", (bound[0], bound[1]))
        if self.config.address_file:
            with open(self.config.address_file, "w") as handle:
                handle.write(self.address + "\n")
        logger.info("repro-serve/%d listening on %s", protocol.PROTOCOL_VERSION, self.address)
        self._ready.set()
        try:
            await self._dispatch_loop()
            await self._let_responses_flush()
        finally:
            self._flush_ledger()
            self._server.close()
            await self._server.wait_closed()
            self.state.close()
            self._worker.shutdown(wait=True)
            logger.info("repro-serve drained; exiting")

    def _install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return  # in-process test/bench daemons drain via the shutdown op
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._on_signal)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    def _on_signal(self) -> None:
        self._begin_drain(hard=self._drain_requested)

    def _begin_drain(self, hard: bool = False) -> None:
        if hard and self._drain_requested:
            if not self._hard_drain:
                logger.warning("hard drain: cancelling queued jobs")
                self._hard_drain = True
                self.queue.cancel_pending()
            return
        if not self._drain_requested:
            logger.info("drain requested: finishing queued jobs, then exiting")
            self._drain_requested = True
            self.queue.start_drain()
        elif hard:
            self._hard_drain = True
            self.queue.cancel_pending()

    async def _let_responses_flush(self) -> None:
        """Give connection handlers a moment to send final responses."""
        deadline = time.monotonic() + self.config.drain_grace_s
        while self._active_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------------
    # dispatching
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            job = await self.queue.next_job()
            if job is None:
                return
            coalesce_start = time.monotonic()
            batch = [job] + self.queue.coalesce_sweeps(job)
            coalesce_end = time.monotonic()
            self._run_seq += 1
            run_seq = self._run_seq
            for entry in batch:
                entry.add_phase(
                    "coalesce", coalesce_start, coalesce_end, batch=len(batch)
                )
                entry.mark_running(run_seq)
            outcomes = await self._loop.run_in_executor(
                self._worker, run_batch, self.state, batch
            )
            for entry, (state, result, error) in outcomes:
                entry.finish(state, result=result, error=error)

    def _submit(self, spec: Dict[str, Any]) -> Job:
        if spec["system"] is not None and spec["system"] not in self.state.known_systems():
            raise ProtocolError(
                f"unknown system {spec['system']!r}; "
                f"choose from {self.state.known_systems()}",
                code="unknown-system",
            )
        self._seq += 1
        job = Job(
            id=f"j{self._seq:04d}",
            seq=self._seq,
            type=spec["type"],
            system=spec["system"],
            params=spec["params"],
            priority=spec["priority"],
            timeout_s=spec["timeout_s"],
            tenant=spec["tenant"],
        )
        self.queue.submit(job)
        self.jobs[job.id] = job
        return job

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        _CONNECTIONS.inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError, asyncio.LimitOverrunError):
                    break  # reset, or a line beyond the stream limit
                if not line:
                    break
                self._active_requests += 1
                try:
                    response = await self._dispatch_request(line)
                finally:
                    self._active_requests -= 1
                writer.write(protocol.encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            # the loop is exiting (drain finished with this client still
            # connected): end the connection quietly, not as a task error
            pass
        finally:
            writer.close()

    async def _dispatch_request(self, line: bytes) -> Dict[str, Any]:
        _REQUESTS.inc()
        try:
            envelope = protocol.decode_request(line)
            handler = getattr(self, f"_op_{envelope['op']}")
            return await handler(envelope)
        except ProtocolError as error:
            _ERRORS.inc()
            return protocol.response_error(error.code, str(error))
        except Exception as error:  # never tear a connection down on a bug
            _ERRORS.inc()
            logger.exception("request failed")
            return protocol.response_error(
                "internal", f"{type(error).__name__}: {error}"
            )

    def _job_or_raise(self, envelope: Dict[str, Any]) -> Job:
        job_id = envelope.get("id")
        job = self.jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}", code="unknown-job")
        return job

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    async def _op_ping(self, _envelope) -> Dict[str, Any]:
        return protocol.response_ok(
            "ping",
            server=f"repro-serve/{protocol.PROTOCOL_VERSION}",
            version=__version__,
            uptime_s=time.monotonic() - self._started_monotonic,
            address=self.address,
            draining=self._drain_requested,
        )

    async def _op_submit(self, envelope) -> Dict[str, Any]:
        validate_start = time.monotonic()
        spec = protocol.validate_job_spec(envelope.get("job"))
        try:
            job = self._submit(spec)
        except QueueFull as error:
            raise ProtocolError(str(error), code="queue-full")
        except QueueDraining as error:
            raise ProtocolError(str(error), code="draining")
        # the job exists only after validation passed, so the phase is
        # attached retroactively (its start predates the submit stamp)
        job.add_phase("validate", validate_start, time.monotonic())
        return protocol.response_ok("submit", id=job.id, state=job.state)

    async def _op_status(self, envelope) -> Dict[str, Any]:
        job = self._job_or_raise(envelope)
        return protocol.response_ok("status", job=job.descriptor())

    async def _op_result(self, envelope) -> Dict[str, Any]:
        job = self._job_or_raise(envelope)
        if not job.terminal:
            raise ProtocolError(
                f"job {job.id} is {job.state}; use 'wait'", code="not-done"
            )
        return protocol.response_ok(
            "result",
            job=job.descriptor(),
            result=job.result,
            spans=job.span_tree(),
        )

    async def _op_wait(self, envelope) -> Dict[str, Any]:
        job = self._job_or_raise(envelope)
        timeout = envelope.get("timeout_s")
        if not job.terminal:
            try:
                await asyncio.wait_for(
                    job.done_event.wait(),
                    timeout=float(timeout) if timeout is not None else None,
                )
            except asyncio.TimeoutError:
                return protocol.response_ok("wait", job=job.descriptor(), result=None)
        return protocol.response_ok(
            "wait",
            job=job.descriptor(),
            result=job.result,
            spans=job.span_tree(),
        )

    async def _op_cancel(self, envelope) -> Dict[str, Any]:
        job = self._job_or_raise(envelope)
        if job.state == jobmod.QUEUED:
            job.finish(jobmod.CANCELLED, error="cancelled while queued")
        elif job.state == jobmod.RUNNING:
            job.cancel_flag.set()  # honored at the next checkpoint
        return protocol.response_ok("cancel", job=job.descriptor())

    async def _op_jobs(self, _envelope) -> Dict[str, Any]:
        listing = [
            job.descriptor()
            for job in list(self.jobs.values())[-JOBS_LISTING_LIMIT:]
        ]
        return protocol.response_ok("jobs", jobs=listing)

    async def _op_stats(self, _envelope) -> Dict[str, Any]:
        tenants: Dict[str, Dict[str, int]] = {}
        for name, value in METRICS.counters("serve.tenant.").items():
            tenant, _, event = name[len("serve.tenant."):].rpartition(".")
            tenants.setdefault(tenant, {})[event] = int(value)
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return protocol.response_ok(
            "stats",
            stats={
                "address": self.address,
                "uptime_s": time.monotonic() - self._started_monotonic,
                "jobs_setting": self.state.jobs,
                "queue_depth": len(self.queue),
                "draining": self._drain_requested,
                "jobs_total": len(self.jobs),
                "states": states,
                "tenants": tenants,
                "result_cache": self.state.result_cache_stats(),
                "batch": {
                    "batches": int(METRICS.counter("serve.batch.batches").value),
                    "coalesced": int(METRICS.counter("serve.batch.coalesced").value),
                    "points_deduped": int(
                        METRICS.counter("serve.batch.points_deduped").value
                    ),
                },
                "latency": {
                    "queue_wait": METRICS.histogram("serve.queue_wait").summary(),
                    "job_latency": METRICS.histogram("serve.job_latency").summary(),
                },
            },
        )

    async def _op_metrics(self, _envelope) -> Dict[str, Any]:
        """Prometheus-style text exposition of the live registry."""
        from repro.obs.expo import render_exposition

        return protocol.response_ok(
            "metrics",
            exposition=render_exposition(METRICS.snapshot()),
            content_type="text/plain; version=0.0.4",
        )

    async def _op_shutdown(self, envelope) -> Dict[str, Any]:
        self._begin_drain(hard=bool(envelope.get("hard", False)))
        return protocol.response_ok("shutdown", draining=True)

    # ------------------------------------------------------------------
    # ledger flush
    # ------------------------------------------------------------------
    def _flush_ledger(self) -> None:
        """Append the session's completed-job record (drain path)."""
        if not self.config.ledger:
            return
        finished = [job for job in self.jobs.values() if job.wall_s is not None]
        if not finished:
            return
        from repro.obs.ledger import RunLedger, make_record

        summaries: List[Dict[str, Any]] = [
            {
                "id": job.id,
                "type": job.type,
                "system": job.system,
                "tenant": job.tenant,
                "state": job.state,
                "wall_s": job.wall_s,
                "queue_wait_s": job.queue_wait_s,
                "phases": job.phase_durations(),
                "spans": job.span_tree(),
            }
            for job in finished
        ]
        tenants: Dict[str, int] = {}
        for job in self.jobs.values():
            tenants[job.tenant] = tenants.get(job.tenant, 0) + 1
        record = make_record(
            bench=self.config.bench,
            samples=[job.wall_s for job in finished],
            kind="serve",
            histograms=METRICS.histograms(),
            results={
                "address": self.address,
                "jobs": summaries,
                "tenants": tenants,
                "drained": self._drain_requested,
                "hard_drain": self._hard_drain,
            },
        )
        RunLedger(self.config.ledger).append(record)
        logger.info(
            "flushed %d job samples to %s", len(finished), self.config.ledger
        )


# ----------------------------------------------------------------------
# embedding helper (tests, benchmarks)
# ----------------------------------------------------------------------
def start_background(config: ServeConfig, timeout: float = 10.0) -> ServeDaemon:
    """Run a daemon on a background thread; returns once it is listening.

    In-process daemons skip signal handlers (not the main thread); stop
    them with the ``shutdown`` op or :meth:`ServeDaemon.request_drain`,
    then :meth:`ServeDaemon.wait_finished`.
    """
    daemon = ServeDaemon(config)
    thread = threading.Thread(target=daemon.run, name="repro-serve", daemon=True)
    thread.start()
    if not daemon.wait_ready(timeout):
        raise RuntimeError(f"serve daemon failed to bind {config.address!r}")
    return daemon
