"""``repro top``: a live terminal dashboard over a running daemon.

Each frame polls two ops on one connection -- ``stats`` (queue depth,
job states, tenant rollups, latency summaries) and ``metrics`` (the
Prometheus text exposition) -- and renders them as a compact terminal
page.  The exposition is read back through
:func:`repro.obs.expo.parse_exposition`, the same parser the CI scrape
check uses, so ``repro top`` doubles as a continuous validation that
the daemon's metrics surface stays parseable.  Counter *deltas* are
computed between consecutive frames (the exposition only carries
totals), which is what makes queue churn and per-poll throughput
visible.

Latency percentiles come from the daemon's ``serve.queue_wait`` /
``serve.job_latency`` histograms; before any job has finished they are
the well-defined empty summary and render as ``-``.

``--once`` renders a single frame and exits (scriptable / testable);
``--expo`` dumps the raw exposition instead of the dashboard (the CI
scrape path).  The refresh loop redraws in place with plain ANSI
control sequences -- no curses, no dependencies.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.expo import parse_exposition
from repro.util import render_table

#: ANSI "cursor home + clear to end of screen" (redraw in place
#: without the full-screen flash of ``clear``)
_REDRAW = "\x1b[H\x1b[J"

#: counters whose per-frame delta is shown in the "hot counters" panel
_HOT_LIMIT = 8


def poll(client) -> Dict[str, Any]:
    """One dashboard frame's raw data from a connected client.

    Returns ``{"stats": ..., "counters": {dotted_name: value},
    "polled_monotonic": ...}``.  Counters are recovered from the
    ``metrics`` exposition (round-tripped through the parser); the
    dotted instrument name is taken from each series' HELP line, which
    :func:`repro.obs.expo.render_exposition` writes for exactly this
    reason.
    """
    stats = client.stats()
    parsed = parse_exposition(client.metrics())
    counters: Dict[str, float] = {}
    for entry in parsed.values():
        if entry.get("type") != "counter" or not entry["samples"]:
            continue
        help_text = entry.get("help") or ""
        _, _, dotted = help_text.partition(" ")
        if not dotted:
            continue
        counters[dotted] = entry["samples"][0][1]
    return {
        "stats": stats,
        "counters": counters,
        "polled_monotonic": time.monotonic(),
    }


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1.0:
        return f"{value * 1000:.1f}ms"
    return f"{value:.3f}s"


def _fmt_delta(current: Optional[float], previous: Optional[float]) -> str:
    """``+12%`` / ``-3%`` style movement of a percentile between frames."""
    if current is None or previous is None or previous == 0:
        return ""
    change = (current - previous) / previous
    if abs(change) < 0.005:
        return "  ="
    return f" {change:+.0%}"


def _latency_rows(
    stats: Dict[str, Any], previous_stats: Optional[Dict[str, Any]]
) -> List[List[str]]:
    rows = []
    for key in ("queue_wait", "job_latency"):
        summary = stats.get("latency", {}).get(key) or {}
        before = (previous_stats or {}).get("latency", {}).get(key) or {}
        rows.append([
            key,
            summary.get("count", 0),
            _fmt_seconds(summary.get("p50"))
            + _fmt_delta(summary.get("p50"), before.get("p50")),
            _fmt_seconds(summary.get("p90")),
            _fmt_seconds(summary.get("p99"))
            + _fmt_delta(summary.get("p99"), before.get("p99")),
            _fmt_seconds(summary.get("max")),
        ])
    return rows


def _tenant_rows(stats: Dict[str, Any]) -> List[List[Any]]:
    rows = []
    for tenant, events in sorted(stats.get("tenants", {}).items()):
        rows.append([
            tenant,
            events.get("submitted", 0),
            events.get("done", 0),
            events.get("failed", 0) + events.get("cancelled", 0)
            + events.get("timeout", 0),
        ])
    return rows


def _hot_counters(
    counters: Dict[str, float], previous: Optional[Dict[str, float]]
) -> List[Tuple[str, float, float]]:
    """Counters that moved since the last frame, biggest delta first."""
    if previous is None:
        return []
    moved = []
    for name, value in counters.items():
        delta = value - previous.get(name, 0.0)
        if delta > 0:
            moved.append((name, value, delta))
    moved.sort(key=lambda item: (-item[2], item[0]))
    return moved[:_HOT_LIMIT]


def render_frame(
    frame: Dict[str, Any], previous: Optional[Dict[str, Any]] = None
) -> str:
    """One dashboard page (no ANSI; the loop adds the redraw prefix)."""
    stats = frame["stats"]
    previous_stats = previous["stats"] if previous else None
    states = stats.get("states", {})
    queue_depth = stats.get("queue_depth", 0)
    depth_note = ""
    if previous_stats is not None:
        moved = queue_depth - previous_stats.get("queue_depth", 0)
        if moved:
            depth_note = f" ({moved:+d})"
    lines = [
        f"repro top -- {stats.get('address', '?')}  "
        f"up {stats.get('uptime_s', 0.0):.0f}s  "
        f"workers {stats.get('jobs_setting') or 'serial'}"
        + ("  DRAINING" if stats.get("draining") else ""),
        "",
        f"queue {queue_depth}{depth_note}  "
        f"running {states.get('running', 0)}  "
        f"queued {states.get('queued', 0)}  "
        f"done {states.get('done', 0)}  "
        f"failed {states.get('failed', 0)}  "
        f"cancelled {states.get('cancelled', 0)}  "
        f"timeout {states.get('timeout', 0)}",
        "",
        render_table(
            ["latency", "n", "p50", "p90", "p99", "max"],
            _latency_rows(stats, previous_stats),
        ),
    ]
    tenant_rows = _tenant_rows(stats)
    if tenant_rows:
        lines.append("")
        lines.append(render_table(
            ["tenant", "submitted", "done", "failed"], tenant_rows
        ))
    cache = stats.get("result_cache", {})
    batch = stats.get("batch", {})
    lines.append("")
    lines.append(
        f"cache {cache.get('size', 0)} entries / {cache.get('hits', 0)} hits; "
        f"batches {batch.get('batches', 0)} "
        f"(coalesced {batch.get('coalesced', 0)}, "
        f"deduped {batch.get('points_deduped', 0)})"
    )
    hot = _hot_counters(frame["counters"], previous["counters"] if previous else None)
    if hot:
        lines.append("")
        lines.append(render_table(
            ["counter (moved this frame)", "total", "delta"],
            [[name, int(value), f"+{delta:g}"] for name, value, delta in hot],
        ))
    return "\n".join(lines)


def run_top(
    address: str,
    interval: float = 2.0,
    once: bool = False,
    max_frames: Optional[int] = None,
    expo: bool = False,
    stream=None,
) -> int:
    """The ``repro top`` loop.  Returns a process exit code.

    ``once`` renders a single frame without clearing the screen;
    ``max_frames`` bounds the loop (tests); ``expo`` prints the raw
    exposition instead of the dashboard and exits.
    """
    from repro.errors import ReproError
    from repro.serve.client import ServeClient

    out = stream if stream is not None else sys.stdout
    try:
        with ServeClient(address) as client:
            if expo:
                out.write(client.metrics())
                return 0
            previous: Optional[Dict[str, Any]] = None
            frames = 0
            while True:
                frame = poll(client)
                page = render_frame(frame, previous)
                if once or max_frames is not None:
                    out.write(page + "\n")
                else:
                    out.write(_REDRAW + page + "\n")
                out.flush()
                frames += 1
                previous = frame
                if once or (max_frames is not None and frames >= max_frames):
                    return 0
                time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, ReproError) as error:
        print(f"repro top: {address}: {error}", file=sys.stderr)
        return 1
