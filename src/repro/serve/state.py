"""Resident warm state and job execution for the planning daemon.

This is what makes ``repro serve`` more than a CLI loop: everything
expensive stays warm across requests, in one process:

* **SOCs** -- a system is built (HSCAN insertion + transparency version
  synthesis) once, on its first request, then reused; the incremental
  plan cache (:mod:`repro.exec.cache`) attached to it keeps warming up
  with every plan/sweep that touches it;
* **worker pools** -- one :class:`~repro.exec.pool.ParallelExecutor`
  per system, created on the first sweep and kept alive (the pool
  reuse shows up on ``exec.pool.reuses``), closed only at drain;
* **results** -- ``plan`` / ``sweep`` / ``lint`` jobs are pure
  functions of ``(system, params)``, so their JSON results are
  memoized; a warm repeat request never re-plans at all
  (``serve.results.hits``).

Batched sweeps: the dispatcher hands :func:`run_batch` every queued
sweep job for one system at once.  The runner unions the design-space
points the uncached jobs need (full product order first, then extra
explicit selections in arrival order), chunks them across the resident
executor in **one** fan-out, and scatters each job its own result --
bit-identical to what a one-shot ``repro sweep`` computes, because it
is the same planner on the same chunking discipline.

All functions here run on the daemon's single worker thread; between
chunks they poll each batched job's cooperative cancellation flag and
deadline (see :func:`repro.serve.jobs.checkpoint`).
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import METRICS, profile_section
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    TIMEOUT,
    Job,
    JobCancelled,
    JobTimeout,
    checkpoint,
)
from repro.serve.protocol import canonical_params_key

_SOC_BUILDS = METRICS.counter("serve.socs.builds")
_SOC_REUSES = METRICS.counter("serve.socs.reuses")
_RESULT_HITS = METRICS.counter("serve.results.hits")
_RESULT_MISSES = METRICS.counter("serve.results.misses")
_BATCHES = METRICS.counter("serve.batch.batches")
_BATCH_COALESCED = METRICS.counter("serve.batch.coalesced")
_BATCH_POINTS = METRICS.counter("serve.batch.points")
_BATCH_DEDUPED = METRICS.counter("serve.batch.points_deduped")

#: job types whose results are pure functions of (system, params)
CACHEABLE_TYPES = frozenset(("plan", "sweep", "lint"))

#: one batch-runner outcome: (state, result, error message)
Outcome = Tuple[str, Any, Optional[str]]


class WarmState:
    """The daemon's resident cross-request state (worker-thread owned)."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        from repro.designs import system_builders
        from repro.exec import resolve_jobs

        self.jobs = resolve_jobs(jobs)
        self._builders = system_builders()
        self._socs: Dict[str, Any] = {}
        self._executors: Dict[str, Any] = {}
        self._results: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def known_systems(self) -> List[str]:
        return sorted(self._builders)

    def soc(self, system: str):
        """The warm SOC for ``system`` (built on first use)."""
        soc = self._socs.get(system)
        if soc is not None:
            _SOC_REUSES.inc()
            return soc
        with profile_section("serve.soc_build", system=system):
            soc = self._builders[system]()
        self._socs[system] = soc
        _SOC_BUILDS.inc()
        return soc

    def executor(self, system: str):
        """The resident per-system executor (kept alive across sweeps)."""
        executor = self._executors.get(system)
        if executor is None:
            from repro.exec import ParallelExecutor
            from repro.soc.optimizer import sweep_context

            executor = ParallelExecutor(
                self.jobs, context=sweep_context(self.soc(system))
            )
            self._executors[system] = executor
        return executor

    def close(self) -> None:
        """Release the worker pools (drain path)."""
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    # ------------------------------------------------------------------
    def cached_result(self, job: Job) -> Optional[Any]:
        if job.type not in CACHEABLE_TYPES:
            return None
        key = canonical_params_key(job.type, job.system, job.params)
        result = self._results.get(key)
        if result is not None:
            _RESULT_HITS.inc()
        return result

    def store_result(self, job: Job, result: Any) -> None:
        if job.type in CACHEABLE_TYPES:
            key = canonical_params_key(job.type, job.system, job.params)
            self._results[key] = result
            _RESULT_MISSES.inc()

    def result_cache_stats(self) -> Dict[str, int]:
        return {
            "size": len(self._results),
            "hits": int(_RESULT_HITS.value),
            "misses": int(_RESULT_MISSES.value),
        }


# ----------------------------------------------------------------------
# selections
# ----------------------------------------------------------------------
def selection_from_params(soc, select: Optional[Dict]) -> Optional[Dict[str, int]]:
    """A wire selection (1-based versions) as a planner selection.

    Raises ``ValueError`` on unknown cores or out-of-range versions --
    the batch runner reports that as a *failed job*.
    """
    if not select:
        return None
    selection = {core.name: 0 for core in soc.testable_cores()}
    for core_name, version in select.items():
        if core_name not in selection:
            raise ValueError(f"unknown core {core_name!r} in selection")
        if not isinstance(version, int) or isinstance(version, bool):
            raise ValueError(f"version for {core_name!r} must be an integer")
        count = soc.cores[core_name].version_count
        if not 1 <= version <= count:
            raise ValueError(f"{core_name} has versions 1..{count}, got {version}")
        selection[core_name] = version - 1
    return selection


# ----------------------------------------------------------------------
# the batch runner (worker thread)
# ----------------------------------------------------------------------
def run_batch(state: WarmState, batch: List[Job]) -> List[Tuple[Job, Outcome]]:
    """Execute one dispatched batch; returns per-job outcomes.

    A batch is either several coalesced sweep jobs on one system or a
    single job of any type.  Exceptions never escape: every job ends in
    exactly one outcome.
    """
    if len(batch) > 1 or batch[0].type == "sweep":
        return _run_sweep_batch(state, batch)
    job = batch[0]
    run_start = time.monotonic()
    try:
        checkpoint(job)
        cached = state.cached_result(job)
        if cached is not None:
            job.add_phase("run", run_start, time.monotonic(), cached=True)
            return [(job, (DONE, cached, None))]
        with profile_section("serve.job", type=job.type, system=job.system or "-"):
            result = _HANDLERS[job.type](state, job)
        run_end = time.monotonic()
        job.add_phase("run", run_start, run_end)
        state.store_result(job, result)
        job.add_phase("serialize", run_end, time.monotonic())
        return [(job, (DONE, result, None))]
    except JobCancelled:
        job.add_phase("run", run_start, time.monotonic(), outcome=CANCELLED)
        return [(job, (CANCELLED, None, "cancelled"))]
    except JobTimeout:
        job.add_phase("run", run_start, time.monotonic(), outcome=TIMEOUT)
        return [(job, (TIMEOUT, None, f"timed out after {job.timeout_s}s"))]
    except Exception as error:  # a failed job must not kill the daemon
        job.add_phase("run", run_start, time.monotonic(), outcome=FAILED)
        return [(job, (FAILED, None, f"{type(error).__name__}: {error}"))]


def _run_sweep_batch(state: WarmState, batch: List[Job]) -> List[Tuple[Job, Outcome]]:
    _BATCHES.inc()
    _BATCH_COALESCED.inc(len(batch) - 1)
    for job in batch[1:]:
        job.batched_with = len(batch) - 1
    batch[0].batched_with = len(batch) - 1

    outcomes: List[Tuple[Job, Outcome]] = []
    alive: List[Job] = []
    cache_start = time.monotonic()
    for job in batch:
        cached = state.cached_result(job)
        if cached is not None:
            job.add_phase("run", cache_start, time.monotonic(), cached=True)
            outcomes.append((job, (DONE, cached, None)))
        else:
            alive.append(job)
    if not alive:
        return outcomes

    system = alive[0].system
    try:
        soc = state.soc(system)
        cores = soc.testable_cores()
        core_names = [core.name for core in cores]
        combos, per_job_combos, failures = _needed_combos(soc, core_names, alive)
        for job, message in failures:
            outcomes.append((job, (FAILED, None, message)))
            alive.remove(job)
        if not alive:
            return outcomes
        run_start = time.monotonic()
        with profile_section("serve.batch", system=system, jobs=len(alive)):
            plans, dead = _plan_combos(state, soc, combos, alive)
        run_end = time.monotonic()
        for job, outcome in dead:
            job.add_phase("run", run_start, run_end, outcome=outcome[0])
            outcomes.append((job, outcome))
            alive.remove(job)
        for job in alive:
            job.add_phase("run", run_start, run_end, points=len(combos))
            serialize_start = time.monotonic()
            result = _sweep_result(
                soc, core_names, combos, plans, per_job_combos.get(job.id)
            )
            state.store_result(job, result)
            job.add_phase("serialize", serialize_start, time.monotonic())
            outcomes.append((job, (DONE, result, None)))
    except Exception as error:
        for job in alive:
            outcomes.append((job, (FAILED, None, f"{type(error).__name__}: {error}")))
    return outcomes


def _needed_combos(soc, core_names: List[str], jobs: List[Job]):
    """The union of version combos the batch must plan.

    Full-sweep jobs need the whole product space (kept in product order
    so result indexing matches :func:`repro.soc.optimizer.design_space`
    exactly); explicit ``selections`` add their combos in job order.
    Returns ``(combos, per_job_combos, failures)`` where
    ``per_job_combos`` maps a *partial* job's id to its combo list.
    """
    full = list(
        itertools.product(*[range(soc.cores[name].version_count) for name in core_names])
    )
    requested = 0
    combos: List[Tuple[int, ...]] = []
    seen = set()
    if any(not job.params.get("selections") for job in jobs):
        combos = list(full)
        seen = set(full)
        requested += len(full)
    per_job_combos: Dict[str, List[Tuple[int, ...]]] = {}
    failures: List[Tuple[Job, str]] = []
    for job in jobs:
        selections = job.params.get("selections")
        if not selections:
            continue
        job_combos: List[Tuple[int, ...]] = []
        try:
            for select in selections:
                selection = selection_from_params(soc, select) or {}
                job_combos.append(tuple(selection[name] for name in core_names))
        except (ValueError, TypeError) as error:
            failures.append((job, str(error)))
            continue
        per_job_combos[job.id] = job_combos
        requested += len(job_combos)
        for combo in job_combos:
            if combo not in seen:
                seen.add(combo)
                combos.append(combo)
    _BATCH_POINTS.inc(len(combos))
    _BATCH_DEDUPED.inc(requested - len(combos))
    return combos, per_job_combos, failures


def _plan_combos(state: WarmState, soc, combos, jobs: List[Job]):
    """Plan every combo through the resident executor, checkpointing
    each batched job between chunks (serial executors only -- a
    parallel fan-out is a single non-preemptible map)."""
    from repro.soc.optimizer import _chunked, _sweep_chunk

    executor = state.executor(soc.name)
    chunks = _chunked(combos, executor.jobs * 2)
    dead: List[Tuple[Job, Outcome]] = []

    def poll() -> List[Job]:
        still = []
        for job in jobs:
            if any(entry[0] is job for entry in dead):
                continue
            try:
                checkpoint(job)
                still.append(job)
            except JobCancelled:
                dead.append((job, (CANCELLED, None, "cancelled")))
            except JobTimeout:
                dead.append((job, (TIMEOUT, None, f"timed out after {job.timeout_s}s")))
        return still

    plans: List = []
    if executor.parallel:
        poll()
        if len(dead) < len(jobs):
            for chunk_plans in executor.map(_sweep_chunk, chunks, chunksize=1):
                plans.extend(chunk_plans)
    else:
        for chunk in chunks:
            if not poll():
                break
            plans.extend(executor.map(_sweep_chunk, [chunk], chunksize=1)[0])
    plan_by_combo: Dict[Tuple[int, ...], Any] = {}
    for combo, plan in zip(combos, plans):
        plan.soc = soc  # workers strip the SOC before pickling results
        plan_by_combo[combo] = plan
    return plan_by_combo, dead


def _sweep_result(soc, core_names, combos, plans, job_combos) -> Dict[str, Any]:
    """One job's sweep payload from the batch's shared plans.

    Full sweeps reproduce ``design_space`` exactly: points in product
    order, sorted by ``(chip_cells, tat)``, indexed from 1.  Partial
    sweeps return points in request order.
    """
    if job_combos is None:
        points = [_point_dict(core_names, combo, plans[combo]) for combo in combos]
        points.sort(key=lambda p: (p["chip_cells"], p["tat"]))
        for index, point in enumerate(points):
            point["index"] = index + 1
        return {"system": soc.name, "partial": False, "points": points}
    points = []
    for index, combo in enumerate(job_combos):
        point = _point_dict(core_names, combo, plans[combo])
        point["index"] = index + 1
        points.append(point)
    return {"system": soc.name, "partial": True, "points": points}


def _point_dict(core_names, combo, plan) -> Dict[str, Any]:
    selection = dict(zip(core_names, combo))
    label = ", ".join(f"{core}=V{v + 1}" for core, v in sorted(selection.items()))
    return {
        "index": 0,
        "selection": {core: v + 1 for core, v in selection.items()},
        "tat": plan.total_tat,
        "chip_cells": plan.chip_dft_cells,
        "label": label,
    }


# ----------------------------------------------------------------------
# single-job handlers
# ----------------------------------------------------------------------
def _run_plan(state: WarmState, job: Job) -> Dict[str, Any]:
    from repro.flow.export import plan_to_dict
    from repro.soc import plan_soc_test

    soc = state.soc(job.system)
    selection = selection_from_params(soc, job.params.get("select"))
    plan = plan_soc_test(soc, selection)
    return plan_to_dict(plan)


def _run_lint(state: WarmState, job: Job) -> Dict[str, Any]:
    from repro.lint import Severity, lint_soc

    fail_on = Severity.parse(str(job.params.get("fail_on", "error")))
    report = lint_soc(state.soc(job.system))
    return {
        "report": json.loads(report.to_json()),
        "exit": 1 if report.has_at_least(fail_on) else 0,
    }


def _run_profile(state: WarmState, job: Job) -> Dict[str, Any]:
    """A profile measurement (never cached; resets non-serve counters).

    ``profile_system`` zeroes the shared registry so the breakdown
    describes exactly one pipeline run; the daemon's own ``serve.*``
    tallies (tenant counters included) are snapshotted and restored so
    serving accounting survives the reset.
    """
    from repro.flow.profile import QUICK_MAX_FAULTS, profile_system

    quick = bool(job.params.get("quick", True))
    seed = int(job.params.get("seed", 0))
    serve_counters = {
        name: value
        for name, value in METRICS.counters().items()
        if name.startswith("serve.")
    }
    report = profile_system(
        job.system,
        seed=seed,
        max_faults=QUICK_MAX_FAULTS if quick else None,
        jobs=state.jobs,
    )
    for name, value in serve_counters.items():
        METRICS.counter(name).inc(value)
    return {
        "system": job.system,
        "seed": seed,
        "quick": quick,
        "total_seconds": report.total_seconds,
        "summary": dict(report.summary),
    }


def _run_explain(state: WarmState, job: Job) -> Dict[str, Any]:
    """A search-effort attribution run (never cached -- a measurement).

    Same counter discipline as :func:`_run_profile`: ``explain_system``
    resets the shared registry, so the daemon's ``serve.*`` tallies are
    snapshotted and restored around it.  The result carries the full
    byte-stable ``repro-attrib`` artifact.
    """
    from repro.flow.explain import explain_system
    from repro.flow.profile import QUICK_MAX_FAULTS

    quick = bool(job.params.get("quick", True))
    seed = int(job.params.get("seed", 0))
    top_k = int(job.params.get("top_k", 10))
    serve_counters = {
        name: value
        for name, value in METRICS.counters().items()
        if name.startswith("serve.")
    }
    report = explain_system(
        job.system,
        seed=seed,
        max_faults=QUICK_MAX_FAULTS if quick else None,
        jobs=state.jobs,
        top_k=top_k,
    )
    for name, value in serve_counters.items():
        METRICS.counter(name).inc(value)
    return {
        "system": job.system,
        "seed": seed,
        "quick": quick,
        "total_seconds": report.total_seconds,
        "artifact": report.artifact,
    }


def _run_sleep(_state: WarmState, job: Job) -> Dict[str, Any]:
    """Diagnostic job: hold the runner, checkpointing every step."""
    seconds = float(job.params.get("seconds", 0.1))
    steps = max(1, int(job.params.get("steps", 10)))
    for _ in range(steps):
        checkpoint(job)
        time.sleep(max(0.0, seconds) / steps)
    checkpoint(job)
    return {"slept_s": seconds, "steps": steps}


_HANDLERS = {
    "plan": _run_plan,
    "lint": _run_lint,
    "profile": _run_profile,
    "explain": _run_explain,
    "sleep": _run_sleep,
}
