"""The ``repro-serve`` wire protocol: versioned line-delimited JSON.

One request per line, one response per line, UTF-8 JSON, over TCP or a
unix-domain socket.  Every envelope is self-describing and versioned,
like the ``repro-ledger`` schema::

    -> {"schema": "repro-serve", "schema_version": 1,
        "op": "submit",
        "job": {"type": "sweep", "system": "System1",
                "params": {}, "priority": 0,
                "timeout_s": null, "tenant": "default"}}
    <- {"schema": "repro-serve", "schema_version": 1, "ok": true,
        "op": "submit", "id": "j0001", "state": "queued"}

Error responses carry a machine-readable code::

    <- {"schema": "repro-serve", "schema_version": 1, "ok": false,
        "error": {"code": "unknown-system", "message": "..."}}

Operations (``op``):

==========  ==========================================================
``ping``    liveness + server identity/uptime
``submit``  enqueue a job (see :data:`JOB_TYPES`); returns its id
``status``  one job's descriptor (no result payload)
``result``  descriptor + result payload of a finished job
``wait``    like ``result`` but blocks server-side until the job is
            terminal (optional ``timeout_s`` returns the descriptor
            early, still running)
``cancel``  cancel a queued job, or request cooperative cancellation
            of the running one
``jobs``    recent job descriptors, newest last
``stats``   queue depth, tenants, warm-state and batching counters
``shutdown``  drain and exit (same path as SIGTERM)
==========  ==========================================================

Error codes: ``bad-request`` (malformed envelope / JSON),
``unsupported-version`` (``schema_version`` newer than the server),
``unknown-op``, ``unknown-job``, ``unknown-system``, ``not-done``
(``result`` before the job is terminal), ``queue-full``, ``draining``
(submissions after drain started), ``oversized`` (request line above
:data:`MAX_LINE_BYTES`).

A job is terminal in exactly one of ``done`` / ``failed`` /
``cancelled`` / ``timeout``; job-level failures (a plan that raises)
are reported in the job descriptor, never as protocol errors.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional, Tuple

from repro.errors import ProtocolError

PROTOCOL = "repro-serve"
PROTOCOL_VERSION = 1

#: job types the daemon executes.  ``plan``/``sweep``/``lint`` are pure
#: functions of (system, params) and served from the result cache when
#: warm; ``profile`` and ``explain`` re-measure every time (``explain``
#: returns the run's ``repro-attrib`` search-effort artifact); ``sleep``
#: is a diagnostic job (load generation, cancellation/timeout tests)
#: that holds the runner for ``params.seconds`` with cooperative
#: checkpoints.
JOB_TYPES = ("plan", "sweep", "profile", "lint", "explain", "sleep")

#: ops a client may send (``metrics`` was added within protocol
#: version 1 -- new ops are backward-compatible: an older server
#: answers ``unknown-op``, which clients treat as "not supported")
OPS = (
    "ping",
    "submit",
    "status",
    "result",
    "wait",
    "cancel",
    "jobs",
    "stats",
    "metrics",
    "shutdown",
)

#: requests above this size are rejected with code ``oversized``
MAX_LINE_BYTES = 1 << 20

_TENANT_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

#: ops that do not name a system (everything else requires one)
_SYSTEMLESS_TYPES = ("sleep",)


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def request_envelope(op: str, **fields) -> Dict[str, Any]:
    """A client request envelope (validated server-side on arrival)."""
    envelope: Dict[str, Any] = {
        "schema": PROTOCOL,
        "schema_version": PROTOCOL_VERSION,
        "op": op,
    }
    envelope.update(fields)
    return envelope


def response_ok(op: str, **fields) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "schema": PROTOCOL,
        "schema_version": PROTOCOL_VERSION,
        "ok": True,
        "op": op,
    }
    envelope.update(fields)
    return envelope


def response_error(code: str, message: str) -> Dict[str, Any]:
    return {
        "schema": PROTOCOL,
        "schema_version": PROTOCOL_VERSION,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def encode(envelope: Dict[str, Any]) -> bytes:
    """One envelope as one wire line (sorted keys, trailing newline)."""
    return (json.dumps(envelope, sort_keys=True) + "\n").encode("utf-8")


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse and validate one request line into its envelope.

    Raises :class:`ProtocolError` with the wire error code on any
    violation; the daemon converts that straight into an error response.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line is {len(line)} bytes (limit {MAX_LINE_BYTES})",
            code="oversized",
        )
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"request is not JSON: {error}")
    if not isinstance(envelope, dict):
        raise ProtocolError("request must be a JSON object")
    if envelope.get("schema") != PROTOCOL:
        raise ProtocolError(
            f"schema is {envelope.get('schema')!r}, expected {PROTOCOL!r}"
        )
    version = envelope.get("schema_version")
    if not isinstance(version, int):
        raise ProtocolError("schema_version must be an integer")
    if version > PROTOCOL_VERSION:
        raise ProtocolError(
            f"schema_version {version} is newer than {PROTOCOL_VERSION}",
            code="unsupported-version",
        )
    op = envelope.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r}", code="unknown-op")
    return envelope


# ----------------------------------------------------------------------
# job specs
# ----------------------------------------------------------------------
def validate_job_spec(spec: Any) -> Dict[str, Any]:
    """Normalize a ``submit`` job spec (type/system/params/priority/...).

    Returns the canonical spec dict the daemon enqueues; raises
    :class:`ProtocolError` on shape problems.  Semantic problems that
    need warm state (an unknown core in a selection) surface later as a
    *failed job*, not a protocol error.
    """
    if not isinstance(spec, dict):
        raise ProtocolError("job spec must be an object")
    job_type = spec.get("type")
    if job_type not in JOB_TYPES:
        raise ProtocolError(f"job type {job_type!r} not in {JOB_TYPES}")
    system = spec.get("system")
    if job_type in _SYSTEMLESS_TYPES:
        system = None
    elif not isinstance(system, str) or not system:
        raise ProtocolError(f"job type {job_type!r} requires a 'system' string")
    params = spec.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError("job params must be an object")
    priority = spec.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("priority must be an integer (higher runs first)")
    timeout_s = spec.get("timeout_s")
    if timeout_s is not None:
        if not isinstance(timeout_s, (int, float)) or isinstance(timeout_s, bool):
            raise ProtocolError("timeout_s must be a number or null")
        if timeout_s <= 0:
            raise ProtocolError("timeout_s must be positive")
    tenant = spec.get("tenant", "default")
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ProtocolError(
            "tenant must match [A-Za-z0-9_.-]{1,64}", code="bad-request"
        )
    return {
        "type": job_type,
        "system": system,
        "params": dict(params),
        "priority": priority,
        "timeout_s": None if timeout_s is None else float(timeout_s),
        "tenant": tenant,
    }


def canonical_params_key(job_type: str, system: Optional[str], params: Dict) -> str:
    """The result-cache key: job identity as canonical JSON.

    Two requests with equal keys are interchangeable -- the daemon may
    serve the second from the first's memoized result (``plan`` /
    ``sweep`` / ``lint`` only; ``profile`` is a measurement and is
    never cached).
    """
    return json.dumps(
        {"type": job_type, "system": system, "params": params}, sort_keys=True
    )


# ----------------------------------------------------------------------
# addresses
# ----------------------------------------------------------------------
def parse_address(spec: str) -> Tuple[str, Any]:
    """Parse an address spec into ``("tcp", (host, port))`` or ``("unix", path)``.

    Accepted forms: ``HOST:PORT`` (TCP; port 0 binds an ephemeral
    port), ``unix:PATH``, or a bare path containing ``/`` (unix-domain
    socket).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ProtocolError(f"empty serve address {spec!r}")
    spec = spec.strip()
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ProtocolError("unix: address needs a socket path")
        return ("unix", path)
    if "/" in spec:
        return ("unix", spec)
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ProtocolError(
            f"serve address {spec!r} is not HOST:PORT or unix:PATH"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError(f"serve address port {port_text!r} is not an integer")
    if not 0 <= port <= 65535:
        raise ProtocolError(f"serve address port {port} out of range")
    return ("tcp", (host, port))


def format_address(kind: str, value: Any) -> str:
    """The canonical printable form clients can connect to."""
    if kind == "unix":
        return f"unix:{value}"
    host, port = value
    return f"{host}:{port}"
