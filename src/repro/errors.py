"""Exception hierarchy for the SOCET reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the library's failures with a single ``except`` clause
while still distinguishing structural problems (bad netlists) from
algorithmic ones (no transparency path, infeasible constraints).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """A structural problem in an RTL or gate-level netlist.

    Raised for duplicate names, dangling connections, width mismatches,
    combinational cycles, and similar malformed-design conditions.
    """


class ElaborationError(ReproError):
    """RTL could not be elaborated to gates (unsupported op, bad widths)."""


class SimulationError(ReproError):
    """The logic or fault simulator was driven with inconsistent inputs."""


class AtpgError(ReproError):
    """Test generation failed in a way that is not a normal abort."""


class DftError(ReproError):
    """DFT insertion (scan, boundary scan, HSCAN) failed."""


class TransparencyError(ReproError):
    """No transparency path could be constructed for a core port."""


class SocError(ReproError):
    """Chip-level analysis failed (disconnected CCG, bad core wiring)."""


class InfeasibleConstraintError(SocError):
    """The optimizer cannot satisfy the user's area/TAT constraint."""


class ScheduleError(SocError):
    """A concurrent test schedule violates a resource or power constraint."""


class BistError(ReproError):
    """Memory BIST configuration or execution problem."""


class UsageError(ReproError):
    """Bad command-line input (unknown system, malformed selection).

    The CLI's ``main`` converts these to a clean ``SystemExit`` with a
    ``repro:``-prefixed message, so library code and subcommands raise
    :class:`UsageError` instead of calling ``SystemExit`` directly.
    """


class LintError(ReproError):
    """A strict flow gate found design-rule errors (see :mod:`repro.lint`).

    Carries the offending :class:`~repro.lint.diagnostics.Diagnostic`
    list so callers can render or serialize the findings.
    """

    def __init__(self, message: str, diagnostics=None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class ServeError(ReproError):
    """A planning-daemon failure (see :mod:`repro.serve`).

    Raised client-side when the daemon answers a request with an error
    envelope; carries the wire-protocol error code in :attr:`code`.
    """

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class ProtocolError(ServeError):
    """A malformed ``repro-serve`` request or response envelope."""

    def __init__(self, message: str, code: str = "bad-request") -> None:
        super().__init__(message, code=code)


class ObservabilityError(ReproError):
    """A problem in the tracing/metrics/bench-format layer."""


class BenchSchemaError(ObservabilityError):
    """A BENCH_*.json or trace artifact violates the expected schema."""


class LedgerSchemaError(ObservabilityError):
    """A run-ledger record or JSONL file violates the ledger schema."""


class AttribSchemaError(ObservabilityError):
    """A search-effort attribution artifact violates the attrib schema."""


class RegressionError(ObservabilityError):
    """The regression observatory could not compare runs (bad inputs)."""
