"""Flatten an SOC into a single gate-level netlist.

Each core's circuit (original or with HSCAN applied) is elaborated with
a ``<core>::`` name prefix; interconnect nets replace the core-input
INPUT gates with buffers from the driving bits.  The result simulates
the whole chip -- what the "Orig." and "HSCAN" columns of Table 3 are
measured on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dft.hscan import apply_hscan
from repro.elaborate import elaborate
from repro.errors import SocError
from repro.gates.cells import GateKind
from repro.gates.netlist import GateNetlist
from repro.soc.system import Soc


def flatten_soc(
    soc: Soc,
    with_hscan: bool = False,
    include_memories: bool = True,
    scan_access: str = "enable",
) -> GateNetlist:
    """Elaborate and stitch the whole SOC into one netlist.

    ``with_hscan`` applies each (non-memory) core's HSCAN plan first.
    ``scan_access`` controls what happens to the cores' scan pins in the
    flattened chip -- the crux of the paper's "HSCAN without chip-level
    DFT" row:

    * ``"none"``: scan enables and scan-in data are tied low (no chip
      routing exists to reach them);
    * ``"enable"`` (default): the scan enables surface as chip pins but
      serial scan-in data is tied low -- individual cores are testable,
      the chip is not;
    * ``"full"``: every scan pin surfaces as a chip pin.
    """
    if scan_access not in ("none", "enable", "full"):
        raise SocError(f"unknown scan_access mode {scan_access!r}")
    flat = GateNetlist(f"{soc.name}{'_hscan' if with_hscan else ''}_flat")

    # 1. chip pins
    for pin, width in soc.chip_inputs.items():
        for i in range(width):
            flat.add_gate(f"{pin}.{i}", GateKind.INPUT)

    # 2. per-core elaboration with prefixes
    core_input_bits: Dict[str, List[str]] = {}
    for core in soc.cores.values():
        if core.is_memory and not include_memories:
            continue
        circuit = core.circuit
        if with_hscan and not core.is_memory and core.hscan is not None:
            circuit, _ = apply_hscan(core.circuit, core.hscan)
        elaborated = elaborate(circuit)
        prefix = f"{core.name}::"
        for gate in elaborated.netlist.gates():
            # core-level port markers become plain buffers: inside the
            # chip they are ordinary nets, not observation points
            kind = GateKind.BUF if gate.kind is GateKind.OUTPUT else gate.kind
            flat.add_gate(prefix + gate.name, kind, [prefix + f for f in gate.fanins])
        for port in circuit.inputs:
            core_input_bits[f"{core.name}.{port.name}"] = [
                prefix + bit for bit in elaborated.input_bits(port.name)
            ]
        # scan pins: tie off what chip-level routing cannot reach
        if with_hscan and not core.is_memory:
            tied = []
            if scan_access in ("none", "enable"):
                tied.append("scan_in")
            if scan_access == "none":
                tied.append("scan_en")
            for pin in tied:
                if pin in circuit:
                    for bit in elaborated.input_bits(pin):
                        flat.replace_gate(prefix + bit, GateKind.CONST0, [])

    # 3. interconnect: replace driven core-input INPUT gates with buffers
    for net in soc.nets:
        source_bits = _source_bits(soc, flat, net)
        if source_bits is None:
            continue  # driver's core was skipped
        if net.dest.core is None:
            for i, bit in enumerate(source_bits):
                name = f"PO_{net.dest.port}.{net.dest.lo + i}"
                if name not in flat:
                    flat.add_gate(name, GateKind.OUTPUT, [bit])
            continue
        key = f"{net.dest.core}.{net.dest.port}"
        dest_bits = core_input_bits.get(key)
        if dest_bits is None:
            continue  # memory core skipped
        for i, bit in enumerate(source_bits):
            target = dest_bits[net.dest.lo + i]
            flat.replace_gate(target, GateKind.BUF, [bit])

    return flat.validate()


def _source_bits(soc: Soc, flat: GateNetlist, net) -> Optional[List[str]]:
    if net.source.core is None:
        return [f"{net.source.port}.{net.source.lo + i}" for i in range(net.source.width)]
    prefix = f"{net.source.core}::"
    bits = []
    for i in range(net.source.width):
        name = f"{prefix}{net.source.port}.{net.source.lo + i}"
        if name not in flat:
            return None
        marker = flat.gate(name)
        if marker.kind is not GateKind.BUF:
            raise SocError(f"expected buffered port marker at {name!r}")
        bits.append(marker.fanins[0])
    return bits
