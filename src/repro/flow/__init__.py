"""End-to-end flows tying the library together.

* :mod:`repro.flow.corelevel` -- the core provider's one-time job:
  HSCAN insertion, transparency versions, ATPG, area accounting.
* :mod:`repro.flow.system_netlist` -- flatten an SOC into one gate
  netlist (original, HSCAN'd, or full-scanned cores).
* :mod:`repro.flow.chiplevel` -- the SOC integrator's job: run the
  SOCET planner/optimizer and produce the paper's report rows.
* :mod:`repro.flow.evaluate` -- measure fault coverage / test
  efficiency for the original, HSCAN-only, FSCAN-BSCAN, and SOCET
  configurations (Table 3).
"""

from repro.flow.corelevel import CorePreparation, prepare_core, prepare_cores
from repro.flow.system_netlist import flatten_soc
from repro.flow.chiplevel import SocetRun, run_socet, schedule_points
from repro.flow.evaluate import SystemEvaluation, evaluate_system
from repro.flow.profile import ProfileReport, profile_system
from repro.flow.interconnect import (
    InterconnectReport,
    bus_interconnect_report,
    interconnect_report,
)
from repro.flow.report import (
    AreaRow,
    ScheduleRow,
    TestabilityRow,
    render_area_table,
    render_metrics_table,
    render_schedule_table,
    render_session_table,
    render_stage_table,
    render_testability_table,
)

__all__ = [
    "CorePreparation",
    "prepare_core",
    "prepare_cores",
    "flatten_soc",
    "SocetRun",
    "run_socet",
    "schedule_points",
    "SystemEvaluation",
    "evaluate_system",
    "ProfileReport",
    "profile_system",
    "InterconnectReport",
    "interconnect_report",
    "bus_interconnect_report",
    "AreaRow",
    "ScheduleRow",
    "TestabilityRow",
    "render_area_table",
    "render_metrics_table",
    "render_schedule_table",
    "render_session_table",
    "render_stage_table",
    "render_testability_table",
]
