"""The ``repro explain`` driver: attribute search effort, not just time.

Where ``repro profile`` answers "where did the seconds go", explain
answers "where did the *search* go": which faults burned the PODEM
backtrack budget, which logic levels the fault simulator swept over and
over, and which optimizer moves were wasted.  It runs the same pipeline
stages as the profiler -- SOC construction, per-core ATPG, chip-level
planning, the design-space sweep, and TAT minimization -- with the
:mod:`repro.obs.attrib` collector forced on, then folds the three
attribution planes into one byte-stable ``repro-attrib`` artifact.

The metrics registry and the attribution collector are reset together
at run start, so the artifact's reconciliation section can hold the
attributed totals to the ``atpg.*``/``faultsim.*`` counters *exactly*;
a mismatch means an instrumentation bug, not noise.  Schedulers are
skipped: they search nothing, and leaving them out keeps the artifact
invariant under ``--jobs``.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import UsageError
from repro.obs import METRICS, profile_section
from repro.obs.attrib import (
    ATTRIB,
    artifact_json,
    build_artifact,
    resolve_attrib_mode,
)

logger = logging.getLogger("repro.flow.explain")

_RUNS = METRICS.counter("explain.runs")


@dataclass
class ExplainReport:
    """One attributed pipeline run: the artifact plus run bookkeeping."""

    system: str
    seed: int
    total_seconds: float
    #: the schema-valid ``repro-attrib`` artifact (see :mod:`repro.obs.attrib`)
    artifact: Dict = field(default_factory=dict)
    #: full registry counter snapshot after the run (feeds the ledger)
    all_counters: Dict[str, int] = field(default_factory=dict)

    def artifact_json(self) -> str:
        """Canonical byte-stable serialization of the artifact."""
        return artifact_json(self.artifact)

    def ledger_record(self, bench: Optional[str] = None, results=None) -> Dict:
        """This run as a ``repro-ledger`` record carrying the artifact."""
        from repro.obs.ledger import make_record

        atpg = self.artifact["planes"]["atpg"]
        optimizer = self.artifact["planes"]["optimizer"]["summary"]
        summary = results if results is not None else {
            "atpg effort": atpg["totals"]["effort"],
            "faults attributed": atpg["faults"],
            "optimizer candidates": optimizer["candidates"],
            "optimizer wasted": optimizer["rejected"],
        }
        return make_record(
            bench=bench or f"explain-{self.system}",
            samples=[self.total_seconds],
            counters=self.all_counters,
            kind="explain",
            results=summary,
            attrib=self.artifact,
        )


def explain_system(
    system: str,
    seed: int = 0,
    max_faults: Optional[int] = None,
    jobs: Optional[int] = None,
    top_k: int = 10,
    mode: Optional[str] = None,
) -> ExplainReport:
    """Run the search stages on ``system`` and attribute their effort.

    ``mode`` overrides ``REPRO_ATTRIB`` (``on``/``deep``); an unset or
    ``off`` resolution is promoted to ``on`` -- explain without
    collection would be an empty report.  ``max_faults`` is the same
    quick-mode cap as :func:`repro.flow.profile.profile_system`;
    ``jobs`` fans per-core ATPG and the design-space sweep out, and the
    artifact is bit-identical for any job count because worker deltas
    merge in submission order.  The previous attribution mode is
    restored on exit, so a surrounding always-on session keeps its
    setting.
    """
    from repro.designs import system_builders
    from repro.exec import ParallelExecutor
    from repro.flow.profile import _profile_atpg_task
    from repro.soc.optimizer import SocetOptimizer, design_space
    from repro.soc.plan import plan_soc_test

    builders = system_builders()
    if system not in builders:
        raise UsageError(f"unknown system {system!r}; choose from {sorted(builders)}")

    resolved = resolve_attrib_mode(mode)
    if resolved == "off":
        resolved = "on"
    previous = ATTRIB.mode
    METRICS.reset()
    ATTRIB.reset()
    ATTRIB.configure(resolved)
    try:
        with profile_section("explain.total", system=system):
            _RUNS.inc()
            logger.info("building %s (HSCAN + transparency versions)", system)
            soc = builders[system]()

            # plane 1+2: per-core ATPG regeneration drives PODEM and the
            # fault simulator; attribution deltas ship back with metrics
            circuits = [core.circuit for core in soc.testable_cores()]
            with ParallelExecutor(jobs, context=(seed, max_faults)) as executor:
                executor.map(_profile_atpg_task, circuits)

            # plane 3: the design-space sweep plus iterative improvement
            plan_soc_test(soc)
            points = design_space(soc, jobs=jobs)
            budget = max(point.chip_cells for point in points)
            SocetOptimizer(soc).minimize_tat(budget)

        counters = dict(METRICS.counters())
        artifact = build_artifact(
            ATTRIB,
            counters,
            system=system,
            seed=seed,
            quick=max_faults is not None,
            top_k=top_k,
        )
    finally:
        ATTRIB.configure(previous)

    time_hist = METRICS.histogram("explain.total.time")
    return ExplainReport(
        system=system,
        seed=seed,
        total_seconds=time_hist.sum,
        artifact=artifact,
        all_counters=counters,
    )
