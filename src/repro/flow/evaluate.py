"""System testability evaluation (the measurements behind Table 3).

Four configurations are graded:

* **Orig.** -- the flattened SOC with no DFT, exercised by random
  functional sequences (statistically sampled sequential fault grading);
* **HSCAN** -- cores have HSCAN but no chip-level DFT exists, so the
  chip is still graded through its functional pins;
* **FSCAN-BSCAN** -- full scan + boundary scan: every core's faults are
  graded by its own combinational ATPG set (boundary scan delivers the
  vectors unchanged), with the baseline's serial-chain test time;
* **SOCET** -- the same precomputed core test sets delivered through
  transparency (lossless by construction), with the planner's test time.

Fault coverage for the scan-based configurations is the aggregate of
per-core gate-level fault simulation of the actual ATPG patterns -- not
an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.atpg.combinational import CombinationalAtpg
from repro.baselines.fscan_bscan import fscan_bscan_report
from repro.elaborate import elaborate
from repro.faults.collapse import collapse_faults
from repro.faults.coverage import CoverageReport
from repro.faults.model import full_fault_universe
from repro.faults.simulator import sequential_fault_grade
from repro.flow.report import TestabilityRow
from repro.flow.system_netlist import flatten_soc
from repro.obs import profile_section
from repro.soc.plan import plan_soc_test
from repro.soc.system import Soc
import random


@dataclass
class SystemEvaluation:
    """Measured Table 3 rows for one SOC."""

    soc: Soc
    rows: List[TestabilityRow] = field(default_factory=list)
    per_core_reports: Dict[str, CoverageReport] = field(default_factory=dict)

    def row(self, configuration: str) -> TestabilityRow:
        for row in self.rows:
            if row.configuration == configuration:
                return row
        raise KeyError(configuration)


def _sequential_row(
    soc: Soc,
    system: str,
    configuration: str,
    with_hscan: bool,
    sequences: int,
    length: int,
    sample: int,
    seed: int,
    scan_access: str = "none",
) -> TestabilityRow:
    with profile_section(
        "faultsim.flatten", soc=soc.name, configuration=configuration
    ):
        netlist = flatten_soc(soc, with_hscan=with_hscan, scan_access=scan_access)
    faults = collapse_faults(netlist, full_fault_universe(netlist))
    rng = random.Random(seed)
    input_names = [g.name for g in netlist.inputs]
    stimuli = [
        [{name: rng.getrandbits(1) for name in input_names} for _ in range(length)]
        for _ in range(sequences)
    ]
    graded = sequential_fault_grade(netlist, stimuli, faults, sample=sample, seed=seed)
    return TestabilityRow(
        system=system,
        configuration=configuration,
        fault_coverage=graded.coverage,
        test_efficiency=graded.coverage,
        tat=None,
    )


def _evaluation_task(context, spec):
    """One unit of Table 3 work (runs inside a worker).

    ``spec`` is either ``("seq", configuration, with_hscan)`` -- a
    whole-chip sequential grading row -- or ``("atpg", core_name)`` --
    one core's combinational ATPG + fault grading.
    """
    soc, seed, sequences, length, sample = context
    if spec[0] == "seq":
        _, configuration, with_hscan = spec
        return _sequential_row(
            soc, soc.name, configuration, with_hscan, sequences, length, sample, seed,
            scan_access="none",
        )
    core = soc.cores[spec[1]]
    outcome = CombinationalAtpg(elaborate(core.circuit).netlist, seed=seed).run()
    return core.name, outcome.report


def _scan_coverage(
    soc: Soc, seed: int, jobs: Optional[int] = None
) -> Dict[str, CoverageReport]:
    """Per-core ATPG coverage (shared by FSCAN-BSCAN and SOCET rows)."""
    from repro.exec import ParallelExecutor

    with profile_section("atpg.scan_coverage", soc=soc.name):
        tasks = [("atpg", core.name) for core in soc.testable_cores()]
        with ParallelExecutor(jobs, context=(soc, seed, 0, 0, 0)) as executor:
            return dict(executor.map(_evaluation_task, tasks))


def evaluate_system(
    soc: Soc,
    seed: int = 0,
    sequences: int = 24,
    sequence_length: int = 16,
    fault_sample: int = 160,
    jobs: Optional[int] = None,
) -> SystemEvaluation:
    """Measure every Table 3 row for ``soc``.

    ``fault_sample`` bounds the sequential grading cost (statistical
    fault sampling); the scan-based rows grade the full collapsed
    universe of each core.  ``jobs`` fans the rows out over worker
    processes -- the two sequential gradings and every core's ATPG are
    independent -- with results identical to the serial run.
    """
    from repro.exec import ParallelExecutor

    evaluation = SystemEvaluation(soc=soc)
    system = soc.name

    # HSCAN row: cores carry their scan logic but the chip gives no
    # access to it (scan pins unrouted) -- the paper's point that
    # core-level testability alone leaves the chip poorly testable
    tasks = [("seq", "Orig.", False), ("seq", "HSCAN", True)]
    tasks += [("atpg", core.name) for core in soc.testable_cores()]
    context = (soc, seed, sequences, sequence_length, fault_sample)
    with ParallelExecutor(jobs, context=context) as executor:
        results = executor.map(_evaluation_task, tasks)

    evaluation.rows.append(results[0])
    evaluation.rows.append(results[1])
    per_core = dict(results[2:])
    evaluation.per_core_reports = per_core
    merged = CoverageReport(total=0, detected=0)
    for report in per_core.values():
        merged = merged.merged_with(report)

    baseline = fscan_bscan_report(soc)
    evaluation.rows.append(
        TestabilityRow(
            system=system,
            configuration="FSCAN-BSCAN",
            fault_coverage=merged.fault_coverage,
            test_efficiency=merged.test_efficiency,
            tat=baseline.total_tat,
        )
    )

    from repro.soc.optimizer import design_space

    points = design_space(soc, jobs=jobs)
    min_area = points[0]
    min_tat = min(points, key=lambda p: (p.tat, p.chip_cells))
    for label, point in (("SOCET Min. Area", min_area), ("SOCET Min. TApp.", min_tat)):
        evaluation.rows.append(
            TestabilityRow(
                system=system,
                configuration=label,
                fault_coverage=merged.fault_coverage,
                test_efficiency=merged.test_efficiency,
                tat=point.tat,
            )
        )
    return evaluation
