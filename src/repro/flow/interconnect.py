"""Interconnect testing: which core-to-core wires the test plan exercises.

The paper's introduction criticizes the test-bus architecture because it
"is unable to test the interconnect that exists between cores" -- the
bus bypasses the functional wiring.  SOCET's transparency transfers, by
contrast, push every test vector *through* the functional interconnect,
so the wires between cores see both logic values and their stuck-at
faults are covered for free.

This module classifies every interconnect net bit of an SOC under a
given test plan:

* ``exercised``   -- carries arbitrary test data during some core test
  (delivery into a core under test, or a hop of a justification /
  propagation route);
* ``bypassed``    -- reachable only through a system-level test mux,
  which bypasses the functional wire;
* ``memory``      -- connects to a BIST-tested memory core (out of
  SOCET's scope, like the paper's RAM/ROM);
* ``idle``        -- never used by the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.soc.plan import SocTestPlan
from repro.soc.system import Net, Soc


@dataclass
class InterconnectReport:
    """Net-bit classification for one plan."""

    soc: str
    exercised_bits: int = 0
    bypassed_bits: int = 0
    memory_bits: int = 0
    idle_bits: int = 0
    nets: Dict[str, str] = field(default_factory=dict)  # str(net) -> class

    @property
    def logic_bits(self) -> int:
        """Interconnect bits between logic cores / pins (memory excluded)."""
        return self.exercised_bits + self.bypassed_bits + self.idle_bits

    @property
    def coverage_percent(self) -> float:
        if self.logic_bits == 0:
            return 100.0
        return 100.0 * self.exercised_bits / self.logic_bits


def _net_touches_memory(soc: Soc, net: Net) -> bool:
    for ref in (net.source, net.dest):
        if ref.core is not None:
            core = soc.cores.get(ref.core)
            if core is not None and core.is_memory:
                return True
    return False


def interconnect_report(plan: SocTestPlan) -> InterconnectReport:
    """Classify every net of the plan's SOC."""
    soc = plan.soc
    report = InterconnectReport(soc=soc.name)

    # ports whose justification/propagation the plan uses anywhere
    used_inputs: Set[Tuple[str, str]] = set()
    used_output_ports: Set[Tuple[str, str]] = set()
    for core_plan in plan.core_plans.values():
        for delivery in core_plan.deliveries:
            if not delivery.via_test_mux:
                used_inputs.add((core_plan.core, delivery.port))
        for observation in core_plan.observations:
            if not observation.via_test_mux:
                used_output_ports.add((core_plan.core, observation.port))
        for (core_name, kind, key), _count in core_plan.all_usages().items():
            version = soc.cores[core_name].version(plan.selection.get(core_name, 0))
            if kind == "justify":
                path = version.justify_paths.get(tuple(key))
                if path is not None:
                    for port in path.terminal_ports:
                        used_inputs.add((core_name, port))
                    used_output_ports.add((core_name, key[0]))
            else:
                path = version.propagate_paths.get(key)
                if path is not None:
                    used_inputs.add((core_name, key))
                    for terminal in path.terminals:
                        used_output_ports.add((core_name, terminal.comp))

    muxed_ports: Set[Tuple[str, str]] = {(m.core, m.port) for m in plan.test_muxes}

    for net in soc.nets:
        label = _classify(soc, net, used_inputs, used_output_ports, muxed_ports)
        report.nets[str(net)] = label
        bits = net.source.width
        if label == "exercised":
            report.exercised_bits += bits
        elif label == "bypassed":
            report.bypassed_bits += bits
        elif label == "memory":
            report.memory_bits += bits
        else:
            report.idle_bits += bits
    return report


def _classify(
    soc: Soc,
    net: Net,
    used_inputs: Set[Tuple[str, str]],
    used_output_ports: Set[Tuple[str, str]],
    muxed_ports: Set[Tuple[str, str]],
) -> str:
    if _net_touches_memory(soc, net):
        return "memory"
    dest_used = net.dest.core is not None and (net.dest.core, net.dest.port) in used_inputs
    source_used = (
        net.source.core is not None and (net.source.core, net.source.port) in used_output_ports
    )
    # a wire carries test data when the receiving port is fed through it
    # during some test (deliveries) or the driving port's responses ride it
    if dest_used or (net.dest.core is None and source_used):
        return "exercised"
    if net.source.core is not None and (net.source.core, net.source.port) in muxed_ports:
        return "bypassed"
    if net.dest.core is not None and (net.dest.core, net.dest.port) in muxed_ports:
        return "bypassed"
    return "idle"


def bus_interconnect_report(soc: Soc) -> InterconnectReport:
    """The test-bus architecture exercises *no* functional interconnect."""
    report = InterconnectReport(soc=soc.name)
    for net in soc.nets:
        if _net_touches_memory(soc, net):
            report.nets[str(net)] = "memory"
            report.memory_bits += net.source.width
        else:
            report.nets[str(net)] = "bypassed"
            report.bypassed_bits += net.source.width
    return report
