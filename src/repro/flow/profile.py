"""The ``repro profile`` driver: run the full pipeline, break down time.

Profiles one registered system through every SOCET stage -- core-level
HSCAN insertion, transparency version synthesis, chip-level planning
(including the Figure 10 design-space sweep), per-core ATPG, fault
simulation, iterative-improvement optimization, and concurrent-session
scheduling -- then reports where the time and the work went, stage by
stage, from the shared metrics registry.

The registry is reset at the start of a profile run so the numbers
describe exactly one pipeline execution; with ``--trace`` the same run
also produces a Chrome ``trace_event`` file for Perfetto.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import UsageError
from repro.obs import METRICS, PIPELINE_STAGES, profile_section, stage_rows

logger = logging.getLogger("repro.flow.profile")


@dataclass
class ProfileReport:
    """Per-stage time/counter breakdown of one pipeline run."""

    system: str
    seed: int
    total_seconds: float
    stages: List[Dict] = field(default_factory=list)
    #: headline plan numbers (serial TAT, makespan, DFT cells)
    summary: Dict[str, int] = field(default_factory=dict)
    #: the full registry counter snapshot after the run, zeros included
    #: (the run ledger needs "zero" and "absent" to be different facts)
    all_counters: Dict[str, int] = field(default_factory=dict)
    #: histogram summaries after the run (stage times, serve latencies
    #: when profiling through the daemon) -- feeds the ledger's SLO gate
    histograms: Dict[str, Dict] = field(default_factory=dict)

    def stage(self, name: str) -> Dict:
        for row in self.stages:
            if row["stage"] == name or row["prefix"] == name:
                return row
        raise KeyError(name)

    def counters(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for row in self.stages:
            for name, value in row["counters"].items():
                merged[f"{row['prefix']}.{name}"] = value
        return merged

    def ledger_record(self, bench: Optional[str] = None, results=None) -> Dict:
        """This run as a ``repro-ledger`` record (see :mod:`repro.obs.ledger`).

        ``bench`` defaults to ``profile-<system>``; pass an explicit
        series key when variants (``--quick``, job counts) must not
        share a baseline window.
        """
        from repro.obs.ledger import make_record

        return make_record(
            bench=bench or f"profile-{self.system}",
            samples=[self.total_seconds],
            counters=self.all_counters,
            kind="profile",
            results=results if results is not None else dict(self.summary),
            histograms=self.histograms or None,
        )

    def render(self) -> str:
        from repro.flow.report import render_stage_table

        lines = [render_stage_table(self.stages, title=f"{self.system}: pipeline profile")]
        lines.append(
            f"\ntotal {self.total_seconds:.3f}s (stage times are inclusive; "
            "fault-sim runs inside ATPG, planning inside the optimizer)"
        )
        if self.summary:
            pairs = ", ".join(f"{k} {v}" for k, v in self.summary.items())
            lines.append(f"plan: {pairs}")
        return "\n".join(lines)


def _profile_atpg_task(context, circuit) -> int:
    """One core's ATPG regeneration (runs inside a worker)."""
    import random

    from repro.atpg.combinational import CombinationalAtpg
    from repro.elaborate import elaborate
    from repro.faults.collapse import collapse_faults
    from repro.faults.model import full_fault_universe

    seed, max_faults = context
    netlist = elaborate(circuit).netlist
    faults = None
    if max_faults is not None:
        universe = collapse_faults(netlist, full_fault_universe(netlist))
        if len(universe) > max_faults:
            faults = random.Random(seed).sample(universe, max_faults)
    outcome = CombinationalAtpg(netlist, seed=seed).run(faults)
    return len(outcome.patterns)


#: quick mode's per-core fault cap (``--quick`` in the CLI, the
#: ``quick`` param of a serve ``profile`` job): small enough for
#: seconds-long runs, large enough that PODEM still backtracks on
#: every example core
QUICK_MAX_FAULTS = 60


def profile_system(
    system: str,
    seed: int = 0,
    max_faults: Optional[int] = None,
    jobs: Optional[int] = None,
) -> ProfileReport:
    """Run every pipeline stage on ``system`` and collect the breakdown.

    ``max_faults`` caps the per-core ATPG fault list (a seeded sample of
    the collapsed universe) -- the CLI's ``--quick`` mode, which keeps
    every stage and counter live while cutting minutes to seconds.
    ``jobs`` fans per-core ATPG and the design-space sweep over worker
    processes; worker counters and stage timings merge back into the
    registry, so the breakdown stays complete.
    """
    from repro.designs import system_builders
    from repro.exec import ParallelExecutor
    from repro.soc.optimizer import SocetOptimizer, design_space
    from repro.soc.plan import plan_soc_test

    builders = system_builders()
    if system not in builders:
        raise UsageError(f"unknown system {system!r}; choose from {sorted(builders)}")

    METRICS.reset()
    with profile_section("profile.total", system=system):
        # core-level + transparency: building the SOC runs HSCAN insertion
        # and version synthesis for every core
        logger.info("building %s (HSCAN + transparency versions)", system)
        soc = builders[system]()

        # ATPG + fault-sim: regenerate each core's precomputed test set
        # (system builders ship vendor vector counts, so run it explicitly)
        circuits = [core.circuit for core in soc.testable_cores()]
        with ParallelExecutor(jobs, context=(seed, max_faults)) as executor:
            executor.map(_profile_atpg_task, circuits)

        # chip-level: the reservation-aware path search over the whole
        # design space (every version selection)
        plan = plan_soc_test(soc)
        points = design_space(soc, jobs=jobs)

        # optimizer: iterative improvement up to the largest design's area
        budget = max(point.chip_cells for point in points)
        optimized, _trajectory = SocetOptimizer(soc).minimize_tat(budget)

        # schedule: both schedulers on the minimum-area plan
        greedy = plan.schedule(algorithm="greedy")
        plan.schedule(algorithm="sessions")

    time_hist = METRICS.histogram("profile.total.time")
    total_seconds = time_hist.sum
    report = ProfileReport(
        system=system,
        seed=seed,
        total_seconds=total_seconds,
        stages=stage_rows(METRICS, PIPELINE_STAGES),
        summary={
            "serial TAT": plan.total_tat,
            "scheduled TAT": greedy.makespan,
            "optimized TAT": optimized.total_tat,
            "min-area DFT cells": plan.chip_dft_cells,
        },
        all_counters=dict(METRICS.counters()),
        histograms=METRICS.histograms(),
    )
    return report
