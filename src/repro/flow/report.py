"""Report rows mirroring the paper's tables, plus text rendering.

Beyond the paper's tables this module renders the observability
artifacts: the per-stage pipeline breakdown behind ``repro profile``
and the metrics section printed by the global ``--metrics`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.tables import render_table


@dataclass
class AreaRow:
    """One row of Table 2 (area overheads, in cells and percent)."""

    system: str
    original_area: int
    fscan_cells: int
    hscan_cells: int
    bscan_cells: int
    socet_variant: str  # "Min. Area" | "Min. TApp."
    socet_chip_cells: int

    @property
    def fscan_percent(self) -> float:
        return 100.0 * self.fscan_cells / self.original_area

    @property
    def hscan_percent(self) -> float:
        return 100.0 * self.hscan_cells / self.original_area

    @property
    def bscan_percent(self) -> float:
        return 100.0 * self.bscan_cells / self.original_area

    @property
    def socet_chip_percent(self) -> float:
        return 100.0 * self.socet_chip_cells / self.original_area

    @property
    def fscan_bscan_total_percent(self) -> float:
        return self.fscan_percent + self.bscan_percent

    @property
    def socet_total_percent(self) -> float:
        """Core-level HSCAN + chip-level SOCET DFT."""
        return self.hscan_percent + self.socet_chip_percent


def render_area_table(rows: List[AreaRow]) -> str:
    """Text table shaped like the paper's Table 2."""
    headers = [
        "Circuit",
        "Orig.(cells)",
        "FSCAN%",
        "HSCAN%",
        "BSCAN%",
        "Chip type",
        "SOCET%",
        "FSCAN-BSCAN tot%",
        "SOCET tot%",
    ]
    body = [
        [
            row.system,
            row.original_area,
            f"{row.fscan_percent:.1f}",
            f"{row.hscan_percent:.1f}",
            f"{row.bscan_percent:.1f}",
            row.socet_variant,
            f"{row.socet_chip_percent:.1f}",
            f"{row.fscan_bscan_total_percent:.1f}",
            f"{row.socet_total_percent:.1f}",
        ]
        for row in rows
    ]
    return render_table(headers, body, title="Table 2: area overheads")


@dataclass
class ScheduleRow:
    """Serial vs concurrent-session TAT for one plan variant."""

    system: str
    variant: str  # "Min. Area" | "Min. TApp." | "-"
    algorithm: str
    serial_tat: int
    scheduled_tat: int
    sessions: int

    @property
    def speedup(self) -> float:
        return self.serial_tat / self.scheduled_tat if self.scheduled_tat else 1.0


def render_schedule_table(rows: List[ScheduleRow]) -> str:
    """Serial vs scheduled TAT side by side (beyond the paper's tables)."""
    headers = [
        "Circuit",
        "Chip type",
        "Scheduler",
        "Serial TApp",
        "Scheduled TApp",
        "Sessions",
        "Speedup",
    ]
    body = [
        [
            row.system,
            row.variant,
            row.algorithm,
            row.serial_tat,
            row.scheduled_tat,
            row.sessions,
            f"{row.speedup:.2f}x",
        ]
        for row in rows
    ]
    return render_table(headers, body, title="Concurrent test-session scheduling")


def render_session_table(schedule) -> str:
    """Per-session utilization breakdown of one TestSchedule."""
    headers = ["Session", "Start", "End", "Length", "Cores", "Utilization"]
    body = [
        [
            session.index,
            session.start,
            session.end,
            session.length,
            ", ".join(sorted(e.core for e in session.entries)),
            f"{session.utilization:.2f}",
        ]
        for session in schedule.sessions()
    ]
    return render_table(
        headers,
        body,
        title=f"{schedule.soc_name}: per-session utilization ({schedule.algorithm})",
    )


@dataclass
class TestabilityRow:
    """One row of Table 3 (coverage / efficiency / test time)."""

    system: str
    configuration: str  # "Orig." | "HSCAN" | "FSCAN-BSCAN" | "SOCET Min. Area" | ...
    fault_coverage: float
    test_efficiency: float
    tat: Optional[int] = None


def _format_counters(counters: Dict[str, object], limit: int = 4) -> str:
    """Compact ``name=value`` list, largest values first."""
    ordered = sorted(counters.items(), key=lambda kv: (-float(kv[1]), kv[0]))
    shown = [f"{name}={value:,}" for name, value in ordered[:limit]]
    if len(ordered) > limit:
        shown.append(f"(+{len(ordered) - limit} more)")
    return ", ".join(shown) if shown else "-"


def render_stage_table(stages: List[Dict], title: str = "pipeline profile") -> str:
    """The per-stage breakdown of one profiled pipeline run.

    ``stages`` rows come from :func:`repro.obs.stage_rows`: display
    name, inclusive seconds, timed-section count, and the stage's
    counters.
    """
    body = []
    for row in stages:
        body.append(
            [
                row["stage"],
                f"{row['seconds'] * 1000.0:.1f}",
                row["calls"],
                _format_counters(row["counters"]),
            ]
        )
    return render_table(["Stage", "Time(ms)", "Sections", "Key counters"], body, title=title)


def render_metrics_table(snapshot: Dict) -> str:
    """The ``--metrics`` section: every counter, gauge, and histogram.

    ``snapshot`` is :meth:`repro.obs.MetricsRegistry.snapshot` output.
    """
    rows = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append([name, "counter", f"{value:,}"])
    for name, value in snapshot.get("gauges", {}).items():
        rows.append([name, "gauge", value])
    for name, summary in snapshot.get("histograms", {}).items():
        p50, p99 = summary.get("p50"), summary.get("p99")
        rendered = (
            f"n={summary['count']} sum={summary['sum']:.4g} "
            f"p50={'-' if p50 is None else format(p50, '.4g')} "
            f"p99={'-' if p99 is None else format(p99, '.4g')}"
        )
        rows.append([name, "histogram", rendered])
    if not rows:
        rows.append(["(no instruments recorded)", "-", "-"])
    return render_table(["Instrument", "Kind", "Value"], rows, title="Metrics")


def render_testability_table(rows: List[TestabilityRow]) -> str:
    headers = ["Circuit", "Configuration", "FC(%)", "TEff(%)", "TApp(cycles)"]
    body = [
        [
            row.system,
            row.configuration,
            f"{row.fault_coverage:.1f}",
            f"{row.test_efficiency:.1f}",
            "-" if row.tat is None else row.tat,
        ]
        for row in rows
    ]
    return render_table(headers, body, title="Table 3: testability results")
