"""Core-level preparation: the core provider's one-time job.

Runs HSCAN insertion, transparency version synthesis, elaboration, and
combinational ATPG on one core, collecting everything the chip-level
flow and the benchmarks need: test set, coverage, per-version latency
tables, and area numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atpg.combinational import AtpgOutcome, CombinationalAtpg
from repro.dft.hscan import HscanResult, insert_hscan
from repro.elaborate import Elaborated, elaborate
from repro.rtl.circuit import RTLCircuit
from repro.transparency.versions import CoreVersion, generate_versions


@dataclass
class CorePreparation:
    """Everything produced by preparing one core for SOC integration."""

    circuit: RTLCircuit
    elaborated: Elaborated
    hscan: HscanResult
    versions: List[CoreVersion]
    atpg: AtpgOutcome

    @property
    def name(self) -> str:
        return self.circuit.name

    @property
    def functional_area(self) -> int:
        return self.elaborated.netlist.area()

    @property
    def vector_count(self) -> int:
        return len(self.atpg.patterns)

    def version_latency_table(self) -> List[Dict[str, object]]:
        """Rows shaped like the paper's Figures 6/8: latencies + cells."""
        rows: List[Dict[str, object]] = []
        for version in self.versions:
            row: Dict[str, object] = {"version": version.name, "cells": version.extra_cells}
            for (port, lo, width), path in sorted(version.justify_paths.items()):
                row[f"justify {port}[{lo}+{width}]"] = path.latency
            for port, path in sorted(version.propagate_paths.items()):
                row[f"propagate {port}"] = path.latency
            rows.append(row)
        return rows


def prepare_core(circuit: RTLCircuit, seed: int = 0, backtrack_limit: int = 150) -> CorePreparation:
    """Run the full core-level flow on ``circuit``."""
    hscan = insert_hscan(circuit)
    versions = generate_versions(circuit, hscan)
    elaborated = elaborate(circuit)
    atpg = CombinationalAtpg(elaborated.netlist, seed=seed, backtrack_limit=backtrack_limit).run()
    return CorePreparation(
        circuit=circuit,
        elaborated=elaborated,
        hscan=hscan,
        versions=versions,
        atpg=atpg,
    )


def _prepare_task(context, circuit: RTLCircuit) -> CorePreparation:
    seed, backtrack_limit = context
    return prepare_core(circuit, seed=seed, backtrack_limit=backtrack_limit)


def prepare_cores(
    circuits: Sequence[RTLCircuit],
    seed: int = 0,
    backtrack_limit: int = 150,
    jobs: Optional[int] = None,
) -> List[CorePreparation]:
    """Prepare many cores, fanning the per-core flows over worker processes.

    Each core's HSCAN insertion, version synthesis, and ATPG are
    independent (the core provider's one-time job), so this is the
    natural unit of parallelism; results come back in input order and
    match :func:`prepare_core` run serially.
    """
    from repro.exec import ParallelExecutor

    with ParallelExecutor(jobs, context=(seed, backtrack_limit)) as executor:
        return executor.map(_prepare_task, list(circuits))
