"""Chip-level SOCET flow: plan, optimize, and report one SOC.

Produces the two extreme design points the paper's Table 2 uses (the
minimum-area chip and the minimum-test-time chip) plus the full design
space for Figure 10, and packages the area rows for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.fscan_bscan import FscanBscanReport, fscan_bscan_report
from repro.dft.hscan import insert_hscan
from repro.flow.report import AreaRow, ScheduleRow
from repro.obs import profile_section
from repro.schedule import TestSchedule
from repro.soc.optimizer import DesignPoint, SocetOptimizer, design_space
from repro.soc.plan import SocTestPlan, plan_soc_test
from repro.soc.system import Soc


@dataclass
class SocetRun:
    """All chip-level results for one SOC."""

    soc: Soc
    points: List[DesignPoint]
    min_area_plan: SocTestPlan
    min_tat_plan: SocTestPlan
    baseline: FscanBscanReport
    #: concurrent-session schedules of the two extreme plans (greedy)
    min_area_schedule: Optional[TestSchedule] = None
    min_tat_schedule: Optional[TestSchedule] = None

    @property
    def min_area_point(self) -> DesignPoint:
        # select explicitly rather than trusting design_space's sort order
        return min(self.points, key=lambda p: (p.chip_cells, p.tat))

    @property
    def min_tat_point(self) -> DesignPoint:
        return min(self.points, key=lambda p: (p.tat, p.chip_cells))

    def schedule_rows(self) -> List[ScheduleRow]:
        """Serial vs scheduled TAT for both extreme plans."""
        rows = []
        for variant, plan, schedule in (
            ("Min. Area", self.min_area_plan, self.min_area_schedule),
            ("Min. TApp.", self.min_tat_plan, self.min_tat_schedule),
        ):
            if schedule is None:
                schedule = plan.schedule()
            rows.append(
                ScheduleRow(
                    system=self.soc.name,
                    variant=variant,
                    algorithm=schedule.algorithm,
                    serial_tat=plan.total_tat,
                    scheduled_tat=schedule.makespan,
                    sessions=len(schedule.sessions()),
                )
            )
        return rows

    def hscan_cells(self) -> int:
        """Core-level HSCAN area over all logic cores."""
        total = 0
        for core in self.soc.testable_cores():
            plan = core.hscan if core.hscan is not None else insert_hscan(core.circuit)
            total += plan.extra_area
        return total

    def area_rows(self) -> List[AreaRow]:
        original = self.soc.total_functional_area()
        rows = []
        for variant, plan in (
            ("Min. Area", self.min_area_plan),
            ("Min. TApp.", self.min_tat_plan),
        ):
            rows.append(
                AreaRow(
                    system=self.soc.name,
                    original_area=original,
                    fscan_cells=self.baseline.fscan_cells,
                    hscan_cells=self.hscan_cells(),
                    bscan_cells=self.baseline.bscan_cells,
                    socet_variant=variant,
                    socet_chip_cells=plan.chip_dft_cells,
                )
            )
        return rows


def _schedule_chunk(context, plans) -> List[TestSchedule]:
    """Schedule one chunk of finished plans (runs inside a worker)."""
    from repro.schedule import schedule_plan

    algorithm, power_budget, include_bist = context
    return [
        schedule_plan(
            plan,
            algorithm=algorithm,
            power_budget=power_budget,
            include_bist=include_bist,
        )
        for plan in plans
    ]


def schedule_points(
    points: List[DesignPoint],
    algorithm: str = "greedy",
    power_budget: Optional[int] = None,
    include_bist: bool = False,
    jobs: Optional[int] = None,
) -> List[TestSchedule]:
    """Concurrent-session schedules for every design point, in order.

    Scheduling each point's plan is independent of every other point,
    so the list fans out over worker processes (``jobs``); results are
    bit-identical to scheduling each point serially.
    """
    from repro.exec import ParallelExecutor
    from repro.soc.optimizer import _chunked

    with profile_section("chiplevel.schedule_points", points=len(points)):
        context = (algorithm, power_budget, include_bist)
        with ParallelExecutor(jobs, context=context) as executor:
            chunks = _chunked([p.plan for p in points], executor.jobs * 2)
            return [
                schedule
                for chunk in executor.map(_schedule_chunk, chunks, chunksize=1)
                for schedule in chunk
            ]


def run_socet(soc: Soc, jobs: Optional[int] = None, strict: bool = False) -> SocetRun:
    """Sweep the design space and pick the paper's two extreme points.

    ``strict=True`` runs the structural design rules (:mod:`repro.lint`)
    first and raises :class:`~repro.errors.LintError` on any error, so a
    malformed SOC is rejected before the sweep spends ATPG or
    fault-simulation cycles.
    """
    if strict:
        from repro.lint import strict_gate_soc

        strict_gate_soc(soc, gate="run_socet(strict=True)")
    with profile_section("chiplevel.run_socet", soc=soc.name):
        return _run_socet(soc, jobs)


def _run_socet(soc: Soc, jobs: Optional[int] = None) -> SocetRun:
    points = design_space(soc, jobs=jobs)
    min_area = min(points, key=lambda p: (p.chip_cells, p.tat))
    min_tat = min(points, key=lambda p: (p.tat, p.chip_cells))
    schedules = schedule_points([min_area, min_tat], jobs=jobs)
    return SocetRun(
        soc=soc,
        points=points,
        min_area_plan=min_area.plan,
        min_tat_plan=min_tat.plan,
        baseline=fscan_bscan_report(soc),
        min_area_schedule=schedules[0],
        min_tat_schedule=schedules[1],
    )


def optimize_to_area(soc: Soc, max_chip_cells: int):
    """Objective (i): best TAT within an area budget (returns plan, trajectory)."""
    return SocetOptimizer(soc).minimize_tat(max_chip_cells)


def optimize_to_tat(soc: Soc, max_tat_cycles: int):
    """Objective (ii): least area meeting a TAT budget (returns plan, trajectory)."""
    return SocetOptimizer(soc).minimize_area(max_tat_cycles)
