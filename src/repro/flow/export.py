"""JSON-serializable views of test plans and core versions.

Downstream tooling (testers, documentation generators, dashboards)
consumes plans as plain data; these converters flatten the planner's
objects into dictionaries of primitives only.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.soc.plan import SocTestPlan
from repro.transparency.versions import CoreVersion


def version_to_dict(version: CoreVersion) -> Dict[str, Any]:
    """One transparency version as plain data."""
    return {
        "core": version.core,
        "name": version.name,
        "extra_cells": version.extra_cells,
        "justify": {
            f"{port}[{lo}+{width}]": path.latency
            for (port, lo, width), path in sorted(version.justify_paths.items())
        },
        "propagate": {
            port: path.latency for port, path in sorted(version.propagate_paths.items())
        },
        "added_muxes": [str(arc) for arc in version.added_muxes],
        "freezes": sorted(
            {
                register
                for path in list(version.justify_paths.values())
                + list(version.propagate_paths.values())
                for register, _ in path.freezes
            }
        ),
    }


def plan_to_dict(plan: SocTestPlan) -> Dict[str, Any]:
    """A full SOC test plan as plain data."""
    cores: List[Dict[str, Any]] = []
    for name, core_plan in sorted(plan.core_plans.items()):
        cores.append(
            {
                "core": name,
                "version": plan.selection.get(name, 0) + 1,
                "cadence": core_plan.cadence,
                "scan_steps": core_plan.scan_steps,
                "flush": core_plan.flush,
                "tat": core_plan.tat,
                "deliveries": [
                    {
                        "port": d.port,
                        "latency": d.latency,
                        "via_test_mux": d.via_test_mux,
                    }
                    for d in core_plan.deliveries
                ],
                "observations": [
                    {
                        "port": o.port,
                        "lo": o.lo,
                        "width": o.width,
                        "latency": o.latency,
                        "via_test_mux": o.via_test_mux,
                    }
                    for o in core_plan.observations
                ],
            }
        )
    return {
        "soc": plan.soc.name,
        "selection": {name: index + 1 for name, index in sorted(plan.selection.items())},
        "total_tat": plan.total_tat,
        "chip_dft_cells": plan.chip_dft_cells,
        "version_cells": plan.version_cells,
        "test_mux_cells": plan.test_mux_cells,
        "controller_cells": plan.controller_cells,
        "test_muxes": [str(mux) for mux in plan.test_muxes],
        "cores": cores,
        "versions": [
            version_to_dict(core.version(plan.selection.get(core.name, 0)))
            for core in plan.soc.testable_cores()
        ],
    }
