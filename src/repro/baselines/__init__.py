"""Comparison baselines: FSCAN-BSCAN, the test-bus architecture, and
HSCAN-without-chip-level-DFT (the paper's Tables 2 and 3 columns)."""

from repro.baselines.fscan_bscan import FscanBscanReport, fscan_bscan_report
from repro.baselines.testbus import TestBusReport, evaluate_test_bus

__all__ = [
    "FscanBscanReport",
    "fscan_bscan_report",
    "TestBusReport",
    "evaluate_test_bus",
]
