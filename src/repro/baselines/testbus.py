"""The test-bus baseline: direct multiplexed pin access to every core.

An added bus runs from the PIs to the POs and isolates each core with
multiplexers, so every core input is controllable and every output
observable with zero transparency latency.  Test time is minimal (one
scan step per cycle); area is maximal (muxes on every port bit) -- the
degenerate end point the paper says its optimizer approaches when test
time must shrink without limit.  It also cannot test core-to-core
interconnect, which the paper holds against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.soc.system import Soc
from repro.transparency.versions import _tmux_cost


@dataclass
class TestBusCoreRow:
    core: str
    port_bits: int
    mux_cells: int
    tat: int


@dataclass
class TestBusReport:
    soc: str
    rows: List[TestBusCoreRow] = field(default_factory=list)
    #: bus routing allowance (one mux per PI/PO bit of the widest path)
    bus_cells: int = 0

    @property
    def total_tat(self) -> int:
        return sum(row.tat for row in self.rows)

    @property
    def total_cells(self) -> int:
        return self.bus_cells + sum(row.mux_cells for row in self.rows)


def evaluate_test_bus(soc: Soc) -> TestBusReport:
    report = TestBusReport(soc=soc.name)
    widest = 0
    for core in soc.testable_cores():
        port_bits = core.input_bits + core.circuit.output_bit_count()
        widest = max(widest, core.input_bits)
        mux_cells = 0
        for port in core.circuit.inputs:
            mux_cells += _tmux_cost(port.width)
        for port in core.circuit.outputs:
            mux_cells += _tmux_cost(port.width)
        depth = core.scan_depth
        tat = core.hscan_vectors + max(0, depth - 1)
        report.rows.append(
            TestBusCoreRow(core=core.name, port_bits=port_bits, mux_cells=mux_cells, tat=tat)
        )
    report.bus_cells = 2 * widest
    return report
