"""The FSCAN-BSCAN baseline SOC test method.

Every core is full-scanned and isolated by a boundary-scan ring; a
core's flip-flops plus the boundary cells on its (internal) inputs form
one serial chain, so testing it costs ``L*V + L - 1`` cycles with
``L = ff + input_bits``.  Cores are tested one after another.  This is
the method the paper's Tables 2 and 3 compare SOCET against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dft.bscan import boundary_scan_overhead
from repro.dft.fscan import fscan_overhead
from repro.dft.tat import fscan_bscan_core_tat
from repro.soc.system import Soc


@dataclass
class FscanBscanCoreRow:
    core: str
    flip_flops: int
    internal_input_bits: int
    vectors: int
    chain_length: int
    tat: int
    fscan_cells: int
    bscan_cells: int


@dataclass
class FscanBscanReport:
    """Area and test-time accounting for the baseline on one SOC."""

    soc: str
    rows: List[FscanBscanCoreRow] = field(default_factory=list)

    @property
    def total_tat(self) -> int:
        return sum(row.tat for row in self.rows)

    @property
    def fscan_cells(self) -> int:
        return sum(row.fscan_cells for row in self.rows)

    @property
    def bscan_cells(self) -> int:
        return sum(row.bscan_cells for row in self.rows)

    @property
    def total_cells(self) -> int:
        return self.fscan_cells + self.bscan_cells


def fscan_bscan_report(soc: Soc) -> FscanBscanReport:
    """Evaluate the FSCAN-BSCAN baseline on ``soc`` (memories excluded)."""
    report = FscanBscanReport(soc=soc.name)
    for core in soc.testable_cores():
        flip_flops = core.flip_flops
        input_bits = core.input_bits
        chain = flip_flops + input_bits
        report.rows.append(
            FscanBscanCoreRow(
                core=core.name,
                flip_flops=flip_flops,
                internal_input_bits=input_bits,
                vectors=core.test_vectors,
                chain_length=chain,
                tat=fscan_bscan_core_tat(flip_flops, input_bits, core.test_vectors),
                fscan_cells=fscan_overhead(flip_flops),
                bscan_cells=boundary_scan_overhead(core.circuit).extra_area,
            )
        )
    return report
