"""Test-application-time formulas used throughout the paper.

* HSCAN vectors: a full-scan (combinational) vector takes ``depth``
  shift cycles plus one apply cycle through chains of sequential depth
  ``depth`` -- the paper's DISPLAY needs 105 x (4+1) = 525 HSCAN vectors.
* FSCAN-BSCAN per-core time: the core's flip-flops and the boundary-scan
  cells on its internal inputs form one serial chain of length
  ``L = ff + internal_inputs``; V vectors cost ``L*V + L - 1`` cycles
  (shift-in overlapped with shift-out, plus the final flush) -- the
  paper's (66+20) x 105 + 85 = 9,115 cycles for the DISPLAY.
"""

from __future__ import annotations


def hscan_vector_count(combinational_vectors: int, depth: int) -> int:
    """Scan-cycle count ("HSCAN vectors") for a core of chain depth ``depth``."""
    if combinational_vectors < 0 or depth < 0:
        raise ValueError("vector count and depth must be non-negative")
    return combinational_vectors * (depth + 1)


def fscan_bscan_core_tat(ff_count: int, internal_input_bits: int, vectors: int) -> int:
    """Cycles to test one core in the FSCAN-BSCAN scheme."""
    chain_length = ff_count + internal_input_bits
    if vectors == 0 or chain_length == 0:
        return 0
    return chain_length * vectors + chain_length - 1
