"""Full-scan insertion (the FSCAN half of the FSCAN-BSCAN baseline).

Every flip-flop is replaced by a scan flip-flop and stitched into a
single chain in deterministic order.  Works directly on the gate-level
netlist so the scanned design remains simulatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dft.scan import FSCAN_PER_FF
from repro.errors import DftError
from repro.gates.cells import GateKind
from repro.gates.netlist import GateNetlist

FSCAN_ENABLE = "scan_en"
FSCAN_IN = "scan_in"
FSCAN_OUT = "scan_out"


@dataclass
class FscanResult:
    """Outcome of full-scan insertion on one netlist."""

    netlist: GateNetlist
    chain: List[str] = field(default_factory=list)
    extra_area: int = 0

    @property
    def depth(self) -> int:
        return len(self.chain)


def fscan_overhead(flop_count: int) -> int:
    """Analytic full-scan area overhead in cells."""
    return FSCAN_PER_FF * flop_count


def insert_fscan(netlist: GateNetlist) -> FscanResult:
    """Plan (without modifying) full scan: chain order + analytic area."""
    chain = sorted(flop.name for flop in netlist.flops)
    return FscanResult(netlist=netlist, chain=chain, extra_area=fscan_overhead(len(chain)))


def apply_fscan(netlist: GateNetlist, plan: Optional[FscanResult] = None) -> FscanResult:
    """Return a scanned copy of ``netlist``.

    Adds ``scan_en``/``scan_in`` inputs and a ``scan_out`` output; every
    DFF becomes an SDFF whose scan-in is the previous chain element.
    """
    if plan is None:
        plan = insert_fscan(netlist)
    scanned = netlist.copy(netlist.name + "_fscan")
    if not plan.chain:
        raise DftError(f"netlist {netlist.name!r} has no flip-flops to scan")
    scanned.add_gate(FSCAN_ENABLE, GateKind.INPUT)
    scanned.add_gate(FSCAN_IN, GateKind.INPUT)
    previous = FSCAN_IN
    for flop_name in plan.chain:
        flop = scanned.gate(flop_name)
        if flop.kind is not GateKind.DFF:
            raise DftError(f"{flop_name!r} is not a DFF")
        scanned.replace_gate(flop_name, GateKind.SDFF, [flop.fanins[0], previous, FSCAN_ENABLE])
        previous = flop_name
    scanned.add_gate(FSCAN_OUT, GateKind.OUTPUT, [previous])
    scanned.validate()
    return FscanResult(netlist=scanned, chain=list(plan.chain), extra_area=plan.extra_area)
