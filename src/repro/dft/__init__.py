"""Design-for-testability insertion: HSCAN, full scan, boundary scan.

HSCAN (Bhattacharya & Dey, VTS'96) is the paper's core-level DFT: existing
register-to-register mux paths are reused as parallel scan chains, adding
only a couple of gates per reused path.  Full scan and boundary scan are
implemented as the FSCAN-BSCAN comparison baseline.
"""

from repro.dft.scan import ScanLink, ScanUnit, ObservationLink
from repro.dft.hscan import HscanResult, insert_hscan, apply_hscan
from repro.dft.fscan import FscanResult, insert_fscan, apply_fscan
from repro.dft.bscan import BscanResult, boundary_scan_overhead
from repro.dft.tat import fscan_bscan_core_tat, hscan_vector_count

__all__ = [
    "ScanLink",
    "ScanUnit",
    "ObservationLink",
    "HscanResult",
    "insert_hscan",
    "apply_hscan",
    "FscanResult",
    "insert_fscan",
    "apply_fscan",
    "BscanResult",
    "boundary_scan_overhead",
    "fscan_bscan_core_tat",
    "hscan_vector_count",
]
