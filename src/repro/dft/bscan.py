"""Boundary-scan overhead accounting (the BSCAN half of FSCAN-BSCAN).

In the baseline SOC test method each embedded core is isolated by a ring
of boundary-scan cells on its ports; test data is shifted through the
ring serially.  We account one boundary-scan cell (capture flop + update
stage + mux) per port bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gates.cells import BSCAN_CELL_AREA
from repro.rtl.circuit import RTLCircuit


@dataclass
class BscanResult:
    """Boundary-scan ring plan for one core."""

    core: str
    input_bits: int
    output_bits: int
    extra_area: int

    @property
    def ring_length(self) -> int:
        return self.input_bits + self.output_bits


def boundary_scan_overhead(circuit: RTLCircuit) -> BscanResult:
    """Cells needed to put a boundary-scan ring around ``circuit``."""
    input_bits = circuit.input_bit_count()
    output_bits = circuit.output_bit_count()
    return BscanResult(
        core=circuit.name,
        input_bits=input_bits,
        output_bits=output_bits,
        extra_area=BSCAN_CELL_AREA * (input_bits + output_bits),
    )
