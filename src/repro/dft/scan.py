"""Scan-architecture data model shared by HSCAN and FSCAN insertion.

A *scan unit* is a contiguous slice of a register that shifts as one
piece; HSCAN chains are sequences of units connected by *scan links*
(reused mux paths, direct connections, or added test muxes).  Costs are
the paper's accounting: two gates to force an existing mux path, one OR
gate for a direct path, and a per-bit mux when a test multiplexer must
be added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.rtl.types import Slice

#: cells to force the select of an existing mux path during scan
COST_MUX_PATH_LINK = 2
#: cells (one OR gate at the load/enable) for an existing direct path
COST_DIRECT_LINK = 1
#: cells per bit for an added test multiplexer (integrated scan mux)
COST_TEST_MUX_PER_BIT = 2
#: cells per bit to observe a chain tail through an existing mux path
COST_OBS_MUX = 2
#: cells charged for routing a chain tail to a new scan-out pin
COST_NEW_SCAN_OUT = 4
#: per-flip-flop cells for full-scan (DFF -> scan-FF mux)
FSCAN_PER_FF = 2


@dataclass(frozen=True, order=True)
class ScanUnit:
    """A register slice ``comp[lo : lo+width]`` shifting as one piece."""

    comp: str
    lo: int
    width: int

    @property
    def hi(self) -> int:
        return self.lo + self.width

    def as_slice(self) -> Slice:
        return Slice(self.comp, self.lo, self.width)

    def __str__(self) -> str:
        return str(self.as_slice())


@dataclass(frozen=True)
class ScanLink:
    """Scan-in connection of ``dest`` from ``source`` (a slice).

    ``kind`` is ``"mux"`` (existing mux path, select forced),
    ``"direct"`` (existing direct path), or ``"testmux"`` (added test
    multiplexer fed from a dedicated scan-in pin).
    """

    dest: ScanUnit
    source: Slice
    kind: str
    cost: int
    mux_path: Tuple[Tuple[str, int], ...] = ()

    def __str__(self) -> str:
        return f"{self.source} ={self.kind}=> {self.dest}"


@dataclass(frozen=True)
class ObservationLink:
    """How a chain tail reaches an output: existing path or new pin.

    ``output`` / ``output_lo`` locate the observing port slice; ``None``
    output means a new ``scan_out`` pin is created for the tail.
    """

    tail: ScanUnit
    output: Optional[str]
    output_lo: int
    kind: str  # "direct" | "mux" | "pin"
    cost: int
    mux_path: Tuple[Tuple[str, int], ...] = ()
