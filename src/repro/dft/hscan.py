"""HSCAN insertion: reuse existing mux/direct paths as scan chains.

Following the paper's Section 2 (and HSCAN [6]):

* if a multiplexer path already exists between two registers, they join a
  scan chain at the cost of ~2 extra gates (forcing the select);
* a direct connection costs one OR gate at the destination's load;
* where no path exists (or reuse would conflict), a test multiplexer is
  added and integrated with the destination flip-flops, fed from a
  dedicated scan-in pin.

Registers are handled at *slice* granularity (scan units), so C-split
registers whose halves load from different sources scan correctly.  The
insertion is a greedy minimum-cost assignment with bit-occupancy and
acyclicity constraints; the result is a set of parallel chains running
from circuit inputs (or scan-in pins) to circuit outputs (or scan-out
pins), exactly the structure Figure 4(a) of the paper shows for the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dft.scan import (
    COST_DIRECT_LINK,
    COST_MUX_PATH_LINK,
    COST_NEW_SCAN_OUT,
    COST_OBS_MUX,
    COST_TEST_MUX_PER_BIT,
    ObservationLink,
    ScanLink,
    ScanUnit,
)
from repro.errors import DftError
from repro.obs import METRICS, profile_section
from repro.rtl.arcs import Arc, extract_arcs
from repro.rtl.circuit import RTLCircuit
from repro.rtl.components import Mux, Operator, Register
from repro.rtl.types import ComponentKind, Concat, OpKind, Slice, concat, slice_expr

_INSERTIONS = METRICS.counter("corelevel.hscan.insertions")

SCAN_ENABLE = "scan_en"
SCAN_IN = "scan_in"
SCAN_OUT_PREFIX = "scan_out"


@dataclass
class HscanResult:
    """Everything HSCAN insertion decided for one core."""

    circuit: RTLCircuit
    units: List[ScanUnit] = field(default_factory=list)
    links: List[ScanLink] = field(default_factory=list)
    observations: List[ObservationLink] = field(default_factory=list)
    scan_in_width: int = 0
    scan_out_count: int = 0
    extra_area: int = 0
    depth: int = 0
    chains: List[List[ScanUnit]] = field(default_factory=list)

    @property
    def vector_multiplier(self) -> int:
        """Scan cycles per combinational vector: depth shifts + 1 apply."""
        return self.depth + 1

    def link_for(self, unit: ScanUnit) -> ScanLink:
        for link in self.links:
            if link.dest == unit:
                return link
        raise DftError(f"no scan link for unit {unit}")


def insert_hscan(circuit: RTLCircuit) -> HscanResult:
    """Plan HSCAN for ``circuit`` (does not modify it; see apply_hscan)."""
    with profile_section("corelevel.hscan", core=circuit.name):
        result = _insert_hscan(circuit)
    _INSERTIONS.inc()
    return result


def _insert_hscan(circuit: RTLCircuit) -> HscanResult:
    arcs = extract_arcs(circuit)
    register_arcs = [a for a in arcs if not a.dest_is_output]
    output_arcs = [a for a in arcs if a.dest_is_output]

    units = _partition_units(circuit, register_arcs)
    units_by_register: Dict[str, List[ScanUnit]] = {}
    for unit in units:
        units_by_register.setdefault(unit.comp, []).append(unit)

    # greedy assignment state
    source_occupancy: Dict[str, int] = {}
    successors: Dict[ScanUnit, List[ScanUnit]] = {unit: [] for unit in units}
    links: List[ScanLink] = []
    scan_in_offset = 0

    def slice_mask(s: Slice) -> int:
        return ((1 << s.width) - 1) << s.lo

    def overlapping_units(s: Slice) -> List[ScanUnit]:
        return [u for u in units_by_register.get(s.comp, []) if u.lo < s.hi and s.lo < u.hi]

    def creates_cycle(dest: ScanUnit, source: Slice) -> bool:
        if source.comp not in units_by_register:
            return False  # source is an input
        targets = set(overlapping_units(source))
        if dest in targets:
            return True
        stack = [dest]
        seen = {dest}
        while stack:
            node = stack.pop()
            for succ in successors[node]:
                if succ in targets:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    # candidate links per unit, computed once
    unit_candidates: Dict[ScanUnit, List[ScanLink]] = {unit: [] for unit in units}
    for unit in units:
        for arc in register_arcs:
            if arc.dest != unit.comp:
                continue
            if not (arc.dest_lo <= unit.lo and unit.hi <= arc.dest_lo + arc.width):
                continue
            source = arc.source.sub(unit.lo - arc.dest_lo, unit.width)
            cost = COST_DIRECT_LINK if arc.is_direct else COST_MUX_PATH_LINK
            unit_candidates[unit].append(
                ScanLink(unit, source, "direct" if arc.is_direct else "mux", cost, arc.mux_path)
            )

    # Most-constrained-first: units with fewer scan-in alternatives claim
    # their sources before richer units steal them (so a pipeline's head
    # register wins the circuit input and chains grow forward).
    assigned_depth: Dict[ScanUnit, int] = {}

    def source_depth(source: Slice) -> int:
        """Chain depth the source sits at (0 for inputs; inf if unassigned)."""
        if source.comp not in units_by_register:
            return 0
        depths = [
            assigned_depth.get(u)
            for u in overlapping_units(source)
        ]
        if any(d is None for d in depths):
            return 1 << 20
        return max(depths)  # type: ignore[type-var]

    ordering = sorted(units, key=lambda u: (len(unit_candidates[u]), u.comp, u.lo))
    for unit in ordering:
        ranked = sorted(
            unit_candidates[unit],
            key=lambda link: (
                link.cost,
                source_depth(link.source),
                0 if link.source.comp not in units_by_register else 1,
                str(link.source),
            ),
        )
        chosen: Optional[ScanLink] = None
        for link in ranked:
            mask = slice_mask(link.source)
            if source_occupancy.get(link.source.comp, 0) & mask:
                continue
            if creates_cycle(unit, link.source):
                continue
            chosen = link
            break
        if chosen is None:
            source = Slice(SCAN_IN, scan_in_offset, unit.width)
            scan_in_offset += unit.width
            chosen = ScanLink(unit, source, "testmux", COST_TEST_MUX_PER_BIT * unit.width)
        links.append(chosen)
        source_occupancy[chosen.source.comp] = source_occupancy.get(
            chosen.source.comp, 0
        ) | slice_mask(chosen.source)
        assigned_depth[unit] = 1 + source_depth(chosen.source) if source_depth(
            chosen.source
        ) < (1 << 20) else 1
        for src_unit in overlapping_units(chosen.source):
            successors[src_unit].append(unit)

    # ------------------------------------------------------------------
    # observation of chain tails
    # ------------------------------------------------------------------
    observations: List[ObservationLink] = []
    output_occupancy: Dict[str, int] = {}
    scan_out_count = 0
    tails = [unit for unit in sorted(units) if not successors[unit]]
    for tail in tails:
        chosen_obs: Optional[ObservationLink] = None
        obs_candidates: List[Tuple[int, ObservationLink]] = []
        for arc in output_arcs:
            src = arc.source
            if src.comp != tail.comp:
                continue
            if not (src.lo <= tail.lo and tail.hi <= src.hi):
                continue
            out_lo = arc.dest_lo + (tail.lo - src.lo)
            cost = 0 if arc.is_direct else COST_OBS_MUX
            kind = "direct" if arc.is_direct else "mux"
            obs_candidates.append(
                (cost, ObservationLink(tail, arc.dest, out_lo, kind, cost, arc.mux_path))
            )
        for cost, obs in sorted(obs_candidates, key=lambda c: (c[0], str(c[1].output))):
            mask = ((1 << tail.width) - 1) << obs.output_lo
            if output_occupancy.get(obs.output, 0) & mask:  # type: ignore[arg-type]
                continue
            chosen_obs = obs
            break
        if chosen_obs is None:
            chosen_obs = ObservationLink(tail, None, 0, "pin", COST_NEW_SCAN_OUT)
            scan_out_count += 1
        else:
            mask = ((1 << tail.width) - 1) << chosen_obs.output_lo
            output_occupancy[chosen_obs.output] = (  # type: ignore[index]
                output_occupancy.get(chosen_obs.output, 0) | mask
            )
        observations.append(chosen_obs)

    # ------------------------------------------------------------------
    # depth and chains
    # ------------------------------------------------------------------
    link_by_dest = {link.dest: link for link in links}
    depth_cache: Dict[ScanUnit, int] = {}

    def unit_depth(unit: ScanUnit) -> int:
        cached = depth_cache.get(unit)
        if cached is not None:
            return cached
        depth_cache[unit] = 0  # break unexpected cycles defensively
        link = link_by_dest[unit]
        preds = overlapping_units(link.source)
        depth = 1 + (max((unit_depth(p) for p in preds), default=0))
        depth_cache[unit] = depth
        return depth

    depth = max((unit_depth(u) for u in units), default=0)

    chains: List[List[ScanUnit]] = []
    visited: Set[ScanUnit] = set()
    heads = [
        u
        for u in sorted(units)
        if link_by_dest[u].source.comp not in units_by_register
    ]
    for head in heads:
        chain = []
        node: Optional[ScanUnit] = head
        while node is not None and node not in visited:
            visited.add(node)
            chain.append(node)
            nexts = [n for n in successors[node] if n not in visited]
            node = nexts[0] if nexts else None
        chains.append(chain)
    leftovers = [u for u in sorted(units) if u not in visited]
    for head in leftovers:
        if head in visited:
            continue
        chain = []
        node = head
        while node is not None and node not in visited:
            visited.add(node)
            chain.append(node)
            nexts = [n for n in successors[node] if n not in visited]
            node = nexts[0] if nexts else None
        chains.append(chain)

    extra_area = sum(link.cost for link in links) + sum(obs.cost for obs in observations)
    return HscanResult(
        circuit=circuit,
        units=units,
        links=links,
        observations=observations,
        scan_in_width=scan_in_offset,
        scan_out_count=scan_out_count,
        extra_area=extra_area,
        depth=depth,
        chains=chains,
    )


def _partition_units(circuit: RTLCircuit, register_arcs: List[Arc]) -> List[ScanUnit]:
    """Cut every register at the arc boundaries that touch it."""
    units: List[ScanUnit] = []
    for register in circuit.registers:
        cuts = {0, register.width}
        for arc in register_arcs:
            if arc.dest == register.name:
                cuts.add(arc.dest_lo)
                cuts.add(arc.dest_lo + arc.width)
        ordered = sorted(c for c in cuts if 0 <= c <= register.width)
        for lo, hi in zip(ordered, ordered[1:]):
            units.append(ScanUnit(register.name, lo, hi - lo))
    return units


# ----------------------------------------------------------------------
# applying the plan to the RTL
# ----------------------------------------------------------------------
def apply_hscan(circuit: RTLCircuit, plan: Optional[HscanResult] = None) -> Tuple[RTLCircuit, HscanResult]:
    """Return a copy of ``circuit`` with the HSCAN plan inserted.

    Adds a ``scan_en`` input (plus ``scan_in``/``scan_out`` pins when the
    plan needs them); every register's driver becomes a mux between its
    functional driver and its scan source, registers with enables load
    unconditionally in scan mode, and tail observations are muxed onto
    output ports.  Synthesized components are prefixed ``scan_`` for area
    accounting.
    """
    if plan is None:
        plan = insert_hscan(circuit)
    modified = circuit.copy(circuit.name + "_hscan")
    from repro.rtl.components import Input, Output  # local import to avoid cycles

    modified.add(Input(SCAN_ENABLE, 1))
    scan_en = Slice(SCAN_ENABLE, 0, 1)
    if plan.scan_in_width:
        modified.add(Input(SCAN_IN, plan.scan_in_width))

    links_by_register: Dict[str, List[ScanLink]] = {}
    for link in plan.links:
        links_by_register.setdefault(link.dest.comp, []).append(link)

    for register_name, register_links in links_by_register.items():
        register: Register = modified.get(register_name)  # type: ignore[assignment]
        ordered = sorted(register_links, key=lambda l: l.dest.lo)
        if sum(l.dest.width for l in ordered) != register.width:
            raise DftError(f"scan links do not cover register {register_name!r}")
        scan_source = concat(*[link.source for link in ordered])
        scan_mux = Mux(
            f"scan_mux_{register_name}",
            register.width,
            inputs=[register.driver, scan_source],
            select=scan_en,
        )
        modified.add(scan_mux)
        register.driver = Slice(scan_mux.name, 0, register.width)
        if register.enable is not None:
            force = Operator(
                f"scan_force_{register_name}",
                1,
                op=OpKind.OR,
                operands=[register.enable, scan_en],
            )
            modified.add(force)
            register.enable = Slice(force.name, 0, 1)

    # observation muxes / pins
    by_output: Dict[str, List[ObservationLink]] = {}
    pin_index = 0
    for obs in plan.observations:
        if obs.output is None:
            out = Output(f"{SCAN_OUT_PREFIX}{pin_index}", obs.tail.width, driver=obs.tail.as_slice())
            modified.add(out)
            pin_index += 1
        else:
            by_output.setdefault(obs.output, []).append(obs)

    for output_name, obs_list in by_output.items():
        output: Output = modified.get(output_name)  # type: ignore[assignment]
        pieces = []
        cursor = 0
        for obs in sorted(obs_list, key=lambda o: o.output_lo):
            if obs.output_lo > cursor:
                pieces.append(slice_expr(output.driver, cursor, obs.output_lo - cursor))
            pieces.append(obs.tail.as_slice())
            cursor = obs.output_lo + obs.tail.width
        if cursor < output.width:
            pieces.append(slice_expr(output.driver, cursor, output.width - cursor))
        scan_view = concat(*pieces)
        obs_mux = Mux(
            f"scan_omux_{output_name}",
            output.width,
            inputs=[output.driver, scan_view],
            select=scan_en,
        )
        modified.add(obs_mux)
        output.driver = Slice(obs_mux.name, 0, output.width)

    from repro.rtl.validate import validate_circuit

    validate_circuit(modified)
    return modified, plan
