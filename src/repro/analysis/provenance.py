"""Slice-provenance proofs over transparency-path trees.

A :class:`~repro.transparency.search.TransparencyPath` *claims* that its
root port slice is transparent: every root bit is carried verbatim to or
from a terminal port, ``latency`` cycles apart.  The planner and the TAT
accounting trust that claim blindly.  :func:`prove_path` re-derives it
from first principles by walking the path tree and tracking, bit by bit,
which terminal bits reach which root bits through the chain of
:class:`~repro.transparency.rcg.TransArc` transfers:

* each branch arc must actually touch the node it hangs off, and the
  branch subtree may only claim bits the arc transports (width
  narrowing is a refutation, not a rounding error);
* the branches of a node must cover its slice exactly -- C-split /
  O-split joins leave no gaps and no double-claimed bits;
* every leaf must land on a terminal port of the right kind (inputs for
  justification, outputs for propagation);
* the per-branch latencies must reproduce the declared path latency.

The result is a :class:`SliceProof`: either a complete, machine-checked
segment map (root bits ``[lo, lo+w)`` come from terminal bits
``[tlo, tlo+w)`` after ``n`` cycles) or a list of refutation reasons
naming the offending slice ranges.  The differential harness
(:mod:`repro.analysis.differential`) replays proved segment maps on the
gate-level simulator; refuted paths never reach the planner's strict
gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.rtl.types import ComponentKind, Slice


@dataclass(frozen=True)
class ProvenanceSegment:
    """One proved contiguous bit-range of a path's root slice.

    Root bits ``[root_lo, root_lo + width)`` (absolute bit positions on
    the root port) are carried verbatim from/to terminal bits
    ``[terminal_lo, terminal_lo + width)`` of port ``terminal``,
    ``latency`` cycles apart.
    """

    root_lo: int
    width: int
    terminal: str
    terminal_lo: int
    latency: int

    @property
    def root_hi(self) -> int:
        return self.root_lo + self.width

    def terminal_slice(self) -> Slice:
        return Slice(self.terminal, self.terminal_lo, self.width)

    def to_dict(self) -> Dict[str, object]:
        return {
            "root_lo": self.root_lo,
            "width": self.width,
            "terminal": self.terminal,
            "terminal_lo": self.terminal_lo,
            "latency": self.latency,
        }

    def __str__(self) -> str:
        return f"[{self.root_hi - 1}:{self.root_lo}] <= {self.terminal_slice()} ({self.latency}cy)"


@dataclass
class SliceProof:
    """The outcome of re-proving one transparency path at the bit level."""

    direction: str
    root: Slice
    claimed_latency: int
    derived_latency: int
    proved_width: int
    segments: List[ProvenanceSegment]
    reasons: List[str]

    @property
    def proved(self) -> bool:
        return not self.reasons and self.proved_width == self.root.width

    def to_dict(self) -> Dict[str, object]:
        return {
            "direction": self.direction,
            "root": str(self.root),
            "claimed_latency": self.claimed_latency,
            "derived_latency": self.derived_latency,
            "claimed_width": self.root.width,
            "proved_width": self.proved_width,
            "proved": self.proved,
            "segments": [segment.to_dict() for segment in self.segments],
            "reasons": list(self.reasons),
        }


def _coverage_problems(
    piece: Slice, covered: List[Tuple[int, int]]
) -> Tuple[List[str], List[str]]:
    """Missing and overlapping sub-ranges of ``piece`` as slice strings."""
    counts = [0] * piece.width
    for lo, hi in covered:
        for offset in range(lo, hi):
            counts[offset] += 1

    def ranges(predicate) -> List[str]:
        found: List[str] = []
        start: Optional[int] = None
        for offset in range(piece.width + 1):
            hit = offset < piece.width and predicate(counts[offset])
            if hit and start is None:
                start = offset
            elif not hit and start is not None:
                found.append(str(Slice(piece.comp, piece.lo + start, offset - start)))
                start = None
        return found

    return ranges(lambda c: c == 0), ranges(lambda c: c > 1)


def prove_path(circuit, path, known_arcs: Optional[Dict[Tuple, object]] = None) -> SliceProof:
    """Re-derive ``path``'s transparency claim as a bit-exact segment map.

    ``known_arcs`` (arc key -> arc), when given, restricts the proof to
    arcs that exist in the version's RCG -- a tree referencing an edge
    the connectivity graph never had is refuted outright.
    """
    backwards = path.direction == "justify"
    terminal_kind = ComponentKind.INPUT if backwards else ComponentKind.OUTPUT
    reasons: List[str] = []

    def check_slice(piece: Slice) -> bool:
        try:
            component = circuit.get(piece.comp)
        except ReproError:
            reasons.append(f"{piece} names no component of {circuit.name!r}")
            return False
        if piece.hi > component.width:
            reasons.append(
                f"{piece} exceeds the {component.width}-bit width of {piece.comp!r}"
            )
            return False
        return True

    def walk(node) -> Tuple[List[ProvenanceSegment], int]:
        """Segments in node-local offsets, plus the node's derived latency."""
        piece = node.piece
        if not check_slice(piece):
            return [], 0
        if not node.branches:
            if circuit.get(piece.comp).kind is not terminal_kind:
                reasons.append(
                    f"path dangles at {piece}: a {path.direction} path must "
                    f"terminate on core {terminal_kind.value} ports, not on "
                    f"{circuit.get(piece.comp).kind.value} {piece.comp!r}"
                )
                return [], 0
            return [ProvenanceSegment(0, piece.width, piece.comp, piece.lo, 0)], 0

        segments: List[ProvenanceSegment] = []
        covered: List[Tuple[int, int]] = []
        derived = 0
        for arc, sub in node.branches:
            own = arc.dest if backwards else arc.source
            far = arc.source if backwards else arc.dest
            if known_arcs is not None and arc.key() not in known_arcs:
                reasons.append(f"arc {arc} is not an edge of the circuit's RCG")
                continue
            if own.comp != piece.comp:
                reasons.append(f"arc {arc} does not touch {piece} (wrong component)")
                continue
            if far.comp != sub.piece.comp:
                reasons.append(f"arc {arc} cannot reach branch node {sub.piece}")
                continue
            if not (far.lo <= sub.piece.lo and sub.piece.hi <= far.hi):
                reasons.append(
                    f"branch slice {sub.piece} exceeds the transported slice "
                    f"{far} of arc {arc}"
                )
                continue
            lo = own.lo + (sub.piece.lo - far.lo)
            hi = lo + sub.piece.width
            if lo < piece.lo or hi > piece.hi:
                reasons.append(
                    f"arc {arc} lands on bits [{hi - 1}:{lo}] outside {piece}"
                )
                continue
            sub_segments, sub_latency = walk(sub)
            derived = max(derived, arc.latency + sub_latency)
            for segment in sub_segments:
                segments.append(
                    ProvenanceSegment(
                        root_lo=(lo - piece.lo) + segment.root_lo,
                        width=segment.width,
                        terminal=segment.terminal,
                        terminal_lo=segment.terminal_lo,
                        latency=segment.latency + arc.latency,
                    )
                )
            covered.append((lo - piece.lo, hi - piece.lo))

        missing, overlapping = _coverage_problems(piece, covered)
        for gap in missing:
            reasons.append(f"bits {gap} are not covered by any branch")
        for claim in overlapping:
            reasons.append(f"bits {claim} are claimed by more than one branch")
        return segments, derived

    local_segments, derived = walk(path.tree)
    if path.tree.piece != path.root:
        reasons.append(
            f"path root is declared as {path.root} but the tree starts at {path.tree.piece}"
        )
    if path.latency != derived and not reasons:
        reasons.append(
            f"declared latency {path.latency} but the proved segment map "
            f"derives {derived}"
        )

    segments = sorted(
        (
            ProvenanceSegment(
                root_lo=path.root.lo + segment.root_lo,
                width=segment.width,
                terminal=segment.terminal,
                terminal_lo=segment.terminal_lo,
                latency=segment.latency,
            )
            for segment in local_segments
        ),
        key=lambda s: (s.root_lo, s.width, s.terminal, s.terminal_lo, s.latency),
    )

    counts = [0] * path.root.width
    for segment in segments:
        for offset in range(segment.root_lo - path.root.lo, segment.root_hi - path.root.lo):
            if 0 <= offset < path.root.width:
                counts[offset] += 1
    proved_width = sum(1 for count in counts if count >= 1)

    return SliceProof(
        direction=path.direction,
        root=path.root,
        claimed_latency=path.latency,
        derived_latency=derived,
        proved_width=proved_width,
        segments=segments,
        reasons=reasons,
    )
