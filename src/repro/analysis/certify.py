"""Machine-checkable transparency certificates.

:func:`certify_soc` runs the slice-provenance prover
(:mod:`repro.analysis.provenance`) and the mux-select consistency
solver (:mod:`repro.analysis.muxsat`) over **every** transparency path
of every version of every testable core, then composes the per-core
proofs across the interconnect: a chip-level test plan's access routes
(deliveries and observations) are certified only when every
transparency usage they lean on is itself a proved path of the selected
version.  The result is a :class:`Certificate` -- a stable JSON
artifact (``repro certify SYSTEM --json``) that downstream consumers
(lint rules, CI, the planner's strict gate) can check instead of
trusting declared version metadata.

Determinism contract: every iteration in this module is over
explicitly sorted sequences, so the same design always serializes to
byte-identical JSON (enforced by codestyle rule DET004 and the
byte-stability tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.muxsat import SelectSolver, check_path_selects
from repro.analysis.provenance import SliceProof, prove_path
from repro.errors import LintError, ReproError
from repro.obs import METRICS, profile_section
from repro.rtl.types import Slice
from repro.transparency.rcg import RCG

CERTIFICATE_SCHEMA_VERSION = 1
CERTIFICATE_KIND = "repro-certificate"

#: sentinel: caller supplied no HSCAN plan, so fall back to the arcs the
#: version itself recorded (weaker -- see :func:`fresh_known_arcs`)
_TRUST_DECLARED = object()


def fresh_known_arcs(circuit, version, hscan) -> Dict[Tuple, "object"]:
    """Re-extract the admissible arc set from the *actual* netlist.

    The RCG stored on a :class:`~repro.transparency.versions.CoreVersion`
    was computed at generation time; if the shipped circuit has since
    diverged (a tampered or mis-packaged core), its declared arcs can be
    phantoms.  Proofs must therefore admit only arcs backed by the
    circuit in hand:

    * structural arcs re-derived by :meth:`RCG.from_circuit` -- plus any
      HSCAN-plan arc that is an offset-aligned sub-slice of one (split
      scan units ride real wires);
    * the version's own added bypass muxes, which are materialized by
      ``apply_transparency_path`` and so exist by construction.

    HSCAN-plan arcs with *no* structural backing are dropped: the plan
    is generation-time metadata and must not vouch for wiring the
    netlist no longer has.
    """
    structural = RCG.from_circuit(circuit, None).arcs

    def backed(arc) -> bool:
        for real in structural:
            if (
                real.mux_path == arc.mux_path
                and real.source.comp == arc.source.comp
                and real.dest.comp == arc.dest.comp
                and real.source.lo <= arc.source.lo
                and arc.source.hi <= real.source.hi
                and real.dest.lo <= arc.dest.lo
                and arc.dest.hi <= real.dest.hi
                and arc.source.lo - real.source.lo == arc.dest.lo - real.dest.lo
            ):
                return True
        return False

    known = {
        arc.key(): arc
        for arc in RCG.from_circuit(circuit, hscan).arcs
        if backed(arc)
    }
    for arc in version.added_muxes:
        known[arc.key()] = arc
    return known


@dataclass
class PathProof:
    """Everything the certifier established about one transparency path."""

    core: str
    version_index: int
    version_name: str
    direction: str
    key: Tuple  # justify: (output, lo, width); propagate: (input,)
    proof: SliceProof
    solver: SelectSolver
    structure_problems: List[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        if self.direction == "justify":
            return str(Slice(self.key[0], self.key[1], self.key[2]))
        return self.key[0]

    @property
    def proved(self) -> bool:
        return (
            self.proof.proved
            and self.solver.consistent
            and not self.structure_problems
        )

    @property
    def status(self) -> str:
        return "proved" if self.proved else "refuted"

    def problems(self) -> List[str]:
        """Every refutation reason, across all three checkers."""
        found = list(self.structure_problems)
        found.extend(self.proof.reasons)
        if self.proof.proved_width < self.proof.root.width and not self.proof.reasons:
            found.append(
                f"only {self.proof.proved_width} of {self.proof.root.width} "
                f"root bits have terminal provenance"
            )
        found.extend(conflict.describe() for conflict in self.solver.conflicts)
        found.extend(self.solver.structural)
        return found

    def to_dict(self) -> Dict[str, object]:
        return {
            "core": self.core,
            "version": self.version_index,
            "version_name": self.version_name,
            "direction": self.direction,
            "port": self.label,
            "status": self.status,
            "proof": self.proof.to_dict(),
            "select_demands": [demand.to_dict() for demand in self.solver.demands],
            "select_conflicts": [c.to_dict() for c in self.solver.conflicts],
            "select_advisories": list(self.solver.advisories),
            "problems": self.problems(),
        }


@dataclass
class VersionCertificate:
    """Per-version bundle: one :class:`PathProof` per declared path."""

    core: str
    index: int
    name: str
    paths: List[PathProof]

    @property
    def proved(self) -> bool:
        return all(path.proved for path in self.paths)

    def lookup(self) -> Dict[Tuple[str, Tuple], PathProof]:
        """(direction, path key) -> proof, for plan-route certification."""
        return {(p.direction, p.key): p for p in self.paths}

    def to_dict(self) -> Dict[str, object]:
        return {
            "core": self.core,
            "index": self.index,
            "name": self.name,
            "proved": self.proved,
            "paths": [path.to_dict() for path in self.paths],
        }


@dataclass
class RouteRecord:
    """One certified (or refuted) chip-level access route of a plan."""

    core: str
    kind: str  # "delivery" | "observation"
    port: str
    latency: int
    via_test_mux: bool
    status: str  # "pin" | "certified" | "refuted"
    problems: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "core": self.core,
            "kind": self.kind,
            "port": self.port,
            "latency": self.latency,
            "via_test_mux": self.via_test_mux,
            "status": self.status,
            "problems": list(self.problems),
        }


@dataclass
class Certificate:
    """The full chip-level analysis result for one system + selection."""

    system: str
    selection: Dict[str, int]
    versions: List[VersionCertificate]
    routes: List[RouteRecord]
    plan_error: Optional[str] = None
    test_muxes: List[str] = field(default_factory=list)
    replays: Optional[List[Dict[str, object]]] = None

    def iter_paths(self) -> List[PathProof]:
        found: List[PathProof] = []
        for version in self.versions:
            found.extend(version.paths)
        return found

    def summary(self) -> Dict[str, int]:
        paths = self.iter_paths()
        return {
            "versions": len(self.versions),
            "paths": len(paths),
            "proved": sum(1 for p in paths if p.proved),
            "refuted": sum(1 for p in paths if not p.proved),
            "routes": len(self.routes),
            "routes_refuted": sum(1 for r in self.routes if r.status == "refuted"),
        }

    @property
    def certified(self) -> bool:
        """Selected versions all proved and every planned route certified."""
        for version in self.versions:
            if self.selection.get(version.core) == version.index and not version.proved:
                return False
        if self.plan_error is not None:
            return False
        return all(route.status != "refuted" for route in self.routes)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": CERTIFICATE_KIND,
            "schema": CERTIFICATE_SCHEMA_VERSION,
            "system": self.system,
            "selection": {name: self.selection[name] for name in sorted(self.selection)},
            "certified": self.certified,
            "summary": self.summary(),
            "versions": [version.to_dict() for version in self.versions],
            "routes": [route.to_dict() for route in self.routes],
            "plan_error": self.plan_error,
            "test_muxes": list(self.test_muxes),
        }
        if self.replays is not None:
            payload["replays"] = self.replays
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def diagnostics(self, escalate: bool = False) -> List:
        """Render the certificate as lint diagnostics (see rules_analysis).

        ``escalate=True`` (the ``repro certify`` CLI) reports
        refutations that poison the *selected* configuration -- a
        refuted path in a selected version, a refuted route, a failed
        plan -- as ERROR instead of the rules' default WARNING.
        """
        from repro.lint.diagnostics import Diagnostic, Severity, location

        found: List = []
        for proof in self.iter_paths():
            where = location(("core", proof.core), ("version", proof.version_index))
            selected = self.selection.get(proof.core) == proof.version_index
            if not proof.proved:
                conflict = bool(proof.solver.conflicts or proof.solver.structural)
                rule = "analysis.mux-conflict" if conflict else "analysis.slice-provenance"
                reasons = proof.problems()
                found.append(
                    Diagnostic(
                        rule=rule,
                        severity=Severity.ERROR if escalate and selected else Severity.WARNING,
                        location=where,
                        message=(
                            f"{proof.direction} path for {proof.label} is refuted: "
                            + "; ".join(reasons[:3])
                            + ("; ..." if len(reasons) > 3 else "")
                        ),
                        hint=(
                            "the declared transparency mode cannot transport this "
                            "slice; regenerate the version with "
                            "repro.transparency.generate_versions (Core.from_circuit "
                            "does this) or select a different version"
                        ),
                    )
                )
            for advisory in proof.solver.advisories:
                found.append(
                    Diagnostic(
                        rule="analysis.select-sharing",
                        severity=Severity.INFO,
                        location=where,
                        message=(
                            f"{proof.direction} path for {proof.label} drives a "
                            f"shared select net both ways: {advisory}"
                        ),
                        hint=(
                            "realizable in test mode (per-mux tsel overrides "
                            "decouple the shared net) but costs one extra select "
                            "override mux"
                        ),
                    )
                )
        if self.plan_error is not None:
            found.append(
                Diagnostic(
                    rule="analysis.access-route",
                    severity=Severity.ERROR if escalate else Severity.WARNING,
                    location=location(("system", self.system)),
                    message=f"no test plan exists for this selection: {self.plan_error}",
                    hint="fix the planning failure before trusting TAT/area numbers",
                )
            )
        for route in self.routes:
            where = location(("core", route.core), (route.kind, route.port))
            if route.status == "refuted":
                found.append(
                    Diagnostic(
                        rule="analysis.access-route",
                        severity=Severity.ERROR if escalate else Severity.WARNING,
                        location=where,
                        message=(
                            f"{route.kind} route for {route.core}.{route.port} leans "
                            f"on unproved transparency: " + "; ".join(route.problems[:3])
                        ),
                        hint=(
                            "the plan counts cycles through a path the certifier "
                            "refuted; regenerate versions or change the selection"
                        ),
                    )
                )
        return found


# ----------------------------------------------------------------------
def certify_version(
    circuit, version, core_name: Optional[str] = None, hscan=_TRUST_DECLARED
) -> VersionCertificate:
    """Prove (or refute) every declared path of one transparency version.

    Pass the core's ``hscan`` plan (even ``None``) to have the admissible
    arc set re-extracted from ``circuit`` via :func:`fresh_known_arcs`;
    without it the version's recorded RCG is trusted, which cannot catch
    a netlist that diverged after version generation.
    """
    core_name = core_name or version.core
    if hscan is _TRUST_DECLARED:
        known_arcs = {arc.key(): arc for arc in version.rcg.arcs}
    else:
        known_arcs = fresh_known_arcs(circuit, version, hscan)
    proofs: List[PathProof] = []

    def examine(direction: str, key: Tuple, path) -> None:
        structure: List[str] = []
        if path.direction != direction:
            structure.append(
                f"stored in the {direction} table but declares direction "
                f"{path.direction!r}"
            )
        if direction == "justify":
            declared_root = Slice(key[0], key[1], key[2])
            if path.root != declared_root:
                structure.append(
                    f"keyed as {declared_root} but the path root is {path.root}"
                )
        elif path.root.comp != key[0]:
            structure.append(
                f"keyed as input {key[0]!r} but the path root is {path.root}"
            )
        tree_arcs = frozenset(arc.key() for arc in path.tree.walk_arcs())
        if frozenset(path.arcs_used) != tree_arcs:
            structure.append(
                "declared resource set (arcs_used) disagrees with the path tree"
            )
        if sorted(map(str, path.terminals)) != sorted(map(str, path.tree.walk_terminals())):
            structure.append(
                "declared terminal list disagrees with the path tree's leaves"
            )
        proofs.append(
            PathProof(
                core=core_name,
                version_index=version.index,
                version_name=version.name,
                direction=direction,
                key=key,
                proof=prove_path(circuit, path, known_arcs=known_arcs),
                solver=check_path_selects(circuit, path),
                structure_problems=structure,
            )
        )

    for key in sorted(version.justify_paths):
        examine("justify", key, version.justify_paths[key])
    for port in sorted(version.propagate_paths):
        examine("propagate", (port,), version.propagate_paths[port])

    certificate = VersionCertificate(
        core=core_name, index=version.index, name=version.name, paths=proofs
    )
    METRICS.counter("analysis.paths.proved").inc(sum(1 for p in proofs if p.proved))
    METRICS.counter("analysis.paths.refuted").inc(sum(1 for p in proofs if not p.proved))
    METRICS.counter("analysis.mux.conflicts").inc(
        sum(len(p.solver.conflicts) for p in proofs)
    )
    return certificate


def certify_plan(plan, proofs_by_version: Dict[Tuple[str, int], VersionCertificate]) -> List[RouteRecord]:
    """Certify every access route of a built plan against path proofs.

    A usage key ``(core, "justify", (out, lo, width))`` or
    ``(core, "propagate", port)`` is certified when the selected
    version of that core carries a *proved* path under exactly that
    key -- composition across the interconnect is then sound because
    the planner already matched slice widths net by net.
    """
    lookups: Dict[Tuple[str, int], Dict[Tuple[str, Tuple], PathProof]] = {
        spot: certificate.lookup() for spot, certificate in sorted(proofs_by_version.items())
    }

    def usage_problems(usages) -> List[str]:
        problems: List[str] = []
        for used_core, direction, used_key in sorted(usages):
            spot = (used_core, plan.selection.get(used_core, 0))
            table = lookups.get(spot, {})
            key = used_key if direction == "justify" else (used_key,)
            proof = table.get((direction, key))
            if proof is None:
                problems.append(
                    f"plan uses {direction} of {used_core} port "
                    f"{key[0]} but the selected version declares no such path"
                )
            elif not proof.proved:
                problems.append(
                    f"{direction} path of {used_core} for {proof.label} is refuted: "
                    + "; ".join(proof.problems()[:2])
                )
        return problems

    routes: List[RouteRecord] = []
    for core_name in sorted(plan.core_plans):
        core_plan = plan.core_plans[core_name]
        for delivery in sorted(
            core_plan.deliveries, key=lambda d: (d.port, d.latency)
        ):
            problems = usage_problems(delivery.usages)
            if delivery.via_test_mux or (not delivery.usages and delivery.latency == 0):
                status = "pin"
            else:
                status = "refuted" if problems else "certified"
            routes.append(
                RouteRecord(
                    core=core_name,
                    kind="delivery",
                    port=delivery.port,
                    latency=delivery.latency,
                    via_test_mux=delivery.via_test_mux,
                    status=status,
                    problems=problems,
                )
            )
        for observation in sorted(
            core_plan.observations, key=lambda o: (o.port, o.lo, o.width, o.latency)
        ):
            problems = usage_problems(observation.usages)
            if observation.via_test_mux or (
                not observation.usages and observation.latency == 0
            ):
                status = "pin"
            else:
                status = "refuted" if problems else "certified"
            routes.append(
                RouteRecord(
                    core=core_name,
                    kind="observation",
                    port=str(Slice(observation.port, observation.lo, observation.width)),
                    latency=observation.latency,
                    via_test_mux=observation.via_test_mux,
                    status=status,
                    problems=problems,
                )
            )
    refuted = sum(1 for route in routes if route.status == "refuted")
    METRICS.counter("analysis.routes.certified").inc(len(routes) - refuted)
    METRICS.counter("analysis.routes.refuted").inc(refuted)
    return routes


def certify_soc(soc, selection: Optional[Dict[str, int]] = None) -> Certificate:
    """Certify every version of every testable core, then the plan's routes."""
    with profile_section("analysis.certify", soc=soc.name) as section:
        if selection is None:
            selection = {core.name: 0 for core in soc.testable_cores()}
        versions: List[VersionCertificate] = []
        proofs_by_version: Dict[Tuple[str, int], VersionCertificate] = {}
        for core in sorted(soc.testable_cores(), key=lambda c: c.name):
            for version in core.versions:
                certificate = certify_version(
                    core.circuit, version, core_name=core.name, hscan=core.hscan
                )
                versions.append(certificate)
                proofs_by_version[(core.name, version.index)] = certificate

        routes: List[RouteRecord] = []
        plan_error: Optional[str] = None
        test_muxes: List[str] = []
        try:
            from repro.soc.plan import plan_soc_test

            plan = plan_soc_test(soc, selection=dict(selection), strict=False)
        except ReproError as error:
            plan_error = str(error)
        else:
            routes = certify_plan(plan, proofs_by_version)
            test_muxes = sorted(str(mux) for mux in plan.test_muxes)

        result = Certificate(
            system=soc.name,
            selection=dict(selection),
            versions=versions,
            routes=routes,
            plan_error=plan_error,
            test_muxes=test_muxes,
        )
        METRICS.counter("analysis.certificates").inc()
        summary = result.summary()
        section.set(
            paths=summary["paths"],
            proved=summary["proved"],
            refuted=summary["refuted"],
            routes=summary["routes"],
        )
    return result


def strict_gate_access(
    soc,
    selection: Optional[Dict[str, int]] = None,
    gate: str = "plan_soc_test(strict=True)",
) -> None:
    """Refuse to plan on refuted transparency (the proof-backed strict gate).

    Only the *selected* version of each core is proved here (the full
    certificate, including route composition, is the job of
    ``repro certify``); a refuted path raises :class:`LintError` before
    any planning compute is spent.
    """
    if selection is None:
        selection = {core.name: 0 for core in soc.testable_cores()}
    refuted: List[str] = []
    for core in sorted(soc.testable_cores(), key=lambda c: c.name):
        version = core.version(selection.get(core.name, 0))
        certificate = certify_version(
            core.circuit, version, core_name=core.name, hscan=core.hscan
        )
        for proof in certificate.paths:
            if not proof.proved:
                reasons = proof.problems()
                refuted.append(
                    f"core {core.name} version {version.index}: {proof.direction} "
                    f"path for {proof.label}: " + "; ".join(reasons[:2])
                )
    if refuted:
        preview = "; ".join(refuted[:3])
        raise LintError(
            f"{gate}: transparency certifier refuted {len(refuted)} "
            f"path(s) in the selected versions: {preview}"
        )
