"""Structural validator for ``repro-certificate`` JSON artifacts.

CI runs ``python -m repro.analysis.schema cert-*.json`` after
``repro certify --json`` to catch schema drift before an artifact is
uploaded.  Exit codes follow the repo convention: 0 all valid, 1 at
least one invalid, 2 usage error (unreadable file / not JSON).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

from repro.analysis.certify import CERTIFICATE_KIND, CERTIFICATE_SCHEMA_VERSION

_TOP_KEYS = (
    "kind",
    "schema",
    "system",
    "selection",
    "certified",
    "summary",
    "versions",
    "routes",
    "plan_error",
    "test_muxes",
)
_SUMMARY_KEYS = ("versions", "paths", "proved", "refuted", "routes", "routes_refuted")
_PATH_KEYS = (
    "core",
    "version",
    "version_name",
    "direction",
    "port",
    "status",
    "proof",
    "select_demands",
    "select_conflicts",
    "select_advisories",
    "problems",
)
_ROUTE_KEYS = ("core", "kind", "port", "latency", "via_test_mux", "status", "problems")


def validate_certificate(payload: Dict) -> List[str]:
    """Return every structural problem found (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["certificate must be a JSON object"]
    for key in _TOP_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems
    if payload["kind"] != CERTIFICATE_KIND:
        problems.append(f"kind is {payload['kind']!r}, expected {CERTIFICATE_KIND!r}")
    if payload["schema"] != CERTIFICATE_SCHEMA_VERSION:
        problems.append(
            f"schema is {payload['schema']!r}, expected {CERTIFICATE_SCHEMA_VERSION}"
        )
    summary = payload["summary"]
    if not isinstance(summary, dict):
        problems.append("summary must be an object")
    else:
        for key in _SUMMARY_KEYS:
            if not isinstance(summary.get(key), int):
                problems.append(f"summary.{key} must be an integer")
    paths = 0
    proved = 0
    if not isinstance(payload["versions"], list):
        problems.append("versions must be a list")
    else:
        for position, version in enumerate(payload["versions"]):
            where = f"versions[{position}]"
            if not isinstance(version, dict):
                problems.append(f"{where} must be an object")
                continue
            for key in ("core", "index", "name", "proved", "paths"):
                if key not in version:
                    problems.append(f"{where} is missing {key!r}")
            for spot, path in enumerate(version.get("paths", [])):
                paths += 1
                for key in _PATH_KEYS:
                    if key not in path:
                        problems.append(f"{where}.paths[{spot}] is missing {key!r}")
                if path.get("status") == "proved":
                    proved += 1
                    if path.get("problems"):
                        problems.append(
                            f"{where}.paths[{spot}] is proved but lists problems"
                        )
                elif path.get("status") == "refuted":
                    if not path.get("problems"):
                        problems.append(
                            f"{where}.paths[{spot}] is refuted without problems"
                        )
                else:
                    problems.append(
                        f"{where}.paths[{spot}] has unknown status "
                        f"{path.get('status')!r}"
                    )
    if not isinstance(payload["routes"], list):
        problems.append("routes must be a list")
    else:
        for position, route in enumerate(payload["routes"]):
            for key in _ROUTE_KEYS:
                if key not in route:
                    problems.append(f"routes[{position}] is missing {key!r}")
            if route.get("status") not in ("pin", "certified", "refuted"):
                problems.append(
                    f"routes[{position}] has unknown status {route.get('status')!r}"
                )
    if isinstance(summary, dict) and not problems:
        if summary.get("paths") != paths:
            problems.append(
                f"summary.paths is {summary.get('paths')} but {paths} paths listed"
            )
        if summary.get("proved") != proved:
            problems.append(
                f"summary.proved is {summary.get('proved')} but {proved} proved"
            )
        refuted_routes = sum(
            1 for route in payload["routes"] if route.get("status") == "refuted"
        )
        if summary.get("routes_refuted") != refuted_routes:
            problems.append(
                f"summary.routes_refuted is {summary.get('routes_refuted')} "
                f"but {refuted_routes} routes are refuted"
            )
    return problems


def main(argv: List[str] | None = None) -> int:
    names = sys.argv[1:] if argv is None else argv
    if not names:
        print("usage: python -m repro.analysis.schema CERT.json [...]", file=sys.stderr)
        return 2
    bad = 0
    for name in names:
        try:
            with open(name, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"{name}: cannot load: {error}", file=sys.stderr)
            return 2
        problems = validate_certificate(payload)
        if problems:
            bad += 1
            for problem in problems:
                print(f"{name}: {problem}", file=sys.stderr)
        else:
            summary = payload.get("summary", {})
            print(
                f"{name}: ok ({summary.get('paths', 0)} paths, "
                f"{summary.get('proved', 0)} proved)"
            )
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
