"""Mux-select consistency checking for transparency paths.

Every :class:`~repro.transparency.rcg.TransArc` carries a ``mux_path``:
the ``(mux, leg)`` control assignments that steer the transported slice
through the datapath.  A path tree is only *realizable* as one mode if
those demands are mutually consistent.  Two demands conflict hard when
they force the **same mux** onto two different legs in the same cycle --
no select encoding satisfies both, and
:func:`~repro.transparency.apply.apply_transparency_path` would refuse
the path outright.

Demands on *different* muxes that happen to share a select net are a
softer matter: the transparency-mode wrapper inserts a per-mux
``tsel_`` override, so disagreeing values on a shared select line are
still realizable in test mode.  The solver records those as advisories
(surfaced by the ``analysis.select-sharing`` lint rule at INFO), not
refutations.

The check is a unit-propagation pass over two variable families --
``("mux", name)`` for whole-mux leg choices and ``("bit", comp, index)``
for the select-net bits each choice implies -- with no search and no
external solver: transparency paths only ever *assert* literals, so
propagation alone decides consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.rtl.components import Mux
from repro.rtl.types import expr_parts


@dataclass(frozen=True)
class SelectDemand:
    """One ``(mux, leg)`` assignment demanded along a path, with its cause."""

    mux: str
    leg: int
    cause: str

    def to_dict(self) -> Dict[str, object]:
        return {"mux": self.mux, "leg": self.leg, "cause": self.cause}


@dataclass(frozen=True)
class SelectConflict:
    """Two irreconcilable demands on the same select variable."""

    variable: str
    value_a: int
    cause_a: str
    value_b: int
    cause_b: str

    def describe(self) -> str:
        return (
            f"{self.variable} is forced to {self.value_a} by {self.cause_a} "
            f"and to {self.value_b} by {self.cause_b}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "variable": self.variable,
            "value_a": self.value_a,
            "cause_a": self.cause_a,
            "value_b": self.value_b,
            "cause_b": self.cause_b,
        }


@dataclass
class SelectSolver:
    """Unit-propagation over the select demands of one candidate mode."""

    circuit: object
    demands: List[SelectDemand] = field(default_factory=list)
    conflicts: List[SelectConflict] = field(default_factory=list)
    advisories: List[str] = field(default_factory=list)
    structural: List[str] = field(default_factory=list)
    _values: Dict[Tuple, Tuple[int, str]] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return not self.conflicts and not self.structural

    def _assign(self, variable: Tuple, description: str, value: int, cause: str, hard: bool) -> None:
        held = self._values.get(variable)
        if held is None:
            self._values[variable] = (value, cause)
            return
        held_value, held_cause = held
        if held_value == value:
            return
        conflict = SelectConflict(description, held_value, held_cause, value, cause)
        if hard:
            self.conflicts.append(conflict)
        else:
            self.advisories.append(conflict.describe())

    def demand(self, mux_name: str, leg: int, cause: str) -> None:
        """Assert ``mux_name`` = leg ``leg`` and propagate onto select bits."""
        self.demands.append(SelectDemand(mux_name, leg, cause))
        try:
            mux = self.circuit.get(mux_name)
        except ReproError:
            self.structural.append(f"{cause} steers through unknown mux {mux_name!r}")
            return
        if not isinstance(mux, Mux):
            self.structural.append(
                f"{cause} steers through {mux_name!r}, which is a "
                f"{mux.kind.value}, not a mux"
            )
            return
        if not 0 <= leg < len(mux.inputs):
            self.structural.append(
                f"{cause} demands leg {leg} of mux {mux_name!r}, which has "
                f"only {len(mux.inputs)} legs"
            )
            return
        self._assign(("mux", mux_name), f"mux {mux_name!r}", leg, cause, hard=True)
        if mux.select is None:
            return
        bits = [
            (part.comp, part.lo + offset)
            for part in expr_parts(mux.select)
            for offset in range(part.width)
        ]
        for position, (comp, index) in enumerate(bits[: mux.select_width]):
            self._assign(
                ("bit", comp, index),
                f"select line {comp}[{index}]",
                (leg >> position) & 1,
                cause,
                hard=False,
            )


def check_path_selects(circuit, path) -> SelectSolver:
    """Collect and propagate every select demand of ``path``'s tree."""
    solver = SelectSolver(circuit)

    def visit(node) -> None:
        for arc, sub in node.branches:
            for mux_name, leg in arc.mux_path:
                solver.demand(mux_name, leg, f"arc {arc}")
            visit(sub)

    visit(path.tree)
    return solver
