"""Differential replay: certified paths versus the gate-level simulator.

The certifier's identity anchor: whenever :mod:`repro.analysis` says a
transparency path is *proved*, wiring that path's test mode into the
core (:func:`~repro.transparency.apply.apply_transparency_path`),
elaborating to gates, and clocking random data words through the
declared mode sequence must show every proved segment transporting its
bits verbatim -- and whenever the certifier *refutes* a path, the same
replay must either fail to transport or the mode must be unrealizable
outright.  :func:`replay_soc` runs this bargain over every version of
every core of a system.

Replay drives the proof's own segment map, not the path's summary
claim: each trial picks an independent random word per terminal port
(plus random noise on every uninvolved input), holds them constant
through the freeze schedule, and probes after exactly the declared
latency.  Holding stimulus constant makes mixed-latency segment maps
sound: any segment's data is still in place at the final probe cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.provenance import SliceProof, prove_path
from repro.elaborate import elaborate
from repro.errors import TransparencyError
from repro.gates import SequentialSimulator
from repro.obs import METRICS, profile_section
from repro.transparency.apply import apply_transparency_path


@dataclass
class ReplayResult:
    """Outcome of replaying one path on the gate-level simulator."""

    core: str
    version_index: int
    direction: str
    port: str
    latency: int
    trials: int
    ok: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "core": self.core,
            "version": self.version_index,
            "direction": self.direction,
            "port": self.port,
            "latency": self.latency,
            "trials": self.trials,
            "ok": self.ok,
            "detail": self.detail,
        }


def _stimulus_words(elab, app, stimulus: Dict[str, int], step: int) -> Dict[str, int]:
    """Flatten per-port stimulus into the simulator's per-gate input map."""
    words = {}
    for gate in elab.netlist.inputs:
        port, _, bit = gate.name.rpartition(".")
        words[gate.name] = (stimulus.get(port, 0) >> int(bit)) & 1
    words[f"{app.mode_input}.0"] = 1
    for register, hold_name in sorted(app.hold_inputs.items()):
        words[f"{hold_name}.0"] = 1 if step in app.schedule.get(register, set()) else 0
    return words


def _run_mode(elab, app, stimulus: Dict[str, int], latency: int) -> Dict[str, int]:
    """Clock one mode sequence; return the final-cycle output gate values."""
    sim = SequentialSimulator(elab.netlist)
    for step in range(latency):
        sim.step(_stimulus_words(elab, app, stimulus, step))
    # outputs returned by a step reflect the state entering it
    return sim.step(_stimulus_words(elab, app, stimulus, latency))


def _port_word(outputs: Dict[str, int], port: str, width: int) -> int:
    return sum((outputs[f"{port}.{i}"] & 1) << i for i in range(width))


def _segment_mismatches(proof: SliceProof, stimulus: Dict[str, int], outputs: Dict[str, int]) -> List[str]:
    """Check every proved segment against one finished mode sequence."""
    problems: List[str] = []
    for segment in proof.segments:
        if proof.direction == "justify":
            observed_port, observed_lo = proof.root.comp, segment.root_lo
            expected_word = stimulus.get(segment.terminal, 0) >> segment.terminal_lo
        else:
            observed_port, observed_lo = segment.terminal, segment.terminal_lo
            expected_word = stimulus.get(proof.root.comp, 0) >> segment.root_lo
        mask = (1 << segment.width) - 1
        expected = expected_word & mask
        observed = sum(
            (outputs[f"{observed_port}.{observed_lo + i}"] & 1) << i
            for i in range(segment.width)
        )
        if observed != expected:
            problems.append(
                f"segment {segment}: observed {observed:#x}, expected {expected:#x}"
            )
    return problems


def _random_stimulus(circuit, app, rng: random.Random) -> Dict[str, int]:
    """One random word per original circuit input (mode/holds excluded)."""
    skip = {app.mode_input} | set(app.hold_inputs.values())
    stimulus: Dict[str, int] = {}
    for port in sorted(circuit.inputs, key=lambda p: p.name):
        if port.name in skip:
            continue
        stimulus[port.name] = rng.getrandbits(port.width)
    return stimulus


def replay_path(
    circuit,
    path,
    proof: Optional[SliceProof] = None,
    core: str = "",
    version_index: int = 0,
    seed: int = 2024,
    trials: int = 2,
) -> ReplayResult:
    """Replay one *proved* path; ``ok`` iff every segment transports."""
    if proof is None:
        proof = prove_path(circuit, path)
    label = str(path.root)
    if not proof.proved:
        return ReplayResult(
            core, version_index, path.direction, label, path.latency, 0, False,
            "path is not proved; use replay_refutes for refuted paths",
        )
    try:
        app = apply_transparency_path(circuit, path)
    except TransparencyError as error:
        return ReplayResult(
            core, version_index, path.direction, label, path.latency, 0, False,
            f"proved path is unrealizable: {error}",
        )
    elab = elaborate(app.circuit)
    rng = random.Random(f"{seed}:{core}:{version_index}:{path.direction}:{label}")
    for trial in range(trials):
        stimulus = _random_stimulus(circuit, app, rng)
        outputs = _run_mode(elab, app, stimulus, path.latency)
        problems = _segment_mismatches(proof, stimulus, outputs)
        if problems:
            METRICS.counter("analysis.replay.mismatches").inc()
            return ReplayResult(
                core, version_index, path.direction, label, path.latency,
                trial + 1, False, "; ".join(problems[:3]),
            )
    METRICS.counter("analysis.replays").inc()
    return ReplayResult(
        core, version_index, path.direction, label, path.latency, trials, True
    )


def replay_refutes(
    circuit,
    path,
    proof: Optional[SliceProof] = None,
    seed: int = 2024,
) -> bool:
    """Confirm a refutation on real hardware.

    True when the declared mode is unrealizable
    (:func:`apply_transparency_path` refuses it), when a claimed-covered
    segment fails to transport -- including segments the path tree
    *claims* but the refuting proof rejected (e.g. arcs absent from the
    circuit's RCG), or when the uncovered root bits cannot be steered to
    both all-zeros and all-ones through the covered terminals.  False
    means the hardware happens to transport anyway (e.g. via a route the
    path tree never claimed) -- the refutation stands statically but is
    not observable in this replay.
    """
    if proof is None:
        proof = prove_path(circuit, path)
    try:
        app = apply_transparency_path(circuit, path)
    except TransparencyError:
        return True
    elab = elaborate(app.circuit)
    rng = random.Random(f"{seed}:refute:{path.direction}:{path.root}")
    stimulus = _random_stimulus(circuit, app, rng)
    outputs = _run_mode(elab, app, stimulus, path.latency)
    if _segment_mismatches(proof, stimulus, outputs):
        return True
    # the tree's own claims, with no admissible-arc restriction: a path
    # leaning on phantom arcs claims transport the hardware can't honor
    declared = prove_path(circuit, path)
    if _segment_mismatches(declared, stimulus, outputs):
        return True
    if proof.direction == "justify" and proof.proved_width < proof.root.width:
        # controllability: can the covered terminals place 0 and ~0 on the
        # whole root slice?  A genuinely narrowed path fails one of them.
        width = proof.root.width
        for target in (0, (1 << width) - 1):
            stimulus = {port.name: (target & 1) * ((1 << port.width) - 1)
                        for port in sorted(circuit.inputs, key=lambda p: p.name)}
            for segment in proof.segments:
                word = stimulus.get(segment.terminal, 0)
                mask = ((1 << segment.width) - 1) << segment.terminal_lo
                wanted = ((target >> (segment.root_lo - proof.root.lo))
                          & ((1 << segment.width) - 1)) << segment.terminal_lo
                stimulus[segment.terminal] = (word & ~mask) | wanted
            outputs = _run_mode(elab, app, stimulus, path.latency)
            observed = _port_word(outputs, proof.root.comp, circuit.get(proof.root.comp).width)
            root_mask = ((1 << width) - 1) << proof.root.lo
            if (observed & root_mask) != ((target << proof.root.lo) & root_mask):
                return True
    return False


def replay_soc(soc, seed: int = 2024, trials: int = 2) -> List[ReplayResult]:
    """Replay every proved path of every version of every testable core.

    Paths are re-proved against arcs extracted from the shipped circuit
    (matching :func:`repro.analysis.certify.certify_soc`), so a path the
    certifier refutes is skipped here rather than reported as a replay
    mismatch.
    """
    from repro.analysis.certify import fresh_known_arcs

    with profile_section("analysis.replay", soc=soc.name) as section:
        results: List[ReplayResult] = []
        for core in sorted(soc.testable_cores(), key=lambda c: c.name):
            for version in core.versions:
                known_arcs = fresh_known_arcs(core.circuit, version, core.hscan)
                paths = [
                    version.justify_paths[key]
                    for key in sorted(version.justify_paths)
                ] + [
                    version.propagate_paths[port]
                    for port in sorted(version.propagate_paths)
                ]
                for path in paths:
                    proof = prove_path(core.circuit, path, known_arcs=known_arcs)
                    if not proof.proved:
                        continue
                    results.append(
                        replay_path(
                            core.circuit,
                            path,
                            proof=proof,
                            core=core.name,
                            version_index=version.index,
                            seed=seed,
                            trials=trials,
                        )
                    )
        section.set(replays=len(results), ok=sum(1 for r in results if r.ok))
    return results
