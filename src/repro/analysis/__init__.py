"""Symbolic static analysis: transparency proofs and access certificates.

Where :mod:`repro.lint` checks component-level *bounds* (Dijkstra
latency lower bounds, structural sanity), this package proves the real
thing at the bit-slice level and packages the result as a
machine-checkable artifact:

``provenance``
    slice-provenance dataflow over path trees -- which terminal bits
    provably reach which root bits, at what latency
    (:func:`prove_path`).
``muxsat``
    unit-propagation consistency of the ``mux_path`` select demands
    along a path (:func:`check_path_selects`); same-mux double-leg
    demands are hard refutations, shared-select-net disagreements are
    advisories.
``certify``
    per-version and chip-level composition into a stable JSON
    :class:`Certificate` (:func:`certify_soc`), plus the proof-backed
    planner gate :func:`strict_gate_access`.
``differential``
    the identity anchor: replay every proved path on the gate-level
    simulator (:func:`replay_soc`) -- "proved" must mean "transports".
``schema``
    structural validation of emitted certificate JSON (CI).

Everything here is deterministic by construction: iteration is over
sorted sequences only (codestyle rule DET004), so certificates are
byte-stable across runs and machines.
"""

from repro.analysis.certify import (
    CERTIFICATE_KIND,
    CERTIFICATE_SCHEMA_VERSION,
    Certificate,
    PathProof,
    RouteRecord,
    VersionCertificate,
    certify_plan,
    certify_soc,
    certify_version,
    fresh_known_arcs,
    strict_gate_access,
)
from repro.analysis.differential import (
    ReplayResult,
    replay_path,
    replay_refutes,
    replay_soc,
)
from repro.analysis.muxsat import (
    SelectConflict,
    SelectDemand,
    SelectSolver,
    check_path_selects,
)
from repro.analysis.provenance import ProvenanceSegment, SliceProof, prove_path

# NOTE: repro.analysis.schema is intentionally not imported here -- it
# runs as ``python -m repro.analysis.schema`` in CI, and importing it
# from the package __init__ would trip the double-import RuntimeWarning.

__all__ = [
    "CERTIFICATE_KIND",
    "CERTIFICATE_SCHEMA_VERSION",
    "Certificate",
    "PathProof",
    "ProvenanceSegment",
    "ReplayResult",
    "RouteRecord",
    "SelectConflict",
    "SelectDemand",
    "SelectSolver",
    "SliceProof",
    "VersionCertificate",
    "certify_plan",
    "certify_soc",
    "certify_version",
    "check_path_selects",
    "fresh_known_arcs",
    "prove_path",
    "replay_path",
    "replay_refutes",
    "replay_soc",
    "strict_gate_access",
]
