"""Tests for RTL expression types: slices, concatenation, slicing algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtl.types import Concat, Slice, concat, expr_width, slice_expr


class TestSlice:
    def test_basic_fields(self):
        s = Slice("R", 2, 4)
        assert s.hi == 6
        assert s.width == 4

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Slice("R", 0, 0)

    def test_rejects_negative_lo(self):
        with pytest.raises(ValueError):
            Slice("R", -1, 2)

    def test_sub(self):
        s = Slice("R", 2, 4)
        assert s.sub(1, 2) == Slice("R", 3, 2)

    def test_sub_out_of_range(self):
        with pytest.raises(ValueError):
            Slice("R", 0, 4).sub(2, 3)

    def test_str_single_bit(self):
        assert str(Slice("R", 3, 1)) == "R[3]"

    def test_str_range(self):
        assert str(Slice("R", 0, 8)) == "R[7:0]"


class TestConcat:
    def test_width_sums(self):
        c = Concat((Slice("A", 0, 3), Slice("B", 0, 5)))
        assert c.width == 8

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Concat(())

    def test_concat_flattens(self):
        c = concat(Slice("A", 0, 2), Concat((Slice("B", 0, 1), Slice("C", 0, 1))))
        assert expr_width(c) == 4
        assert isinstance(c, Concat)
        assert len(c.parts) == 3

    def test_concat_single_returns_slice(self):
        s = concat(Slice("A", 0, 2))
        assert isinstance(s, Slice)


class TestSliceExpr:
    def test_slice_of_slice(self):
        assert slice_expr(Slice("A", 4, 8), 2, 3) == Slice("A", 6, 3)

    def test_slice_of_concat_within_one_part(self):
        expr = Concat((Slice("A", 0, 4), Slice("B", 0, 4)))
        assert slice_expr(expr, 5, 2) == Slice("B", 1, 2)

    def test_slice_of_concat_across_parts(self):
        expr = Concat((Slice("A", 0, 4), Slice("B", 0, 4)))
        result = slice_expr(expr, 2, 4)
        assert isinstance(result, Concat)
        assert result.parts == (Slice("A", 2, 2), Slice("B", 0, 2))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            slice_expr(Slice("A", 0, 4), 2, 4)

    @given(
        lo=st.integers(min_value=0, max_value=11),
        width=st.integers(min_value=1, max_value=12),
    )
    def test_slice_width_property(self, lo, width):
        expr = Concat((Slice("A", 0, 4), Slice("B", 2, 5), Slice("C", 1, 3)))
        if lo + width > expr_width(expr):
            with pytest.raises(ValueError):
                slice_expr(expr, lo, width)
        else:
            assert expr_width(slice_expr(expr, lo, width)) == width
