"""Tests for the Prometheus-style text exposition (:mod:`repro.obs.expo`)."""

import pytest

from repro.obs.expo import (
    ExpositionError,
    main,
    metric_name,
    parse_exposition,
    render_exposition,
    summary_from_series,
)
from repro.obs.metrics import MetricsRegistry


def snapshot_with_everything():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(7)
    registry.counter("exec.pool.spans_shipped").inc(3)
    registry.gauge("serve.queue.depth").set(2)
    hist = registry.histogram("serve.queue_wait")
    for value in (0.01, 0.02, 0.03, 0.04, 0.10):
        hist.observe(value)
    registry.histogram("serve.job_latency")  # stays empty
    return registry.snapshot()


class TestRender:
    def test_names_are_prometheus_legal(self):
        assert metric_name("serve.queue_wait") == "repro_serve_queue_wait"
        assert metric_name("a-b c") == "repro_a_b_c"

    def test_counters_gauges_histograms(self):
        text = render_exposition(snapshot_with_everything())
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 7" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_queue_wait summary" in text
        assert 'repro_serve_queue_wait{quantile="0.99"}' in text
        assert "repro_serve_queue_wait_count 5" in text
        # the HELP line preserves the dotted name (reversible mapping)
        assert "# HELP repro_serve_queue_wait histogram serve.queue_wait" in text

    def test_empty_histogram_renders_count_sum_only(self):
        text = render_exposition(snapshot_with_everything())
        assert "repro_serve_job_latency_count 0" in text
        assert "repro_serve_job_latency_sum 0.0" in text
        assert 'repro_serve_job_latency{' not in text  # no quantile of nothing


class TestParseRoundTrip:
    def test_round_trip(self):
        text = render_exposition(snapshot_with_everything())
        parsed = parse_exposition(text)
        requests = parsed["repro_serve_requests"]
        assert requests["type"] == "counter"
        assert requests["samples"] == [({}, 7.0)]
        wait = parsed["repro_serve_queue_wait"]
        assert wait["type"] == "summary"
        # _sum/_count fold into the base series
        kinds = {labels.get("__series__") for labels, _ in wait["samples"]}
        assert {"sum", "count"} <= kinds

    def test_summary_reconstruction(self):
        parsed = parse_exposition(render_exposition(snapshot_with_everything()))
        summary = summary_from_series(parsed, "serve.queue_wait")
        assert summary["count"] == 5
        assert summary["p99"] == pytest.approx(0.10)
        empty = summary_from_series(parsed, "serve.job_latency")
        assert empty["count"] == 0 and empty["p99"] is None
        assert summary_from_series(parsed, "not.exposed") is None

    @pytest.mark.parametrize("bad", [
        "repro_x\n",                      # sample without a value
        "repro_x{quantile=0.5} 1\n",      # unquoted label value
        "repro_x oops\n",                 # non-numeric value
        "# HELP repro_x\n",               # HELP without text
        "# TYPE repro_x widget\n",        # unknown type
    ])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ExpositionError):
            parse_exposition(bad)

    def test_blank_lines_and_comments_skipped(self):
        parsed = parse_exposition("\n# a free comment\nrepro_x 1\n")
        assert parsed["repro_x"]["samples"] == [({}, 1.0)]


class TestValidatorCli:
    def test_valid_file_ok(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text(render_exposition(snapshot_with_everything()))
        assert main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_file_exit_1(self, tmp_path, capsys):
        path = tmp_path / "bad.prom"
        path.write_text("repro_x oops\n")
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_no_args_exit_2(self):
        assert main([]) == 2
