"""Integration tests pinning the paper's worked-example numbers.

These are the strongest regression anchors of the reproduction: the
Section 3 cycle counts and the Section 5.2 latency-number arithmetic
must keep coming out of the generic pipeline exactly.
"""

import pytest

from repro.designs import build_system1
from repro.dft.tat import fscan_bscan_core_tat, hscan_vector_count
from repro.soc import plan_soc_test
from repro.soc.optimizer import SocetOptimizer


@pytest.fixture(scope="module")
def soc():
    # the paper's DISPLAY test-set size makes the worked example exact
    return build_system1(test_vectors={"DISPLAY": 105})


class TestSection3:
    def test_display_has_525_hscan_vectors(self, soc):
        display = soc.cores["DISPLAY"]
        assert display.scan_depth == 4
        assert display.hscan_vectors == hscan_vector_count(105, 4) == 525

    @pytest.mark.parametrize(
        "cpu_version,expected",
        [(0, 4728), (1, 2103), (2, 1578)],
        ids=["V1:525x9+3", "V2:525x4+3", "V3:525x3+3"],
    )
    def test_display_test_time(self, soc, cpu_version, expected):
        selection = {"CPU": cpu_version, "PREPROCESSOR": 1, "DISPLAY": 0}
        plan = plan_soc_test(soc, selection)
        assert plan.core_plans["DISPLAY"].tat == expected

    def test_fscan_bscan_comparison_number(self):
        assert fscan_bscan_core_tat(66, 20, 105) == 9115

    def test_display_cadence_components(self, soc):
        """Delivery of A: 1 cycle PREPROCESSOR + 8 cycles CPU = 9."""
        plan = plan_soc_test(soc, {"CPU": 0, "PREPROCESSOR": 1, "DISPLAY": 0})
        display_plan = plan.core_plans["DISPLAY"]
        a_delivery = next(d for d in display_plan.deliveries if d.port == "A")
        d_delivery = next(d for d in display_plan.deliveries if d.port == "D")
        assert a_delivery.latency == 9
        assert d_delivery.latency == 1
        assert display_plan.cadence == 9
        assert display_plan.flush == 3


class TestSection52:
    def test_latency_number_improvement(self, soc):
        optimizer = SocetOptimizer(soc)
        plan = plan_soc_test(soc)
        usage = plan.usage_counts()
        # (NUM, DB): twice for the DISPLAY (A and D), once for the CPU
        assert usage[("PREPROCESSOR", "justify", ("DB", 0, 8))] == 3
        # (Reset, Eoc): once, for the CPU's Interrupt
        assert usage[("PREPROCESSOR", "justify", ("Eoc", 0, 1))] == 1
        delta_tat, _ = optimizer.replacement_gain(plan, "PREPROCESSOR")
        assert delta_tat == 12  # 3 uses x (5 - 1), the paper's number

    def test_objective_i_first_pick_is_the_biggest_gain(self, soc):
        """The first replacement follows the highest latency-number gain."""
        optimizer = SocetOptimizer(soc)
        plan = plan_soc_test(soc)
        gains = {
            core.name: optimizer.replacement_gain(plan, core.name)
            for core in soc.testable_cores()
        }
        best = max(
            (name for name, g in gains.items() if g is not None),
            key=lambda name: gains[name][0],
        )
        _, trajectory = optimizer.minimize_tat(plan.chip_dft_cells + 100)
        if len(trajectory) > 1:
            first_change = [
                name
                for name in trajectory[1].selection
                if trajectory[1].selection[name] != trajectory[0].selection[name]
            ]
            assert first_change == [best]
