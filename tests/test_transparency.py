"""Tests for the RCG, transparency search, and version generation."""

import pytest

from repro.dft import insert_hscan
from repro.rtl import CircuitBuilder, OpKind, Slice
from repro.rtl.types import Concat
from repro.transparency import RCG, TransparencySearch, generate_versions


def chain_core():
    """DIN -> R1 -> R2 -> DOUT plus a bypass mux DIN -> R2."""
    b = CircuitBuilder("chain")
    din = b.input("DIN", 8)
    sel = b.input("SEL", 1)
    r1 = b.register("R1", 8)
    r2 = b.register("R2", 8)
    b.drive(r1, din)
    m = b.mux("M0", [r1, din], select=sel)
    b.drive(r2, m)
    b.output("DOUT", r2)
    return b.build()


def split_core():
    """C-split register: R[7:4] <- A, R[3:0] <- S <- A ; R -> OUT.

    Justifying OUT requires both halves; the A-half arrives one cycle
    before the S-half, so A's data must be frozen one cycle.
    """
    b = CircuitBuilder("split")
    a = b.input("A", 8)
    s = b.register("S", 4)
    r = b.register("R", 8)
    b.drive(s, a.sub(0, 4))
    b.drive(r, Concat((Slice("S", 0, 4), a.sub(4, 4))))
    b.output("OUT", r)
    return b.build()


class TestRCG:
    def test_nodes_and_kinds(self):
        rcg = RCG.from_circuit(chain_core())
        assert rcg.nodes["DIN"].kind == "input"
        assert rcg.nodes["R1"].kind == "register"
        assert rcg.nodes["DOUT"].kind == "output"

    def test_c_split_detection(self):
        rcg = RCG.from_circuit(split_core())
        assert rcg.nodes["R"].c_split
        assert not rcg.nodes["S"].c_split

    def test_o_split_detection(self):
        b = CircuitBuilder("osplit")
        a = b.input("A", 8)
        r = b.register("R", 8)
        lo = b.register("LO", 4)
        hi = b.register("HI", 4)
        b.drive(r, a)
        b.drive(lo, Slice("R", 0, 4))
        b.drive(hi, Slice("R", 4, 4))
        b.output("O1", lo)
        b.output("O2", hi)
        rcg = RCG.from_circuit(b.build())
        assert rcg.nodes["R"].o_split

    def test_hscan_edges_flagged(self):
        circuit = chain_core()
        plan = insert_hscan(circuit)
        rcg = RCG.from_circuit(circuit, plan)
        hscan_arcs = [a for a in rcg.arcs if a.hscan]
        assert hscan_arcs  # the chain links are HSCAN edges

    def test_output_slices_split_by_sources(self):
        b = CircuitBuilder("outsplit")
        a = b.input("A", 8)
        lo = b.register("LO", 4)
        hi = b.register("HI", 4)
        b.drive(lo, a.sub(0, 4))
        b.drive(hi, a.sub(4, 4))
        b.output("ADDR", Concat((Slice("LO", 0, 4), Slice("HI", 0, 4))))
        rcg = RCG.from_circuit(b.build())
        slices = rcg.output_slices("ADDR")
        assert [(s.lo, s.width) for s in slices] == [(0, 4), (4, 4)]


class TestSearch:
    def test_justify_simple_chain(self):
        rcg = RCG.from_circuit(chain_core())
        search = TransparencySearch(rcg)
        path = search.justify(Slice("DOUT", 0, 8))
        assert path is not None
        # best path: DIN -> R2 (bypass mux) -> DOUT = 1 cycle
        assert path.latency == 1
        assert path.terminal_ports == ["DIN"]

    def test_justify_through_two_registers(self):
        # remove the bypass by searching HSCAN-only on a plan that picked DIN->R1->R2
        circuit = chain_core()
        plan = insert_hscan(circuit)
        rcg = RCG.from_circuit(circuit, plan)
        search = TransparencySearch(rcg, hscan_only=True)
        path = search.justify(Slice("DOUT", 0, 8))
        assert path is not None
        assert path.latency in (1, 2)

    def test_propagate_reaches_output(self):
        rcg = RCG.from_circuit(chain_core())
        path = TransparencySearch(rcg).propagate(Slice("DIN", 0, 8))
        assert path is not None
        assert path.latency == 1  # DIN -> R2 (mux) -> DOUT
        assert {t.comp for t in path.terminals} == {"DOUT"}

    def test_c_split_justification_balances_with_freeze(self):
        rcg = RCG.from_circuit(split_core())
        path = TransparencySearch(rcg).justify(Slice("OUT", 0, 8))
        assert path is not None
        # A -> S (1) -> R (2) for the low half; A -> R (1) for the high half;
        # total = 2 with the high half frozen... the data of the direct branch
        # waits in A (an input; no freeze cells) -- the *register* branch is
        # longer so no register freeze is charged here.
        assert path.latency == 2

    def test_freeze_recorded_when_register_branch_early(self):
        # S (register) branch shorter than a two-register branch
        b = CircuitBuilder("freezy")
        a = b.input("A", 8)
        s = b.register("S", 4)  # A[3:0] -> S (1 cycle to R's fanin)
        t1 = b.register("T1", 4)
        t2 = b.register("T2", 4)  # A[7:4] -> T1 -> T2 (2 cycles)
        r = b.register("R", 8)
        b.drive(s, a.sub(0, 4))
        b.drive(t1, a.sub(4, 4))
        b.drive(t2, t1)
        b.drive(r, Concat((Slice("S", 0, 4), Slice("T2", 0, 4))))
        b.output("OUT", r)
        rcg = RCG.from_circuit(b.build())
        path = TransparencySearch(rcg).justify(Slice("OUT", 0, 8))
        assert path is not None
        assert path.latency == 3
        assert ("S", 1) in path.freezes

    def test_unreachable_output_returns_none(self):
        b = CircuitBuilder("blocked")
        a = b.input("A", 4)
        r1 = b.register("R1", 4)
        r2 = b.register("R2", 4)
        b.drive(r1, a)
        added = b.op("ADD", OpKind.ADD, [r1, a])
        b.drive(r2, added)
        b.output("OUT", r2)
        rcg = RCG.from_circuit(b.build())
        assert TransparencySearch(rcg).justify(Slice("OUT", 0, 4)) is None

    def test_hscan_only_restriction(self):
        circuit = chain_core()
        rcg = RCG.from_circuit(circuit)  # no plan: nothing flagged hscan
        search = TransparencySearch(rcg, hscan_only=True)
        assert search.justify(Slice("DOUT", 0, 8)) is None


class TestVersions:
    def test_versions_ordered_by_cost(self):
        versions = generate_versions(chain_core())
        costs = [v.extra_cells for v in versions]
        assert costs == sorted(costs)

    def test_version_names_sequential(self):
        versions = generate_versions(chain_core())
        assert [v.name for v in versions] == [f"Version {i+1}" for i in range(len(versions))]

    def test_edges_present_for_all_ports(self):
        versions = generate_versions(chain_core())
        v1 = versions[0]
        outputs = {e.output for e in v1.edges}
        inputs = {e.input_port for e in v1.edges}
        assert "DOUT" in outputs
        assert "DIN" in inputs

    def test_latency_improves_across_versions(self):
        """A 3-register pipeline has V1 latency 3, improvable to 1 by a mux."""
        b = CircuitBuilder("deep")
        din = b.input("DIN", 8)
        r1 = b.register("R1", 8)
        r2 = b.register("R2", 8)
        r3 = b.register("R3", 8)
        b.drive(r1, din)
        b.drive(r2, r1)
        b.drive(r3, r2)
        b.output("DOUT", r3)
        versions = generate_versions(b.build())
        first, last = versions[0], versions[-1]
        assert first.justify_latency("DOUT") == 3
        assert last.justify_latency("DOUT") == 1
        assert last.extra_cells > first.extra_cells

    def test_unmakeable_transparency_raises(self):
        from repro.errors import TransparencyError

        b = CircuitBuilder("hopeless")
        a = b.input("A", 4)
        wide = b.register("W", 8)  # wider than any input: fallback mux impossible
        r = b.register("R", 4)
        b.drive(r, a)
        added = b.op("X", OpKind.XOR, [Slice("W", 0, 4), Slice("W", 4, 4)])
        b.drive(wide, Concat((Slice("X", 0, 4), added)))
        b.output("OUT", Slice("W", 0, 8))
        with pytest.raises(TransparencyError):
            generate_versions(b.build())

    def test_combined_latency_sums_shared_resources(self):
        """Two outputs justified from the same input must transfer serially."""
        b = CircuitBuilder("shared")
        din = b.input("DIN", 4)
        r1 = b.register("R1", 4)
        r2 = b.register("R2", 4)
        b.drive(r1, din)
        b.drive(r2, din)
        b.output("O1", r1)
        b.output("O2", r2)
        versions = generate_versions(b.build())
        v = versions[0]
        combined = v.combined_justify_latency([("O1", 0, 4), ("O2", 0, 4)])
        assert combined == 2  # 1 + 1: both paths start at DIN
