"""Tests pinning the example designs to the paper's published numbers."""

import pytest

from repro.designs import (
    build_cpu,
    build_display,
    build_gcd,
    build_graphics,
    build_preprocessor,
    build_ram,
    build_rom,
    build_system1,
    build_system2,
    build_x25,
    core_builders,
    system_builders,
)
from repro.dft import insert_hscan
from repro.transparency import generate_versions


@pytest.fixture(scope="module")
def cpu_versions():
    circuit = build_cpu()
    return generate_versions(circuit, insert_hscan(circuit))


@pytest.fixture(scope="module")
def pre_versions():
    circuit = build_preprocessor()
    return generate_versions(circuit, insert_hscan(circuit))


@pytest.fixture(scope="module")
def display_prep():
    circuit = build_display()
    plan = insert_hscan(circuit)
    return circuit, plan, generate_versions(circuit, plan)


class TestCpuFigure6:
    """The CPU reproduces the paper's Figure 6 latency table exactly."""

    def test_version1_latencies(self, cpu_versions):
        v1 = cpu_versions[0]
        assert v1.justify_latency("Address", 0, 8) == 6
        assert v1.justify_latency("Address", 8, 4) == 2
        assert v1.justify_latency("Address") == 8  # D -> A(11:0) total

    def test_version2_latencies(self, cpu_versions):
        v2 = cpu_versions[1]
        assert v2.justify_latency("Address", 0, 8) == 1
        assert v2.justify_latency("Address", 8, 4) == 2
        assert v2.justify_latency("Address") == 3

    def test_version3_latencies(self, cpu_versions):
        v3 = cpu_versions[2]
        assert v3.justify_latency("Address", 0, 8) == 1
        assert v3.justify_latency("Address", 8, 4) == 1
        assert v3.justify_latency("Address") == 2

    def test_overheads_strictly_increase(self, cpu_versions):
        cells = [v.extra_cells for v in cpu_versions]
        assert cells == sorted(cells)
        assert len(set(cells)) == len(cells)

    def test_control_chains_two_cycles(self, cpu_versions):
        """Reset -> Read and Interrupt -> Write in two cycles (Section 4)."""
        v1 = cpu_versions[0]
        assert v1.propagate_paths["Reset"].latency == 2
        assert v1.propagate_paths["Interrupt"].latency == 2

    def test_data_propagates_in_six_cycles(self, cpu_versions):
        assert cpu_versions[0].propagate_paths["Data"].latency == 6


class TestPreprocessorFigure8a:
    def test_version_ladder(self, pre_versions):
        v1, v2, v3 = pre_versions
        assert v1.justify_latency("DB", 0, 8) == 5
        assert max(p.latency for k, p in v1.justify_paths.items() if k[0] == "Address") == 2
        assert v2.justify_latency("DB", 0, 8) == 1
        assert max(p.latency for k, p in v2.justify_paths.items() if k[0] == "Address") == 2
        assert v3.justify_latency("DB", 0, 8) == 1
        assert max(p.latency for k, p in v3.justify_paths.items() if k[0] == "Address") == 1

    def test_reset_to_eoc_latency_two(self, pre_versions):
        """Edge (Reset, Eoc) has latency 2 (used in the Section 5.2 example)."""
        assert pre_versions[0].justify_latency("Eoc", 0, 1) == 2

    def test_costs_increase(self, pre_versions):
        cells = [v.extra_cells for v in pre_versions]
        assert cells == sorted(cells) and len(set(cells)) == 3


class TestDisplayFigure8b:
    def test_flip_flop_and_input_counts(self, display_prep):
        circuit, _, _ = display_prep
        assert circuit.flip_flop_count() == 66  # paper: 66 flip-flops
        assert circuit.input_bit_count() == 20  # paper: 20 internal inputs

    def test_scan_depth_is_four(self, display_prep):
        _, plan, _ = display_prep
        assert plan.depth == 4  # paper: 105 x (4+1) = 525 HSCAN vectors

    def test_version1_propagate_latencies(self, display_prep):
        _, _, versions = display_prep
        v1 = versions[0]
        assert v1.propagate_paths["D"].latency == 2  # paper V1: D->OUT = 2
        assert v1.propagate_paths["A"].latency == 3  # paper V1: A->OUT = 3

    def test_no_scan_in_pins_needed(self, display_prep):
        _, plan, _ = display_prep
        assert plan.scan_in_width == 0


class TestSystemAssembly:
    def test_system1_builds_and_validates(self):
        soc = build_system1()
        assert set(soc.cores) == {"CPU", "PREPROCESSOR", "DISPLAY", "RAM", "ROM"}
        assert len(soc.testable_cores()) == 3

    def test_system2_builds_and_validates(self):
        soc = build_system2()
        assert set(soc.cores) == {"GRAPHICS", "GCD", "X25"}

    def test_memory_cores_flagged(self):
        soc = build_system1()
        assert soc.cores["RAM"].is_memory
        assert soc.cores["ROM"].is_memory
        assert not soc.cores["CPU"].is_memory

    def test_all_core_builders_validate(self):
        for name, builder in core_builders().items():
            circuit = builder()
            assert circuit.name == name
            assert circuit.flip_flop_count() > 0

    def test_registry_systems(self):
        builders = system_builders()
        assert set(builders) == {"System1", "System2", "System3", "System4"}

    def test_every_logic_core_has_versions(self):
        for soc_builder in (build_system1, build_system2):
            soc = soc_builder()
            for core in soc.testable_cores():
                assert core.version_count >= 2, core.name
                cells = [v.extra_cells for v in core.versions]
                assert cells == sorted(cells)
