"""Tests for the concurrent test-session scheduler (repro.schedule)."""

import pytest

from repro.errors import ScheduleError
from repro.rtl import CircuitBuilder
from repro.schedule import (
    ScheduledTest,
    TestItem,
    TestSchedule,
    build_test_items,
    conflict_pairs,
    get_scheduler,
    render_gantt,
    resource_set,
    schedule_plan,
)
from repro.soc import Core, Soc, plan_soc_test


def passthrough_core(name, width=8, depth=1):
    b = CircuitBuilder(name)
    din = b.input("IN", width)
    previous = din
    for i in range(depth):
        reg = b.register(f"R{i}", width)
        b.drive(reg, previous)
        previous = reg
    b.output("OUT", previous)
    return b.build()


def chain_soc(pairs=(("A", "B"),)):
    """Independent two-core chains: PI -> X(depth 2) -> Y(depth 1) -> PO."""
    soc = Soc("chains")
    for first, second in pairs:
        a = Core.from_circuit(passthrough_core(first, depth=2), test_vectors=10)
        b = Core.from_circuit(passthrough_core(second, depth=1), test_vectors=10)
        soc.add_core(a)
        soc.add_core(b)
        soc.add_input(f"PIN_{first}", 8)
        soc.add_output(f"POUT_{second}", 8)
        soc.wire(None, f"PIN_{first}", first, "IN")
        soc.wire(first, "OUT", second, "IN")
        soc.wire(second, "OUT", None, f"POUT_{second}")
    return soc


def parallel_soc(names=("A", "B", "C")):
    """Fully independent pin-attached cores."""
    soc = Soc("parallel")
    for name in names:
        soc.add_core(Core.from_circuit(passthrough_core(name), test_vectors=8))
        soc.add_input(f"PIN_{name}", 8)
        soc.add_output(f"POUT_{name}", 8)
        soc.wire(None, f"PIN_{name}", name, "IN")
        soc.wire(name, "OUT", None, f"POUT_{name}")
    return soc


class TestConflictModel:
    def test_chain_cores_conflict(self):
        plan = plan_soc_test(chain_soc())
        items = build_test_items(plan)
        assert conflict_pairs(items) == [("A", "B")]

    def test_resource_set_contents(self):
        plan = plan_soc_test(chain_soc())
        res_b = resource_set(plan, plan.core_plans["B"])
        # B is justified through A's transparency and observed at the PO
        assert ("core", "B") in res_b
        assert ("core", "A") in res_b
        assert ("pin", "in", "PIN_A") in res_b
        assert ("pin", "out", "POUT_B") in res_b
        assert any(r[0] == "xfer" and r[1] == "A" for r in res_b)

    def test_independent_chains_do_not_conflict(self):
        plan = plan_soc_test(chain_soc(pairs=(("A", "B"), ("C", "D"))))
        pairs = conflict_pairs(build_test_items(plan))
        assert pairs == [("A", "B"), ("C", "D")]

    def test_shared_pin_conflicts(self):
        soc = Soc("sharedpin")
        for name in ("A", "B"):
            soc.add_core(Core.from_circuit(passthrough_core(name), test_vectors=5))
            soc.add_output(f"POUT_{name}", 8)
            soc.wire(name, "OUT", None, f"POUT_{name}")
        soc.add_input("PIN", 8)
        soc.wire(None, "PIN", "A", "IN")
        soc.wire(None, "PIN", "B", "IN")  # one ATE channel, two cores
        plan = plan_soc_test(soc)
        assert conflict_pairs(build_test_items(plan)) == [("A", "B")]

    def test_test_mux_is_private_resource(self):
        plan = plan_soc_test(chain_soc())
        items = build_test_items(plan)
        mux_resources = {
            r for item in items for r in item.resources if r[0] == "tmux"
        }
        # chain A->B has full pin access: no muxes at all
        assert mux_resources == set()


class TestSchedulers:
    @pytest.mark.parametrize("algorithm", ["greedy", "sessions"])
    def test_parallel_cores_overlap(self, algorithm):
        plan = plan_soc_test(parallel_soc())
        schedule = plan.schedule(algorithm=algorithm)
        assert schedule.makespan < plan.total_tat
        assert schedule.makespan == max(p.tat for p in plan.core_plans.values())
        assert len(schedule.sessions()) == 1

    @pytest.mark.parametrize("algorithm", ["greedy", "sessions"])
    def test_chain_serializes(self, algorithm):
        plan = plan_soc_test(chain_soc())
        schedule = plan.schedule(algorithm=algorithm)
        assert schedule.makespan == plan.total_tat

    def test_two_chains_halve_the_time(self):
        plan = plan_soc_test(chain_soc(pairs=(("A", "B"), ("C", "D"))))
        schedule = plan.schedule()
        # the chains are identical, so they overlap perfectly
        assert schedule.makespan == plan.total_tat // 2
        assert schedule.speedup == pytest.approx(2.0)

    def test_greedy_never_worse_than_sessions(self):
        plan = plan_soc_test(chain_soc(pairs=(("A", "B"), ("C", "D"))))
        greedy = plan.schedule(algorithm="greedy")
        packed = plan.schedule(algorithm="sessions")
        assert greedy.makespan <= packed.makespan

    def test_all_cores_scheduled_once(self):
        plan = plan_soc_test(parallel_soc())
        schedule = plan.schedule()
        assert sorted(e.core for e in schedule.entries) == sorted(plan.core_plans)

    def test_scheduled_tat_property(self):
        plan = plan_soc_test(parallel_soc())
        assert plan.scheduled_tat == plan.schedule().makespan

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ScheduleError, match="unknown scheduler"):
            get_scheduler("quantum")


class TestPowerBudget:
    def test_budget_forces_staggering(self):
        plan = plan_soc_test(parallel_soc(names=("A", "B")))
        free = plan.schedule()
        activity = max(i.activity for i in build_test_items(plan))
        capped = plan.schedule(power_budget=activity)  # one core at a time
        assert capped.makespan == plan.total_tat > free.makespan
        assert capped.peak_activity <= activity

    def test_budget_below_single_core_raises(self):
        plan = plan_soc_test(parallel_soc(names=("A",)))
        with pytest.raises(ScheduleError, match="power budget"):
            plan.schedule(power_budget=1)

    @pytest.mark.parametrize("algorithm", ["greedy", "sessions"])
    def test_budget_respected_by_both_schedulers(self, algorithm):
        plan = plan_soc_test(parallel_soc())
        budget = 2 * max(i.activity for i in build_test_items(plan))
        schedule = plan.schedule(algorithm=algorithm, power_budget=budget)
        assert schedule.peak_activity <= budget


class TestValidator:
    def test_validator_catches_resource_overlap(self):
        plan = plan_soc_test(chain_soc())
        schedule = plan.schedule()
        entries = [ScheduledTest(item=e.item, start=0) for e in schedule.entries]
        bad = TestSchedule(soc_name="x", algorithm="manual", entries=entries)
        with pytest.raises(ScheduleError, match="share"):
            bad.validate()

    def test_validator_catches_power_violation(self):
        plan = plan_soc_test(parallel_soc(names=("A", "B")))
        schedule = plan.schedule()
        bad = TestSchedule(
            soc_name="x",
            algorithm="manual",
            entries=list(schedule.entries),
            power_budget=1,
        )
        with pytest.raises(ScheduleError, match="power budget"):
            bad.validate()

    def test_valid_schedule_passes(self):
        plan = plan_soc_test(chain_soc(pairs=(("A", "B"), ("C", "D"))))
        assert plan.schedule().validate() is not None


class TestBistSessions:
    def _soc_with_memory(self):
        soc = parallel_soc(names=("A",))
        ram = Core.from_circuit(passthrough_core("MEM"), test_vectors=0, is_memory=True)
        soc.add_core(ram)
        ram2 = Core.from_circuit(passthrough_core("MEM2"), test_vectors=0, is_memory=True)
        soc.add_core(ram2)
        return soc

    def test_bist_items_included(self):
        plan = plan_soc_test(self._soc_with_memory())
        items = build_test_items(plan, include_bist=True)
        kinds = {i.core: i.kind for i in items}
        assert kinds["MEM"] == "bist" and kinds["MEM2"] == "bist"
        assert kinds["A"] == "logic"

    def test_bist_sessions_share_one_controller(self):
        plan = plan_soc_test(self._soc_with_memory())
        schedule = plan.schedule(include_bist=True)
        mem = schedule.entry("MEM")
        mem2 = schedule.entry("MEM2")
        assert not mem.overlaps(mem2)  # serialized on the BIST controller
        # but BIST overlaps the (resource-disjoint) logic test
        logic = schedule.entry("A")
        assert logic.overlaps(mem) or logic.overlaps(mem2)


class TestGantt:
    def test_render_mentions_every_core(self):
        plan = plan_soc_test(parallel_soc())
        text = render_gantt(plan.schedule())
        for core in plan.core_plans:
            assert core in text
        assert "makespan" in text
        assert "session 1" in text


class TestRegisteredDesigns:
    """The acceptance check: scheduling beats the serial order on the
    parallel-topology systems and leaves the paper's chains unchanged."""

    @pytest.mark.parametrize("system", ["System3", "System4"])
    def test_makespan_strictly_below_serial(self, system):
        from repro.designs import system_builders

        plan = plan_soc_test(system_builders()[system]())
        schedule = plan.schedule().validate()
        assert schedule.makespan < plan.total_tat

    def test_system4_fully_concurrent(self):
        from repro.designs import build_system4

        plan = plan_soc_test(build_system4())
        schedule = plan.schedule()
        assert len(schedule.sessions()) == 1
        assert schedule.makespan == max(p.tat for p in plan.core_plans.values())


class TestScheduleCli:
    def test_schedule_subcommand(self, capsys):
        from repro.cli import main

        assert main(["schedule", "System4", "-p", "120"]) == 0
        out = capsys.readouterr().out
        assert "serial TAT" in out
        assert "scheduled TAT" in out
        assert "peak scan activity" in out
