"""Deliberately broken designs for exercising the lint rules.

Every fixture here violates exactly one design rule (plus whatever that
implies) and is built *without* running the construction-time
validators: circuits come from ``CircuitBuilder.circuit`` (the
unvalidated container) or are tampered with after a valid build, plans
and schedules are corrupted after construction.  None of these are
registered with the example-design registry -- ``repro lint SystemN``
never sees them.

Keep each builder minimal: the lint tests assert that the *named* rule
fires on its fixture, so an incidental second violation makes the test
ambiguous.
"""

from __future__ import annotations

import dataclasses

from repro.rtl import CircuitBuilder, OpKind, Slice
from repro.schedule import ScheduledTest, TestSchedule
from repro.soc import Core, Soc, plan_soc_test


# ----------------------------------------------------------------------
# circuit-scope fixtures (rtl.*)
# ----------------------------------------------------------------------
def comb_loop_circuit():
    """Two NOT gates feeding each other: rtl.comb-loop."""
    b = CircuitBuilder("combloop")
    din = b.input("DIN", 1)
    a = b.op("A", OpKind.NOT, [Slice("B", 0, 1)], width=1)
    b.op("B", OpKind.NOT, [a], width=1)
    b.output("O", din)
    return b.circuit()


def undriven_circuit():
    """A register that nothing drives: rtl.undriven."""
    b = CircuitBuilder("undriven")
    din = b.input("DIN", 4)
    b.register("R", 4)
    b.output("O", din)
    return b.circuit()


def width_mismatch_circuit():
    """An 8-bit register rewired to a 4-bit driver: rtl.width-mismatch."""
    b = CircuitBuilder("widths")
    din = b.input("DIN", 8)
    r = b.register("R", 8)
    b.drive(r, din)
    b.output("O", r)
    circuit = b.build()
    circuit.get("R").driver = Slice("DIN", 0, 4)
    return circuit


def unreachable_register_circuit():
    """A register fed only by itself, no reset: rtl.unreachable-reg.

    Structurally legal (the self-loop runs through a flip-flop), so this
    one survives ``build()`` -- the point of the warning rule.
    """
    b = CircuitBuilder("unreach")
    din = b.input("DIN", 4)
    r = b.register("R", 4)
    b.drive(r, r)
    b.output("O", din)
    return b.build()


# ----------------------------------------------------------------------
# SOC-scope fixtures (soc.*, trans.*)
# ----------------------------------------------------------------------
def _passthrough(name: str, width: int = 8, depth: int = 1):
    b = CircuitBuilder(name)
    previous = b.input("IN", width)
    for i in range(depth):
        reg = b.register(f"R{i}", width)
        b.drive(reg, previous)
        previous = reg
    b.output("OUT", previous)
    return b.build()


def _single_core_soc(name: str = "broken") -> Soc:
    soc = Soc(name)
    soc.add_core(Core.from_circuit(_passthrough("A"), test_vectors=4))
    soc.add_input("PIN", 8)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "A", "IN")
    soc.wire("A", "OUT", None, "POUT")
    return soc


def partially_driven_soc() -> Soc:
    """Core input with only half its bits wired: soc.input-drivers."""
    soc = Soc("halfwired")
    soc.add_core(Core.from_circuit(_passthrough("A"), test_vectors=4))
    soc.add_input("PIN", 8)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "A", "IN", width=4)
    soc.wire("A", "OUT", None, "POUT")
    return soc


def doubly_driven_soc() -> Soc:
    """Two nets landing on the same input bits: soc.input-drivers."""
    soc = _single_core_soc("doubledriver")
    soc.wire(None, "PIN", "A", "IN", width=4)
    return soc


def uncovered_input_soc() -> Soc:
    """A version whose input lost its propagate path: trans.input-propagation."""
    soc = _single_core_soc("uncovered")
    version = soc.cores["A"].versions[0]
    del version.propagate_paths["IN"]
    return soc


def unjustified_output_soc() -> Soc:
    """A version whose output slice lost its justify path: trans.output-justification."""
    soc = _single_core_soc("unjustified")
    version = soc.cores["A"].versions[0]
    key = sorted(version.justify_paths)[0]
    del version.justify_paths[key]
    return soc


def lying_latency_soc() -> Soc:
    """A propagate path claiming 0 cycles through a register: trans.latency-overrun."""
    soc = _single_core_soc("lyinglatency")
    version = soc.cores["A"].versions[0]
    path = version.propagate_paths["IN"]
    version.propagate_paths["IN"] = dataclasses.replace(path, latency=0)
    return soc


# ----------------------------------------------------------------------
# plan-scope fixtures (plan.*)
# ----------------------------------------------------------------------
def _chain_soc(name: str = "chain") -> Soc:
    """PI -> A(depth 2) -> B(depth 1) -> PO; B's test borrows A's transparency."""
    soc = Soc(name)
    soc.add_core(Core.from_circuit(_passthrough("A", depth=2), test_vectors=4))
    soc.add_core(Core.from_circuit(_passthrough("B", depth=1), test_vectors=4))
    soc.add_input("PIN", 8)
    soc.add_output("POUT", 8)
    soc.wire(None, "PIN", "A", "IN")
    soc.wire("A", "OUT", "B", "IN")
    soc.wire("B", "OUT", None, "POUT")
    return soc


def tampered_cadence_plan():
    """A core plan's cadence squeezed below its reservations: plan.reservation-overlap."""
    plan = plan_soc_test(_chain_soc("squeezedcadence"))
    victim = max(plan.core_plans.values(), key=lambda cp: cp.cadence)
    victim.cadence = 1 if victim.cadence > 1 else 0
    return plan


def mux_unrecorded_plan():
    """A delivery claiming a test-mux fallback nobody recorded: plan.mux-unrecorded."""
    plan = plan_soc_test(_chain_soc("phantommux"))
    delivery = plan.core_plans["B"].deliveries[0]
    delivery.via_test_mux = True
    return plan


def tat_inconsistent_plan():
    """Flush and scan-step counts that contradict the core: plan.tat-consistency."""
    plan = plan_soc_test(_chain_soc("cookedtat"))
    core_plan = plan.core_plans["A"]
    core_plan.scan_steps += 7
    core_plan.flush += 3
    return plan


def bad_selection_plan():
    """A selection naming a version the core does not have: plan.selection-range."""
    plan = plan_soc_test(_chain_soc("badselection"))
    plan.selection["A"] = 99
    return plan


# ----------------------------------------------------------------------
# schedule-scope fixtures (sched.*)
# ----------------------------------------------------------------------
def double_booked_schedule() -> TestSchedule:
    """Chained cores forced to start together: sched.resource-conflict."""
    plan = plan_soc_test(_chain_soc("doublebooked"))
    good = plan.schedule()
    entries = [ScheduledTest(item=e.item, start=0) for e in good.entries]
    return TestSchedule(soc_name=plan.soc.name, algorithm="manual", entries=entries)


def over_budget_schedule() -> TestSchedule:
    """A valid schedule re-labelled with an impossible power budget: sched.power-budget."""
    plan = plan_soc_test(_chain_soc("overbudget"))
    good = plan.schedule()
    return TestSchedule(
        soc_name=plan.soc.name,
        algorithm="manual",
        entries=list(good.entries),
        power_budget=1,
    )
